"""Setuptools entry point.

All metadata lives here (no ``pyproject.toml``) so the package installs in
environments without the ``wheel`` package (``pip install -e .`` needs it
for PEP 660 editable builds; ``python setup.py develop`` does not).

The core package is stdlib-only at runtime.  Extras:

``serve``
    uvicorn, for running :func:`repro.service.serve` as a real HTTP
    server.  Nothing in the package imports it unless that function is
    called — the tier-1 test suite drives the ASGI app in-process.
"""

from setuptools import find_packages, setup

setup(
    name="repro-declarative-prompting",
    version="0.1.0",
    description=(
        "Declarative prompt engineering via crowdsourcing principles: "
        "LLM data-processing operators with budget-aware planning, "
        "durable persistence, and a multi-tenant job service"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "serve": ["uvicorn"],
    },
)
