"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without the ``wheel`` package (``pip install -e .`` needs it for
PEP 660 editable builds; ``python setup.py develop`` does not).
"""

from setuptools import setup

setup()
