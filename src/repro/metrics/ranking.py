"""Ranking-comparison metrics.

The paper reports Kendall Tau-b for its sorting case studies (Tables 1 and 2).
Kendall Tau-b handles ties in either ranking, which matters for the
rating-based strategy where many items share a 1–7 rating.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from scipy import stats

from repro.exceptions import DatasetError


def _positions(order: Sequence[Hashable]) -> dict[Hashable, int]:
    return {item: index for index, item in enumerate(order)}


def kendall_tau_b(
    predicted_order: Sequence[Hashable],
    true_order: Sequence[Hashable],
) -> float:
    """Kendall Tau-b correlation between two orderings of the same items.

    Both arguments are item sequences from best (rank 1) to worst.  Items that
    appear in only one of the two orderings are ignored — this is how a
    predicted sort with dropped items is scored *after* the caller has decided
    how to handle the drops (Table 2 inserts them at random positions first).

    Returns a value in [-1, 1]; 1 means identical orderings.
    """
    true_positions = _positions(true_order)
    shared = [item for item in predicted_order if item in true_positions]
    if len(shared) < 2:
        raise DatasetError("need at least two shared items to compare rankings")
    predicted_ranks = list(range(len(shared)))
    true_ranks = [true_positions[item] for item in shared]
    statistic = stats.kendalltau(predicted_ranks, true_ranks, variant="b").statistic
    return float(statistic)


def kendall_tau_b_from_scores(
    predicted_scores: dict[Hashable, float],
    true_order: Sequence[Hashable],
) -> float:
    """Kendall Tau-b between score-induced ranking (ties allowed) and a true order.

    The rating-based sorting strategy produces integer scores with many ties;
    scoring those against the ground truth requires the tie-aware Tau-b
    variant, so this helper passes the raw scores through directly.
    """
    true_positions = _positions(true_order)
    shared = [item for item in predicted_scores if item in true_positions]
    if len(shared) < 2:
        raise DatasetError("need at least two shared items to compare rankings")
    # Higher score = better rank, so negate to align directions with positions.
    predicted = [-predicted_scores[item] for item in shared]
    truth = [true_positions[item] for item in shared]
    return float(stats.kendalltau(predicted, truth, variant="b").statistic)


def spearman_rho(
    predicted_order: Sequence[Hashable],
    true_order: Sequence[Hashable],
) -> float:
    """Spearman rank correlation between two orderings of the same items."""
    true_positions = _positions(true_order)
    shared = [item for item in predicted_order if item in true_positions]
    if len(shared) < 2:
        raise DatasetError("need at least two shared items to compare rankings")
    predicted_ranks = list(range(len(shared)))
    true_ranks = [true_positions[item] for item in shared]
    return float(stats.spearmanr(predicted_ranks, true_ranks).statistic)


def ranking_alignment(
    predicted_order: Sequence[Hashable],
    true_order: Sequence[Hashable],
) -> float:
    """Fraction of item pairs ordered consistently with the ground truth.

    A simple, always-defined alternative to Tau-b (it equals ``(tau + 1) / 2``
    in the absence of ties) that is convenient for property-based tests.
    """
    true_positions = _positions(true_order)
    shared = [item for item in predicted_order if item in true_positions]
    if len(shared) < 2:
        return 1.0
    agreements = 0
    total = 0
    for i in range(len(shared)):
        for j in range(i + 1, len(shared)):
            total += 1
            if true_positions[shared[i]] < true_positions[shared[j]]:
                agreements += 1
    return agreements / total
