"""Clustering / grouping metrics for whole-list entity resolution.

When entity resolution is run as a single grouping task (Example 1.1 of the
paper), the output is a partition of the records; pairwise F1 and the adjusted
Rand index compare that partition against the ground-truth entity assignment.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Hashable, Iterable, Mapping, Sequence

from repro.metrics.classification import BinaryConfusion


def _pairs_in_clusters(clusters: Iterable[Sequence[Hashable]]) -> set[frozenset[Hashable]]:
    pairs: set[frozenset[Hashable]] = set()
    for cluster in clusters:
        for left, right in combinations(cluster, 2):
            pairs.add(frozenset((left, right)))
    return pairs


def pairwise_cluster_f1(
    predicted_clusters: Iterable[Sequence[Hashable]],
    true_labels: Mapping[Hashable, Hashable],
) -> BinaryConfusion:
    """Pairwise precision/recall/F1 of a predicted clustering.

    Every unordered pair of items that co-occurs in a predicted cluster is a
    positive prediction; every pair sharing a true label is a positive label.
    """
    predicted_clusters = [list(cluster) for cluster in predicted_clusters]
    items = sorted({item for cluster in predicted_clusters for item in cluster} | set(true_labels))
    predicted_pairs = _pairs_in_clusters(predicted_clusters)
    confusion = BinaryConfusion()
    for left, right in combinations(items, 2):
        predicted = frozenset((left, right)) in predicted_pairs
        actual = (
            left in true_labels
            and right in true_labels
            and true_labels[left] == true_labels[right]
        )
        confusion.add(predicted, actual)
    return confusion


def adjusted_rand_index(
    predicted_labels: Mapping[Hashable, Hashable],
    true_labels: Mapping[Hashable, Hashable],
) -> float:
    """Adjusted Rand index between two labelings of the same items.

    Items present in only one labeling are ignored.  Returns 1.0 for identical
    partitions and approximately 0.0 for random ones.
    """
    items = sorted(set(predicted_labels) & set(true_labels))
    if not items:
        return 0.0
    n = len(items)
    contingency: Counter[tuple[Hashable, Hashable]] = Counter(
        (predicted_labels[item], true_labels[item]) for item in items
    )
    predicted_sizes: Counter[Hashable] = Counter(predicted_labels[item] for item in items)
    true_sizes: Counter[Hashable] = Counter(true_labels[item] for item in items)

    def choose2(value: int) -> float:
        return value * (value - 1) / 2.0

    sum_cells = sum(choose2(count) for count in contingency.values())
    sum_predicted = sum(choose2(count) for count in predicted_sizes.values())
    sum_true = sum(choose2(count) for count in true_sizes.values())
    total_pairs = choose2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_predicted * sum_true / total_pairs
    maximum = (sum_predicted + sum_true) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)
