"""Evaluation metrics used by the case studies and benchmarks."""

from repro.metrics.classification import (
    BinaryConfusion,
    accuracy,
    confusion_from_pairs,
    f1_score,
    precision,
    recall,
)
from repro.metrics.clustering import adjusted_rand_index, pairwise_cluster_f1
from repro.metrics.ranking import kendall_tau_b, ranking_alignment, spearman_rho

__all__ = [
    "BinaryConfusion",
    "accuracy",
    "adjusted_rand_index",
    "confusion_from_pairs",
    "f1_score",
    "kendall_tau_b",
    "pairwise_cluster_f1",
    "precision",
    "ranking_alignment",
    "recall",
    "spearman_rho",
]
