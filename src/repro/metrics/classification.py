"""Binary-classification metrics (precision, recall, F1) and exact-match accuracy.

Used by the entity-resolution case study (Table 3 reports F1 / recall /
precision of duplicate detection) and the imputation case study (Table 4
reports exact-match accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping


@dataclass
class BinaryConfusion:
    """Counts of a binary confusion matrix."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def add(self, predicted: bool, actual: bool) -> None:
        """Record one prediction/label pair."""
        if predicted and actual:
            self.true_positives += 1
        elif predicted and not actual:
            self.false_positives += 1
        elif not predicted and actual:
            self.false_negatives += 1
        else:
            self.true_negatives += 1

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        return (self.true_positives + self.true_negatives) / self.total if self.total else 0.0


def confusion_from_pairs(
    predictions: Iterable[bool], labels: Iterable[bool]
) -> BinaryConfusion:
    """Build a confusion matrix from parallel prediction/label iterables."""
    confusion = BinaryConfusion()
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have the same length")
    for predicted, actual in zip(predictions, labels):
        confusion.add(bool(predicted), bool(actual))
    return confusion


def precision(predictions: Iterable[bool], labels: Iterable[bool]) -> float:
    """Precision of boolean predictions against boolean labels."""
    return confusion_from_pairs(predictions, labels).precision


def recall(predictions: Iterable[bool], labels: Iterable[bool]) -> float:
    """Recall of boolean predictions against boolean labels."""
    return confusion_from_pairs(predictions, labels).recall


def f1_score(predictions: Iterable[bool], labels: Iterable[bool]) -> float:
    """F1 score of boolean predictions against boolean labels."""
    return confusion_from_pairs(predictions, labels).f1


def accuracy(
    predictions: Mapping[Hashable, object], ground_truth: Mapping[Hashable, object]
) -> float:
    """Exact-match accuracy of a prediction mapping against a ground-truth mapping.

    String values are compared case-insensitively after stripping whitespace,
    matching how the paper scores imputed values (and explaining why
    format-variant answers like "Tom Tom" vs "TomTom" still count as wrong).
    """
    if not ground_truth:
        return 0.0

    def normalise(value: object) -> object:
        return value.strip().lower() if isinstance(value, str) else value

    correct = sum(
        1
        for key, truth in ground_truth.items()
        if key in predictions and normalise(predictions[key]) == normalise(truth)
    )
    return correct / len(ground_truth)
