"""Transitivity over duplicate judgments.

The entity-resolution case study (Table 3) flips "No" answers to "Yes"
whenever the two records are connected by a path of "Yes" edges — i.e. it
takes the transitive closure of the match graph.  :class:`MatchGraph` stores
the pairwise judgments and exposes exactly that operation, plus the connected
components used to turn pairwise matches into entity clusters.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx


class MatchGraph:
    """An undirected graph of match ("Yes") judgments over records.

    Nodes are record identifiers (any hashable); an edge means some task
    judged the two records duplicates.  Non-match judgments are tracked
    separately so that evidence-based repair can reason about both kinds.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._non_matches: set[frozenset[Hashable]] = set()

    def add_node(self, node: Hashable) -> None:
        """Ensure a record participates in the graph even with no judgments."""
        self._graph.add_node(node)

    def add_match(self, left: Hashable, right: Hashable) -> None:
        """Record a positive (duplicate) judgment."""
        self._graph.add_edge(left, right)

    def add_non_match(self, left: Hashable, right: Hashable) -> None:
        """Record a negative (not duplicate) judgment."""
        self._graph.add_node(left)
        self._graph.add_node(right)
        self._non_matches.add(frozenset((left, right)))

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._graph.nodes)

    def has_match_edge(self, left: Hashable, right: Hashable) -> bool:
        """Whether a direct positive judgment exists between two records."""
        return self._graph.has_edge(left, right)

    def has_non_match(self, left: Hashable, right: Hashable) -> bool:
        """Whether a direct negative judgment exists between two records."""
        return frozenset((left, right)) in self._non_matches

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Whether a path of positive judgments connects the two records."""
        if left not in self._graph or right not in self._graph:
            return False
        if left == right:
            return True
        return nx.has_path(self._graph, left, right)

    def components(self) -> list[set[Hashable]]:
        """Connected components of the match graph (the inferred entities)."""
        return [set(component) for component in nx.connected_components(self._graph)]

    def transitive_matches(self) -> set[frozenset[Hashable]]:
        """All unordered pairs connected by the transitive closure."""
        closure: set[frozenset[Hashable]] = set()
        for component in nx.connected_components(self._graph):
            members = list(component)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    closure.add(frozenset((members[i], members[j])))
        return closure

    def conflicts(self) -> list[frozenset[Hashable]]:
        """Negative judgments contradicted by the transitive closure.

        These are exactly the pairs the paper's strategy flips from "No" to
        "Yes"; returning them explicitly lets callers audit the repair.
        """
        closure = self.transitive_matches()
        return [pair for pair in self._non_matches if pair in closure]


def connected_components(edges: Iterable[tuple[Hashable, Hashable]]) -> list[set[Hashable]]:
    """Connected components of an undirected edge list."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return [set(component) for component in nx.connected_components(graph)]


def transitive_closure_pairs(
    edges: Iterable[tuple[Hashable, Hashable]]
) -> set[frozenset[Hashable]]:
    """All unordered pairs connected by paths through ``edges``."""
    graph = MatchGraph()
    for left, right in edges:
        graph.add_match(left, right)
    return graph.transitive_matches()
