"""Internal-consistency enforcement (paper Section 3.3).

A batch of interrelated unit tasks must satisfy global constraints: pairwise
duplicate judgments must respect transitivity, and pairwise comparisons must
admit a topological order.  LLMs violate these constraints when they make
random mistakes; patching the batch after the fact recovers accuracy.
"""

from repro.consistency.graph_repair import EvidenceRepairResult, repair_with_evidence
from repro.consistency.ranking_repair import (
    alignment_insert_position,
    best_consistent_order,
    count_inversions,
    minimum_feedback_edges,
)
from repro.consistency.transitivity import (
    MatchGraph,
    connected_components,
    transitive_closure_pairs,
)

__all__ = [
    "EvidenceRepairResult",
    "MatchGraph",
    "alignment_insert_position",
    "best_consistent_order",
    "connected_components",
    "count_inversions",
    "minimum_feedback_edges",
    "repair_with_evidence",
    "transitive_closure_pairs",
]
