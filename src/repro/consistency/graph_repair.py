"""Evidence-based repair of match graphs.

The paper's Table 3 strategy only flips "No" edges to "Yes" based on
transitive evidence.  Its discussion ("as future work, ... consider flipping
both 'yes' and 'no' edges based on whether there is enough evidence in the
opposite direction") suggests a symmetric repair; :func:`repair_with_evidence`
implements that extension: for every judged pair it counts the paths of
positive evidence and the direct negative evidence and flips whichever side is
outweighed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.consistency.transitivity import MatchGraph


@dataclass
class EvidenceRepairResult:
    """Outcome of an evidence-based repair pass.

    Attributes:
        matches: final set of unordered pairs considered duplicates.
        flipped_to_match: pairs originally judged "No" that the repair flipped.
        flipped_to_non_match: pairs originally judged "Yes" that the repair
            demoted because the surrounding evidence contradicted them.
    """

    matches: set[frozenset[Hashable]] = field(default_factory=set)
    flipped_to_match: set[frozenset[Hashable]] = field(default_factory=set)
    flipped_to_non_match: set[frozenset[Hashable]] = field(default_factory=set)


def _common_neighbor_support(
    graph: MatchGraph, left: Hashable, right: Hashable
) -> int:
    """Number of two-hop positive paths between two records."""
    neighbors_left = {
        node for node in graph.nodes if graph.has_match_edge(left, node) and node != right
    }
    neighbors_right = {
        node for node in graph.nodes if graph.has_match_edge(right, node) and node != left
    }
    return len(neighbors_left & neighbors_right)


def repair_with_evidence(
    graph: MatchGraph,
    *,
    flip_no_threshold: int = 1,
    flip_yes_threshold: int = 2,
    flip_yes: bool = False,
) -> EvidenceRepairResult:
    """Repair a match graph using transitive evidence.

    Args:
        graph: the judged match graph.
        flip_no_threshold: a "No" pair is flipped to a match when it is
            connected through the match graph (transitivity) or supported by at
            least this many common matched neighbors.
        flip_yes_threshold: a "Yes" edge is demoted when the pair has a direct
            negative judgment recorded *and* fewer than this many common
            matched neighbors support it (only when ``flip_yes`` is enabled).
        flip_yes: whether to also demote weakly-supported positive edges (the
            paper's future-work extension; off by default to match Table 3).

    Returns:
        An :class:`EvidenceRepairResult` with the repaired match set.
    """
    matches: set[frozenset[Hashable]] = set()
    flipped_to_match: set[frozenset[Hashable]] = set()
    flipped_to_non_match: set[frozenset[Hashable]] = set()

    # Start from all direct positive judgments.
    nodes = graph.nodes
    for index, left in enumerate(nodes):
        for right in nodes[index + 1 :]:
            if graph.has_match_edge(left, right):
                matches.add(frozenset((left, right)))

    # Optionally demote positive edges contradicted by negative evidence.
    if flip_yes:
        for pair in list(matches):
            left, right = tuple(pair)
            if not graph.has_non_match(left, right):
                continue
            support = _common_neighbor_support(graph, left, right)
            if support < flip_yes_threshold - 1:
                matches.discard(pair)
                flipped_to_non_match.add(pair)

    # Flip negative judgments connected by transitive positive evidence.
    for index, left in enumerate(nodes):
        for right in nodes[index + 1 :]:
            pair = frozenset((left, right))
            if pair in matches or not graph.has_non_match(left, right):
                continue
            if pair in flipped_to_non_match:
                # Already demoted above; do not immediately re-promote it.
                continue
            support = _common_neighbor_support(graph, left, right)
            if graph.connected(left, right) or support >= flip_no_threshold:
                matches.add(pair)
                flipped_to_match.add(pair)

    return EvidenceRepairResult(
        matches=matches,
        flipped_to_match=flipped_to_match,
        flipped_to_non_match=flipped_to_non_match,
    )
