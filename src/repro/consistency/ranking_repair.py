"""Consistency repair for rankings built from pairwise comparisons.

Two pieces from the paper:

* ``alignment_insert_position`` — the Table 2 insertion rule: a missed word is
  compared against every word of the partially sorted list (twice, with the
  operand order swapped to cancel position bias) and inserted at the position
  that *minimises the number of inverted comparisons*, rather than at the
  first "less than" answer, which a single early mistake would derail.
* ``minimum_feedback_edges`` / ``best_consistent_order`` — Section 3.3's
  maximum-likelihood view of sorting: given noisy pairwise comparisons, the
  order that flips the minimum number of edges is the maximum-likelihood
  topological order.  An exact solver is exponential, so a local-search
  heuristic over an initial Borda order is used for anything beyond a handful
  of items.
"""

from __future__ import annotations

from itertools import permutations
from typing import Hashable, Mapping, Sequence


def alignment_insert_position(
    sorted_items: Sequence[Hashable],
    comparisons: Mapping[Hashable, bool],
) -> int:
    """Best insertion index for a missing item given noisy comparisons.

    Args:
        sorted_items: the partially sorted list (best rank first).
        comparisons: for each item of ``sorted_items``, whether the missing
            item was judged to rank *before* that item (aggregated over the
            two prompts with swapped operand order).

    Returns:
        The index in ``[0, len(sorted_items)]`` at which inserting the missing
        item inverts the fewest comparison results.
    """
    best_index = 0
    best_violations: int | None = None
    for candidate in range(len(sorted_items) + 1):
        violations = 0
        for position, item in enumerate(sorted_items):
            judged_before = comparisons.get(item)
            if judged_before is None:
                continue
            # If inserted at `candidate`, the missing item precedes every item
            # at position >= candidate.
            actually_before = position >= candidate
            if judged_before != actually_before:
                violations += 1
        if best_violations is None or violations < best_violations:
            best_violations = violations
            best_index = candidate
    return best_index


def count_inversions(
    order: Sequence[Hashable],
    comparisons: Mapping[tuple[Hashable, Hashable], bool],
) -> int:
    """Number of pairwise comparison results violated by ``order``.

    ``comparisons[(a, b)] is True`` means some task judged ``a`` to rank
    before ``b``.  Pairs not present in ``comparisons`` are unconstrained.
    """
    position = {item: index for index, item in enumerate(order)}
    violations = 0
    for (first, second), first_before in comparisons.items():
        if first not in position or second not in position:
            continue
        actually_before = position[first] < position[second]
        if actually_before != first_before:
            violations += 1
    return violations


def minimum_feedback_edges(
    items: Sequence[Hashable],
    comparisons: Mapping[tuple[Hashable, Hashable], bool],
) -> int:
    """Minimum number of comparisons that must be flipped for consistency.

    Exact for up to eight items (brute force over permutations); for larger
    inputs the local-search order from :func:`best_consistent_order` provides
    an upper bound.
    """
    items = list(items)
    if len(items) <= 8:
        return min(
            count_inversions(list(order), comparisons) for order in permutations(items)
        )
    return count_inversions(best_consistent_order(items, comparisons), comparisons)


def _borda_order(
    items: Sequence[Hashable],
    comparisons: Mapping[tuple[Hashable, Hashable], bool],
) -> list[Hashable]:
    """Initial order: items sorted by number of comparisons 'won'."""
    wins: dict[Hashable, int] = {item: 0 for item in items}
    for (first, second), first_before in comparisons.items():
        winner = first if first_before else second
        if winner in wins:
            wins[winner] += 1
    return sorted(items, key=lambda item: -wins[item])


def best_consistent_order(
    items: Sequence[Hashable],
    comparisons: Mapping[tuple[Hashable, Hashable], bool],
    *,
    max_passes: int = 10,
) -> list[Hashable]:
    """Order that (locally) minimises violated comparisons.

    Starts from the Borda-count order and repeatedly applies adjacent swaps
    that reduce the number of violated comparisons until a fixed point (or
    ``max_passes`` sweeps).  This mirrors the maximum-likelihood repair of
    Section 3.3 without the exponential cost of the exact solution.
    """
    order = _borda_order(items, comparisons)
    for _ in range(max_passes):
        improved = False
        for index in range(len(order) - 1):
            current = count_inversions(order, comparisons)
            swapped = list(order)
            swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
            if count_inversions(swapped, comparisons) < current:
                order = swapped
                improved = True
        if not improved:
            break
    return list(order)
