"""Confidence calibration diagnostics.

The paper notes that debiasing / calibrating LLM answers, as is routinely done
for crowd answers, remains an open problem.  This module provides the standard
diagnostics — reliability bins and expected calibration error — over
(confidence, correctness) pairs so experiments can report how trustworthy a
model's self-reported confidence is, plus a simple temperature-style rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import QualityControlError


@dataclass
class CalibrationBin:
    """One reliability-diagram bin."""

    lower: float
    upper: float
    count: int = 0
    mean_confidence: float = 0.0
    empirical_accuracy: float = 0.0


@dataclass
class CalibrationReport:
    """Reliability bins plus the expected calibration error."""

    bins: list[CalibrationBin] = field(default_factory=list)
    expected_calibration_error: float = 0.0
    sample_size: int = 0


def calibration_report(
    confidences: Sequence[float],
    correct: Sequence[bool],
    *,
    n_bins: int = 10,
) -> CalibrationReport:
    """Build a reliability diagram over (confidence, correctness) pairs."""
    if len(confidences) != len(correct):
        raise QualityControlError("confidences and correctness must align")
    if not confidences:
        raise QualityControlError("cannot calibrate over zero observations")
    if n_bins < 1:
        raise QualityControlError("need at least one bin")
    bins = [
        CalibrationBin(lower=index / n_bins, upper=(index + 1) / n_bins) for index in range(n_bins)
    ]
    totals = [0.0] * n_bins
    hits = [0.0] * n_bins
    for confidence, is_correct in zip(confidences, correct):
        clamped = min(max(confidence, 0.0), 1.0)
        index = min(n_bins - 1, int(clamped * n_bins))
        bins[index].count += 1
        totals[index] += clamped
        hits[index] += 1.0 if is_correct else 0.0
    ece = 0.0
    total_count = len(confidences)
    for index, bin_ in enumerate(bins):
        if bin_.count == 0:
            continue
        bin_.mean_confidence = totals[index] / bin_.count
        bin_.empirical_accuracy = hits[index] / bin_.count
        ece += (bin_.count / total_count) * abs(bin_.mean_confidence - bin_.empirical_accuracy)
    return CalibrationReport(bins=bins, expected_calibration_error=ece, sample_size=total_count)


def expected_calibration_error(
    confidences: Sequence[float], correct: Sequence[bool], *, n_bins: int = 10
) -> float:
    """Expected calibration error of (confidence, correctness) pairs."""
    return calibration_report(confidences, correct, n_bins=n_bins).expected_calibration_error


def rescale_confidence(confidence: float, *, scale: float) -> float:
    """Shrink (scale < 1) or sharpen (scale > 1) a confidence towards/away from 0.5.

    A crude but effective post-hoc recalibration: overconfident models benefit
    from ``scale < 1``.
    """
    if scale <= 0:
        raise QualityControlError("scale must be positive")
    centered = (min(max(confidence, 0.0), 1.0) - 0.5) * scale
    return min(1.0, max(0.0, 0.5 + centered))
