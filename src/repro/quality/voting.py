"""Voting-based aggregation of repeated or multi-model answers.

Majority voting over several models (or over several temperature-sampled
responses from one model — "self-consistency") is the simplest quality-control
aggregator from Section 3.5.  Weighted voting folds in per-voter accuracy
estimates when they are available.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.exceptions import QualityControlError
from repro.llm.base import LLMClient


@dataclass
class VoteResult:
    """Outcome of a vote.

    Attributes:
        winner: the winning answer.
        support: fraction of the total (weighted) vote mass behind the winner.
        counts: raw (weighted) vote mass per distinct answer.
    """

    winner: Hashable
    support: float
    counts: dict[Hashable, float]


def majority_vote(votes: Sequence[Hashable]) -> VoteResult:
    """Plain majority vote; ties broken by first appearance order."""
    if not votes:
        raise QualityControlError("cannot vote over zero answers")
    counts = Counter(votes)
    top = max(counts.values())
    winner = next(vote for vote in votes if counts[vote] == top)
    return VoteResult(
        winner=winner,
        support=top / len(votes),
        counts={key: float(value) for key, value in counts.items()},
    )


def weighted_vote(votes: Mapping[Hashable, Hashable], weights: Mapping[Hashable, float]) -> VoteResult:
    """Vote where each voter's ballot is weighted by its estimated accuracy.

    Args:
        votes: voter id → answer.
        weights: voter id → weight (e.g. estimated accuracy); missing voters
            default to weight 1.
    """
    if not votes:
        raise QualityControlError("cannot vote over zero answers")
    mass: dict[Hashable, float] = {}
    for voter, answer in votes.items():
        mass[answer] = mass.get(answer, 0.0) + float(weights.get(voter, 1.0))
    total = sum(mass.values())
    winner = max(mass, key=mass.get)
    return VoteResult(winner=winner, support=mass[winner] / total if total else 0.0, counts=mass)


def self_consistency_vote(
    client: LLMClient,
    prompt: str,
    *,
    extract: Callable[[str], Hashable],
    n_samples: int = 5,
    model: str | None = None,
    temperature: float = 0.7,
) -> VoteResult:
    """Sample the same prompt several times and majority-vote the answers.

    This is the self-consistency technique the paper cites for reasoning
    tasks: multiple reasoning paths are drawn at non-zero temperature and the
    final answer is the mode.  Samples whose answer cannot be extracted are
    skipped; if none can be extracted a ``QualityControlError`` is raised.
    """
    if n_samples < 1:
        raise QualityControlError("need at least one sample")
    answers = []
    for _ in range(n_samples):
        response = client.complete(prompt, model=model, temperature=temperature)
        try:
            answers.append(extract(response.text))
        except Exception:  # noqa: BLE001 - any extraction failure just skips the sample
            continue
    if not answers:
        raise QualityControlError("no sample produced an extractable answer")
    return majority_vote(answers)
