"""Answer verification follow-ups.

Section 3.5 lists verification — asking the same or another LLM whether a
proposed answer is correct — as a quality-control step.  The verifier's vote
is combined with the original answer's confidence to decide whether the
answer should be retried.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ResponseParseError
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.parsing import extract_yes_no
from repro.llm.prompts import verify_answer_prompt


@dataclass
class VerificationResult:
    """Outcome of verifying one answer.

    Attributes:
        verified: whether the verifier endorsed the answer.
        verifier_response: the raw verifier response.
        combined_confidence: the answer's confidence scaled by the verifier's.
    """

    verified: bool
    verifier_response: LLMResponse
    combined_confidence: float


def verify_response(
    verifier: LLMClient,
    *,
    question: str,
    answer: str,
    answer_confidence: float = 1.0,
    model: str | None = None,
) -> VerificationResult:
    """Ask ``verifier`` whether ``answer`` is a correct answer to ``question``.

    A verifier response that cannot be parsed as Yes/No counts as a failed
    verification with low combined confidence, so broken verifier output never
    silently endorses an answer.
    """
    response = verifier.complete(verify_answer_prompt(question, answer), model=model)
    try:
        verified = extract_yes_no(response.text)
    except ResponseParseError:
        return VerificationResult(
            verified=False, verifier_response=response, combined_confidence=0.1
        )
    combined = answer_confidence * (response.confidence if verified else 1.0 - response.confidence)
    return VerificationResult(
        verified=verified,
        verifier_response=response,
        combined_confidence=max(0.0, min(1.0, combined)),
    )
