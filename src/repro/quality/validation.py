"""Validation-set accuracy estimation.

The first quality-control question is "how accurate is this LLM on this type
of task?".  With a labelled validation sample the answer is the fraction
correct, plus a confidence interval that tells the strategy optimizer how much
to trust an estimate built from only a handful of labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from repro.exceptions import QualityControlError

Item = TypeVar("Item")
Answer = TypeVar("Answer")


@dataclass(frozen=True)
class AccuracyEstimate:
    """Point estimate and interval for a task accuracy.

    Attributes:
        accuracy: fraction of validation items answered correctly.
        lower: lower bound of the 95% Wilson interval.
        upper: upper bound of the 95% Wilson interval.
        sample_size: number of validation items used.
    """

    accuracy: float
    lower: float
    upper: float
    sample_size: int


def wilson_interval(successes: int, trials: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise QualityControlError("cannot build an interval from zero trials")
    if successes < 0 or successes > trials:
        raise QualityControlError("successes must be between 0 and trials")
    proportion = successes / trials
    denominator = 1.0 + z * z / trials
    center = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def estimate_accuracy(
    items: Iterable[Item],
    *,
    answer: Callable[[Item], Answer],
    ground_truth: Callable[[Item], Answer],
    equal: Callable[[Answer, Answer], bool] | None = None,
) -> AccuracyEstimate:
    """Estimate a task accuracy by running ``answer`` over labelled items.

    Args:
        items: the validation items.
        answer: function producing the (LLM) answer for one item.
        ground_truth: function returning the known correct answer.
        equal: answer-comparison predicate; defaults to ``==``.

    Returns:
        An :class:`AccuracyEstimate` with a Wilson 95% interval.
    """
    compare = equal or (lambda left, right: left == right)
    successes = 0
    trials = 0
    for item in items:
        trials += 1
        if compare(answer(item), ground_truth(item)):
            successes += 1
    if trials == 0:
        raise QualityControlError("validation set is empty")
    lower, upper = wilson_interval(successes, trials)
    return AccuracyEstimate(
        accuracy=successes / trials, lower=lower, upper=upper, sample_size=trials
    )
