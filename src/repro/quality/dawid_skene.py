"""Dawid–Skene expectation-maximization over multiple LLM "workers".

When no validation set exists, the accuracy of each LLM can still be estimated
from agreement patterns across models (Section 3.5, citing the EM approaches
used for Mechanical Turk quality management): assume each model answers each
task independently with a fixed but unknown per-label confusion matrix, then
alternate between inferring the true labels and re-estimating each model's
confusion matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.exceptions import QualityControlError


@dataclass
class DawidSkeneResult:
    """Output of the EM procedure.

    Attributes:
        label_posteriors: task id → {label: posterior probability}.
        predictions: task id → maximum-a-posteriori label.
        worker_accuracy: worker id → estimated probability of answering
            correctly (diagonal mass of its confusion matrix).
        iterations: number of EM iterations run.
    """

    label_posteriors: dict[Hashable, dict[Hashable, float]]
    predictions: dict[Hashable, Hashable]
    worker_accuracy: dict[Hashable, float]
    iterations: int


def dawid_skene(
    answers: Mapping[Hashable, Mapping[Hashable, Hashable]],
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
) -> DawidSkeneResult:
    """Run Dawid–Skene EM over worker answers.

    Args:
        answers: ``{task_id: {worker_id: label}}``.
        max_iterations: EM iteration cap.
        tolerance: convergence threshold on the change in label posteriors.
        smoothing: additive smoothing applied to confusion-matrix counts.

    Returns:
        A :class:`DawidSkeneResult`.
    """
    if not answers:
        raise QualityControlError("no answers supplied")
    task_ids = sorted(answers, key=str)
    worker_ids = sorted({worker for task in answers.values() for worker in task}, key=str)
    labels = sorted({label for task in answers.values() for label in task.values()}, key=str)
    if not labels:
        raise QualityControlError("no labels present in the answers")
    n_tasks, n_workers, n_labels = len(task_ids), len(worker_ids), len(labels)
    task_index = {task: index for index, task in enumerate(task_ids)}
    worker_index = {worker: index for index, worker in enumerate(worker_ids)}
    label_index = {label: index for index, label in enumerate(labels)}

    # answer_matrix[t, w] = label index or -1 when the worker skipped the task.
    answer_matrix = np.full((n_tasks, n_workers), -1, dtype=np.int64)
    for task, worker_answers in answers.items():
        for worker, label in worker_answers.items():
            answer_matrix[task_index[task], worker_index[worker]] = label_index[label]

    # Initialise posteriors with per-task majority votes.
    posteriors = np.full((n_tasks, n_labels), 1.0 / n_labels)
    for t in range(n_tasks):
        votes = answer_matrix[t][answer_matrix[t] >= 0]
        if votes.size:
            counts = np.bincount(votes, minlength=n_labels).astype(float)
            posteriors[t] = counts / counts.sum()

    confusion = np.zeros((n_workers, n_labels, n_labels))
    priors = np.full(n_labels, 1.0 / n_labels)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # M step: confusion matrices and label priors from the posteriors.
        priors = posteriors.mean(axis=0)
        for w in range(n_workers):
            counts = np.full((n_labels, n_labels), smoothing)
            for t in range(n_tasks):
                observed = answer_matrix[t, w]
                if observed >= 0:
                    counts[:, observed] += posteriors[t]
            confusion[w] = counts / counts.sum(axis=1, keepdims=True)

        # E step: recompute label posteriors.
        updated = np.tile(np.log(np.maximum(priors, 1e-12)), (n_tasks, 1))
        for t in range(n_tasks):
            for w in range(n_workers):
                observed = answer_matrix[t, w]
                if observed >= 0:
                    updated[t] += np.log(np.maximum(confusion[w][:, observed], 1e-12))
        updated = np.exp(updated - updated.max(axis=1, keepdims=True))
        updated /= updated.sum(axis=1, keepdims=True)
        change = float(np.abs(updated - posteriors).max())
        posteriors = updated
        if change < tolerance:
            break

    label_posteriors = {
        task: {label: float(posteriors[task_index[task], label_index[label]]) for label in labels}
        for task in task_ids
    }
    predictions = {
        task: max(label_posteriors[task], key=label_posteriors[task].get) for task in task_ids
    }
    worker_accuracy = {}
    for worker in worker_ids:
        matrix = confusion[worker_index[worker]]
        worker_accuracy[worker] = float(np.mean(np.diag(matrix)))
    return DawidSkeneResult(
        label_posteriors=label_posteriors,
        predictions=predictions,
        worker_accuracy=worker_accuracy,
        iterations=iterations,
    )
