"""Quality control for LLM answers (paper Section 3.5).

Techniques drawn from the crowdsourcing literature for estimating and
improving the accuracy of noisy oracles: validation-set accuracy estimation,
expectation-maximization across multiple LLMs (Dawid–Skene), majority voting
and self-consistency sampling, answer verification follow-ups, and confidence
calibration.
"""

from repro.quality.calibration import CalibrationReport, calibration_report, expected_calibration_error
from repro.quality.dawid_skene import DawidSkeneResult, dawid_skene
from repro.quality.validation import AccuracyEstimate, estimate_accuracy, wilson_interval
from repro.quality.verification import VerificationResult, verify_response
from repro.quality.voting import VoteResult, majority_vote, self_consistency_vote, weighted_vote

__all__ = [
    "AccuracyEstimate",
    "CalibrationReport",
    "DawidSkeneResult",
    "VerificationResult",
    "VoteResult",
    "calibration_report",
    "dawid_skene",
    "estimate_accuracy",
    "expected_calibration_error",
    "majority_vote",
    "self_consistency_vote",
    "verify_response",
    "weighted_vote",
    "wilson_interval",
]
