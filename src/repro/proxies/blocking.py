"""Embedding-based blocking for entity resolution.

Comparing every pair of records is O(n²) LLM calls; blocking restricts
comparisons to pairs that are plausibly duplicates.  The paper's Table 3 uses
embedding nearest neighbors to *augment* the labelled pair set with extra
comparisons; the same machinery doubles as a classic blocker that prunes
obvious non-matches before any LLM is consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.embeddings import HashingEmbedder


@dataclass
class BlockingResult:
    """Candidate pairs surviving the blocking step."""

    candidate_pairs: list[tuple[int, int]]
    neighbors: dict[int, list[int]]

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_pairs)


class EmbeddingBlocker:
    """Nearest-neighbor blocker over text embeddings.

    Args:
        embedder: the embedding model; defaults to the deterministic
            :class:`HashingEmbedder` analogue of text-embedding-ada-002.
        k: number of nearest neighbors that form candidate pairs per record.
    """

    def __init__(self, *, embedder: HashingEmbedder | None = None, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.embedder = embedder or HashingEmbedder()
        self.k = k

    def block(self, texts: list[str]) -> BlockingResult:
        """Return candidate pairs (i < j) whose members are mutual near neighbors."""
        neighbors = self.embedder.nearest_neighbors(texts, self.k)
        pairs: set[tuple[int, int]] = set()
        for index, neighbor_list in neighbors.items():
            for neighbor in neighbor_list:
                pairs.add((min(index, neighbor), max(index, neighbor)))
        return BlockingResult(candidate_pairs=sorted(pairs), neighbors=neighbors)

    def neighbor_pairs_for(
        self, texts: list[str], anchor_indices: tuple[int, int], k: int
    ) -> list[tuple[int, int]]:
        """All pairs among two anchors and their k nearest neighbors.

        This is the Table 3 augmentation: for a labelled question about records
        A and B, take the k nearest neighbors of each and compare every pair
        within the combined set (the paper's "(2k+2 choose 2) pairs").
        """
        neighbors = self.embedder.nearest_neighbors(texts, k)
        left, right = anchor_indices
        group = {left, right}
        group.update(neighbors.get(left, []))
        group.update(neighbors.get(right, []))
        members = sorted(group)
        return [
            (members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]
