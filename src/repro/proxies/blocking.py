"""Embedding-based blocking for entity resolution.

Comparing every pair of records is O(n²) LLM calls; blocking restricts
comparisons to pairs that are plausibly duplicates.  The paper's Table 3 uses
embedding nearest neighbors to *augment* the labelled pair set with extra
comparisons; the same machinery doubles as a classic blocker that prunes
obvious non-matches before any LLM is consulted.

Two neighbor-finding paths share the same candidate-pair semantics:

* the legacy **scan** (no ``index=``) embeds every text and ranks all n²
  distances — exact, but quadratic in both time and memory;
* the **index** path builds (or reuses) a :class:`~repro.index.base.
  VectorIndex` once and derives each record's neighbors from probe
  results.  With the exact index the candidate pairs are identical to the
  scan's; with the LSH index they are approximate with tunable recall,
  which is what makes blocking tractable at 50k+ records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.llm.embeddings import HashingEmbedder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.base import VectorIndex


@dataclass
class BlockingResult:
    """Candidate pairs surviving the blocking step."""

    candidate_pairs: list[tuple[int, int]]
    neighbors: dict[int, list[int]]

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_pairs)


class EmbeddingBlocker:
    """Nearest-neighbor blocker over text embeddings.

    Args:
        embedder: the embedding model; defaults to the deterministic
            :class:`HashingEmbedder` analogue of text-embedding-ada-002.
            A :class:`~repro.index.CachedEmbedder` slots in here to make
            blocking re-runs embed nothing.
        k: number of nearest neighbors that form candidate pairs per record.
        index: optional :class:`~repro.index.base.VectorIndex`.  An empty
            index is filled from the blocked texts on first use (build
            once); a pre-built index must already hold ids ``0..n-1``
            matching the text order and is probed as-is — which is how a
            persisted index avoids both re-embedding and rebuilding.
    """

    def __init__(
        self,
        *,
        embedder: "HashingEmbedder | None" = None,
        k: int = 5,
        index: "VectorIndex | None" = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.embedder = embedder or HashingEmbedder()
        self.k = k
        self.index = index

    def block(self, texts: list[str]) -> BlockingResult:
        """Return candidate pairs (i < j) whose members are mutual near neighbors."""
        if self.index is None:
            neighbors = self.embedder.nearest_neighbors(texts, self.k)
        else:
            neighbors = self._index_neighbors(texts, self.k)
        pairs: set[tuple[int, int]] = set()
        for index, neighbor_list in neighbors.items():
            for neighbor in neighbor_list:
                pairs.add((min(index, neighbor), max(index, neighbor)))
        return BlockingResult(candidate_pairs=sorted(pairs), neighbors=neighbors)

    def _index_neighbors(self, texts: list[str], k: int) -> dict[int, list[int]]:
        """Per-text neighbors from the index (building it when empty)."""
        index = self.index
        assert index is not None
        if len(index) == 0:
            if texts:
                index.add(self.embedder.embed_batch(texts))
        elif len(index) != len(texts):
            raise ConfigurationError(
                f"the supplied index holds {len(index)} vectors but {len(texts)} "
                "texts are being blocked; pass an empty index (it is built from "
                "the texts) or one built from exactly these texts"
            )
        graph = index.knn_graph(min(k, max(0, len(texts) - 1)))
        return {position: graph.get(position, []) for position in range(len(texts))}

    def neighbor_pairs_for(
        self, texts: list[str], anchor_indices: tuple[int, int], k: int
    ) -> list[tuple[int, int]]:
        """All pairs among two anchors and their k nearest neighbors.

        This is the Table 3 augmentation: for a labelled question about records
        A and B, take the k nearest neighbors of each and compare every pair
        within the combined set (the paper's "(2k+2 choose 2) pairs").
        """
        neighbors = self.embedder.nearest_neighbors(texts, k)
        left, right = anchor_indices
        group = {left, right}
        group.update(neighbors.get(left, []))
        group.update(neighbors.get(right, []))
        members = sorted(group)
        return [
            (members[i], members[j])
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]
