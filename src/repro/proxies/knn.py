"""k-nearest-neighbor imputation (the non-LLM strategy of Table 4).

For each query record with a missing attribute, the imputer finds the ``k``
most similar records in a fully-known reference set and predicts the mode of
their attribute values.  The paper's hybrid strategy additionally inspects
whether *all* neighbors agree: if so the k-NN answer is used directly, and
only the disagreeing (uncertain) records are escalated to the LLM.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.data.record import Dataset, Record
from repro.exceptions import DatasetError
from repro.proxies.similarity import token_cosine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.base import VectorIndex
    from repro.llm.embeddings import HashingEmbedder


@dataclass
class NeighborVote:
    """Outcome of a k-NN lookup for one query record.

    Attributes:
        prediction: the modal neighbor value (ties broken by similarity order).
        unanimous: whether every neighbor carried the same value.
        neighbor_values: the neighbor values, nearest first.
        neighbors: the neighbor records, nearest first.
    """

    prediction: str
    unanimous: bool
    neighbor_values: list[str]
    neighbors: list[Record]


class KNNImputer:
    """Mode-of-neighbors imputer over record-serialization similarity.

    Args:
        reference: records with the target attribute known.
        target_attribute: the attribute to impute.
        k: number of neighbors consulted.
        index: optional :class:`~repro.index.base.VectorIndex`; when given,
            neighbor lookup probes the index (embedding similarity) instead
            of scanning every reference record with ``token_cosine`` — the
            same machinery that scales blocking scales the Table 4 hybrid.
            An empty index is filled from the reference serialisations; a
            pre-built one must hold ids ``0..len(reference)-1`` in reference
            order.
        embedder: embeds queries (and the reference, when the index starts
            empty) for the index path; defaults to a fresh
            :class:`~repro.llm.embeddings.HashingEmbedder`.
    """

    def __init__(
        self,
        reference: Dataset,
        target_attribute: str,
        *,
        k: int = 3,
        index: "VectorIndex | None" = None,
        embedder: "HashingEmbedder | None" = None,
    ) -> None:
        if k < 1:
            raise DatasetError("k must be at least 1")
        if len(reference) < k:
            raise DatasetError(
                f"reference set of size {len(reference)} is smaller than k={k}"
            )
        self.reference = reference
        self.target_attribute = target_attribute
        self.k = k
        self._reference_texts = [
            record.serialize(exclude=(target_attribute,)) for record in reference
        ]
        self.index = index
        self.embedder = embedder
        if index is not None:
            if len(index) == 0:
                if self.embedder is None:
                    from repro.llm.embeddings import HashingEmbedder

                    self.embedder = HashingEmbedder()
                index.add(self.embedder.embed_batch(self._reference_texts))
            elif len(index) != len(reference):
                raise DatasetError(
                    f"the supplied index holds {len(index)} vectors but the "
                    f"reference set has {len(reference)} records"
                )
            elif self.embedder is None:
                from repro.llm.embeddings import HashingEmbedder

                self.embedder = HashingEmbedder()

    def _nearest(self, query_text: str) -> list[Record]:
        """The ``k`` nearest reference records, nearest first."""
        if self.index is not None:
            assert self.embedder is not None
            hits = self.index.search(self.embedder.embed(query_text), self.k)
            return [self.reference.records[int(row_id)] for row_id, _ in hits]
        scored = sorted(
            zip(self.reference.records, self._reference_texts),
            key=lambda pair: -token_cosine(query_text, pair[1]),
        )
        return [record for record, _ in scored[: self.k]]

    def vote(self, query: Record) -> NeighborVote:
        """Find the ``k`` nearest reference records and their value vote."""
        query_text = query.serialize(exclude=(self.target_attribute,))
        neighbors = self._nearest(query_text)
        values = [str(record[self.target_attribute]) for record in neighbors]
        counts = Counter(values)
        top_count = max(counts.values())
        # Ties broken by proximity: the first (nearest) value among the tied modes.
        prediction = next(value for value in values if counts[value] == top_count)
        return NeighborVote(
            prediction=prediction,
            unanimous=len(counts) == 1,
            neighbor_values=values,
            neighbors=neighbors,
        )

    def impute(self, query: Record) -> str:
        """Predict the missing attribute value for one query record."""
        return self.vote(query).prediction

    def examples_for(self, query: Record, n_examples: int) -> list[dict[str, str]]:
        """In-context examples drawn from the query's nearest neighbors.

        The paper's "with 3 examples" configurations embed nearby labelled
        records into the prompt; returning them here keeps that logic next to
        the neighbor search.
        """
        vote = self.vote(query)
        examples = []
        for neighbor in vote.neighbors[:n_examples]:
            examples.append(
                {
                    "input": neighbor.serialize(exclude=(self.target_attribute,)),
                    "output": str(neighbor[self.target_attribute]),
                }
            )
        return examples
