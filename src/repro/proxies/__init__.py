"""Non-LLM proxies (paper Section 3.4).

Cheap models that can answer a large fraction of unit tasks without any LLM
call: a k-nearest-neighbor imputer over record similarity, string-similarity
functions, embedding-based blocking for entity resolution, and a thresholded
similarity classifier that routes only uncertain pairs to the LLM.
"""

from repro.proxies.blocking import EmbeddingBlocker
from repro.proxies.classifier import SimilarityMatchProxy
from repro.proxies.knn import KNNImputer, NeighborVote
from repro.proxies.similarity import jaccard_similarity, levenshtein_distance, token_cosine

__all__ = [
    "EmbeddingBlocker",
    "KNNImputer",
    "NeighborVote",
    "SimilarityMatchProxy",
    "jaccard_similarity",
    "levenshtein_distance",
    "token_cosine",
]
