"""String-similarity functions used by the non-LLM proxies."""

from __future__ import annotations

import math
import re
from collections import Counter

_TOKEN_RE = re.compile(r"\w+")


def _tokens(text: str) -> list[str]:
    return _TOKEN_RE.findall(text.lower())


def jaccard_similarity(first: str, second: str) -> float:
    """Jaccard similarity of the token sets of two strings, in [0, 1]."""
    tokens_first = set(_tokens(first))
    tokens_second = set(_tokens(second))
    if not tokens_first and not tokens_second:
        return 1.0
    if not tokens_first or not tokens_second:
        return 0.0
    return len(tokens_first & tokens_second) / len(tokens_first | tokens_second)


def token_cosine(first: str, second: str) -> float:
    """Cosine similarity of the token-count vectors of two strings, in [0, 1]."""
    counts_first = Counter(_tokens(first))
    counts_second = Counter(_tokens(second))
    if not counts_first or not counts_second:
        return 1.0 if counts_first == counts_second else 0.0
    dot = sum(counts_first[token] * counts_second[token] for token in counts_first)
    norm_first = math.sqrt(sum(value * value for value in counts_first.values()))
    norm_second = math.sqrt(sum(value * value for value in counts_second.values()))
    return dot / (norm_first * norm_second)


def levenshtein_distance(first: str, second: str, *, max_distance: int | None = None) -> int:
    """Edit distance between two strings.

    Args:
        first: first string.
        second: second string.
        max_distance: optional early-exit bound; when the true distance exceeds
            it, any value greater than ``max_distance`` may be returned.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for row, char_first in enumerate(first, start=1):
        current = [row]
        best_in_row = row
        for column, char_second in enumerate(second, start=1):
            cost = 0 if char_first == char_second else 1
            value = min(previous[column] + 1, current[column - 1] + 1, previous[column - 1] + cost)
            current.append(value)
            best_in_row = min(best_in_row, value)
        if max_distance is not None and best_in_row > max_distance:
            return best_in_row
        previous = current
    return previous[-1]


def normalized_levenshtein(first: str, second: str) -> float:
    """Levenshtein similarity normalised to [0, 1] (1 means identical)."""
    if not first and not second:
        return 1.0
    distance = levenshtein_distance(first, second)
    return 1.0 - distance / max(len(first), len(second))
