"""Threshold-based similarity proxies.

The cheapest possible duplicate detector: a string-similarity score with two
thresholds.  Pairs above the upper threshold are accepted, pairs below the
lower threshold are rejected, and only the "confusing" band in between is
forwarded to the LLM — the CrowdER-style hybrid workflow of Section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.proxies.similarity import jaccard_similarity


@dataclass(frozen=True)
class ProxyDecision:
    """Decision of the proxy for one pair.

    Attributes:
        label: ``True`` (duplicate), ``False`` (not duplicate), or ``None``
            when the proxy abstains and the pair must go to the LLM.
        score: the underlying similarity score.
    """

    label: bool | None
    score: float

    @property
    def abstained(self) -> bool:
        return self.label is None


class SimilarityMatchProxy:
    """Two-threshold similarity classifier with an abstention band.

    Args:
        accept_threshold: similarity at or above which the pair is a duplicate.
        reject_threshold: similarity at or below which the pair is not.
        similarity: similarity function over two strings; defaults to Jaccard.
    """

    def __init__(
        self,
        *,
        accept_threshold: float = 0.85,
        reject_threshold: float = 0.25,
        similarity: Callable[[str, str], float] = jaccard_similarity,
    ) -> None:
        if not 0.0 <= reject_threshold <= accept_threshold <= 1.0:
            raise ConfigurationError(
                "thresholds must satisfy 0 <= reject_threshold <= accept_threshold <= 1"
            )
        self.accept_threshold = accept_threshold
        self.reject_threshold = reject_threshold
        self.similarity = similarity

    def decide(self, left: str, right: str) -> ProxyDecision:
        """Classify a pair, abstaining inside the uncertainty band."""
        score = self.similarity(left, right)
        if score >= self.accept_threshold:
            return ProxyDecision(label=True, score=score)
        if score <= self.reject_threshold:
            return ProxyDecision(label=False, score=score)
        return ProxyDecision(label=None, score=score)

    def abstention_rate(self, pairs: list[tuple[str, str]]) -> float:
        """Fraction of pairs the proxy would forward to the LLM."""
        if not pairs:
            return 0.0
        abstained = sum(1 for left, right in pairs if self.decide(left, right).abstained)
        return abstained / len(pairs)
