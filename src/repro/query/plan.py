"""Logical query plans for the fluent :class:`~repro.query.Dataset` API.

A logical plan is a small DAG of :class:`LogicalNode` objects, one per
declared operation, built lazily by the fluent builder — nothing executes
until :meth:`Dataset.run`.  The plan is the unit the rule-based optimizer
(:mod:`repro.query.optimizer`) rewrites and the compiler
(:mod:`repro.query.compile`) lowers onto a
:class:`~repro.core.spec.PipelineSpec` for the DAG scheduler.

Node vocabulary:

* ``source`` — a literal item list (a query's leaf; joins have two).
* Reducing / reordering ops — ``filter``, ``sort``, ``resolve`` (dedup to
  one representative per duplicate cluster), ``top_k``, ``join`` (semi-join:
  keep left items with at least one match).
* Annotating ops — ``categorize``, ``cluster``, ``impute``: they compute a
  side result (labels, groups, imputed values) but pass their input items
  through unchanged, which is what lets the optimizer schedule them off the
  critical item path.

Nodes are immutable; optimizer rewrites build new nodes and re-wire
consumers, so plans can be compared before/after optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.exceptions import SpecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.physical import RuntimeStats

#: Ops whose output items are exactly their input items.
ANNOTATORS = frozenset({"categorize", "cluster", "impute"})
#: Ops that may change the item set or its order.
REDUCERS = frozenset({"filter", "sort", "resolve", "top_k", "join"})
#: Everything the planner knows how to lower.
KNOWN_OPS = frozenset({"source"}) | ANNOTATORS | REDUCERS


@dataclass(frozen=True)
class LogicalNode:
    """One operation of a logical plan.

    Attributes:
        op: operation name (see module docstring for the vocabulary).
        params: operation parameters (criterion, predicates, strategy, ...).
        inputs: upstream nodes; the first input is always the item-flow
            parent (for ``join``, the left side).
    """

    op: str
    params: Mapping[str, Any] = field(default_factory=dict)
    inputs: tuple["LogicalNode", ...] = ()

    def with_params(self, **updates: Any) -> "LogicalNode":
        """A copy of this node with ``params`` entries replaced/added."""
        merged = dict(self.params)
        merged.update(updates)
        return replace(self, params=merged)

    def with_inputs(self, *inputs: "LogicalNode") -> "LogicalNode":
        """A copy of this node reading from different upstream nodes."""
        return replace(self, inputs=tuple(inputs))

    @property
    def item_parent(self) -> "LogicalNode | None":
        """The node this one's input items flow from (``None`` for sources)."""
        return self.inputs[0] if self.inputs else None

    def __hash__(self) -> int:  # params is a dict; identity is the right key
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class LogicalPlan:
    """A rooted logical plan plus the optimizer notes attached to it."""

    root: LogicalNode
    name: str = "query"
    notes: tuple[str, ...] = ()

    def nodes(self) -> list[LogicalNode]:
        """Reachable nodes in deterministic topological order (inputs first)."""
        order: list[LogicalNode] = []
        seen: set[LogicalNode] = set()

        def visit(node: LogicalNode) -> None:
            if node in seen:
                return
            seen.add(node)
            for upstream in node.inputs:
                visit(upstream)
            order.append(node)

        visit(self.root)
        return order

    def consumers(self) -> dict[LogicalNode, list[LogicalNode]]:
        """Node → reachable nodes that read it (empty list for the root)."""
        table: dict[LogicalNode, list[LogicalNode]] = {node: [] for node in self.nodes()}
        for node in self.nodes():
            for upstream in node.inputs:
                table[upstream].append(node)
        return table

    def replaced(self, old: LogicalNode, new: LogicalNode) -> "LogicalPlan":
        """A plan with every reference to ``old`` re-wired to ``new``."""
        rebuilt: dict[LogicalNode, LogicalNode] = {}

        def rebuild(node: LogicalNode) -> LogicalNode:
            if node is old:
                return new
            if node in rebuilt:
                return rebuilt[node]
            inputs = tuple(rebuild(upstream) for upstream in node.inputs)
            result = node if all(a is b for a, b in zip(inputs, node.inputs)) else node.with_inputs(*inputs)
            rebuilt[node] = result
            return result

        return replace(self, root=rebuild(self.root))

    def noted(self, note: str) -> "LogicalPlan":
        """A plan with one more optimizer note attached."""
        return replace(self, notes=(*self.notes, note))

    def __iter__(self) -> Iterator[LogicalNode]:
        return iter(self.nodes())


def source(items: Any, name: str = "dataset") -> LogicalNode:
    """A leaf node holding a literal item list."""
    item_tuple = tuple(str(item) for item in items)
    if not item_tuple:
        raise SpecError("a query source needs at least one item")
    return LogicalNode(op="source", params={"items": item_tuple, "name": name})


def estimated_items(
    node: LogicalNode, stats: "RuntimeStats | None" = None
) -> list[str]:
    """Statically estimated output items of ``node`` (for quotes/explain).

    Cardinality-reducing ops shrink the estimate (filters by their declared
    ``expected_selectivity``, top-k to ``k``, joins by their declared
    ``selectivity`` prior — conservatively 1.0 when unset); dedup is priced
    conservatively at its input cardinality.  The surviving items are taken
    from the head of the input estimate so token-length averages stay
    representative.

    With a :class:`~repro.core.physical.RuntimeStats` store, *observed*
    statistics override the priors: a predicate's measured surviving
    fraction, the measured dedup survivor ratio, and the measured join
    selectivity — so the second quote of a workload sizes every downstream
    step from what actually happened.
    """
    if node.op == "source":
        return list(node.params["items"])
    parent = node.item_parent
    assert parent is not None  # every non-source node has an item parent
    upstream = estimated_items(parent, stats)
    count = len(upstream)
    if node.op == "filter":
        # Apply the per-predicate selectivities the same way the planner
        # does, so plan-level and spec-level estimates agree.
        predicates = list(node.params.get("predicates", ()))
        priors = list(node.params.get("selectivities", (0.5,)))
        for index in range(max(len(predicates), len(priors))):
            prior = float(priors[index]) if index < len(priors) else 0.5
            observed = (
                stats.filter_selectivity(predicates[index])
                if stats is not None and index < len(predicates)
                else None
            )
            selectivity = observed if observed is not None else prior
            count = min(count, max(1, math.ceil(count * selectivity)))
        return upstream[:count]
    if node.op == "top_k":
        return upstream[: max(1, min(count, int(node.params.get("k", 1))))]
    if node.op == "resolve" and stats is not None:
        ratio = stats.dedup_survivor_ratio()
        if ratio is not None:
            return upstream[: min(count, max(1, math.ceil(count * ratio)))]
        return upstream
    if node.op == "join":
        selectivity = join_selectivity(node, stats)
        return upstream[: min(count, max(1, math.ceil(count * selectivity)))]
    # sort reorders, annotators pass through; estimated at input cardinality.
    return upstream


def join_selectivity(node: LogicalNode, stats: "RuntimeStats | None" = None) -> float:
    """The match-fraction estimate for a join node.

    Precedence: an explicitly declared per-join prior wins (the author
    knows this join); otherwise the session's observed match rate — a
    global, per-join-unkeyed statistic, so it only fills the gap where
    nothing was declared; otherwise a conservative 1.0.
    """
    declared = node.params.get("selectivity")
    if declared is not None:
        return float(declared)
    observed = stats.join_selectivity() if stats is not None else None
    return observed if observed is not None else 1.0


def validate_plan(plan: LogicalPlan) -> None:
    """Raise :class:`SpecError` for plans built from unknown operations."""
    for node in plan.nodes():
        if node.op not in KNOWN_OPS:
            raise SpecError(f"unknown logical operation {node.op!r}")
        if node.op != "source" and not node.inputs:
            raise SpecError(f"logical {node.op} node has no input")
