"""Lowering logical plans onto the DAG pipeline engine.

:func:`compile_plan` turns a :class:`~repro.query.plan.LogicalPlan` into a
:class:`~repro.core.spec.PipelineSpec` the existing scheduler executes:

* Every logical node becomes one named pipeline step (a proxy-blocked
  resolve becomes two: an LLM-free blocking step plus a pair-judgment
  step).  Steps whose input items are statically known compile to concrete
  operator specs — validated, and priced by the planner, before anything
  runs.  Steps downstream of a reducing op compile to
  :data:`~repro.core.spec.SpecFactory` closures that *materialize* their
  input items from upstream step results at run time.
* ``depends_on`` edges are inferred from **data lineage**: a step depends
  only on the steps whose results its input items are materialized from.
  Annotating ops (categorize/cluster/impute) pass items through, so
  downstream steps skip them and the scheduler runs annotators concurrently
  with the rest of the chain for free.  ``lineage_deps=False`` reproduces
  the naive chain (each step gated on its authored predecessor) — the
  baseline the benchmarks compare against.
* The compile-time quote prices every step with the
  :class:`~repro.core.planner.CostPlanner` over *estimated* item lists
  (filters shrink downstream cardinality by their declared selectivity), so
  ``.explain()`` can show per-step quotes even for run-time factory steps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Callable, Mapping

from repro.consistency.transitivity import MatchGraph
from repro.core.planner import (
    AUTO_DEFAULT_STRATEGY,
    CostEstimate,
    CostPlanner,
    PipelineQuote,
)
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.exceptions import SpecError
from repro.index import build_index, corpus_index_name, resolve_embedder
from repro.operators.resolve import PairJudgmentResult, ResolveResult
from repro.proxies.blocking import EmbeddingBlocker
from repro.query.plan import LogicalNode, LogicalPlan, estimated_items, validate_plan


@dataclass(frozen=True)
class CompiledStep:
    """Explain/quote metadata for one compiled pipeline step."""

    name: str
    op: str
    depends_on: tuple[str, ...]
    estimate: CostEstimate | None
    description: str


@dataclass(frozen=True)
class CompiledQuery:
    """A lowered query: the executable spec plus its pre-flight quote."""

    plan: LogicalPlan
    spec: PipelineSpec
    quote: PipelineQuote
    steps: tuple[CompiledStep, ...]
    #: Final step name per logical node (the judge step for proxy resolves).
    step_of: Mapping[LogicalNode, str]
    #: Computes the query's final item list from the pipeline's results.
    extract_output: Callable[[Mapping[str, Any]], list[str]]
    #: Records post-run observations the engine cannot see from inside a
    #: step — proxy-resolve dedup survivor ratios and blocked-pair rates.
    #: ``Dataset.run`` calls this once with the pipeline's results, the
    #: session's :class:`~repro.core.physical.RuntimeStats`, and the names
    #: of checkpoint-restored steps (whose evidence was already recorded by
    #: the run that produced them, so it must not be double-counted).
    record_feedback: Callable[..., None] = lambda results, stats, restored=frozenset(): None


def compile_plan(
    plan: LogicalPlan,
    *,
    planner: CostPlanner | None = None,
    lineage_deps: bool = True,
    budget_dollars: float | None = None,
    store: Any | None = None,
) -> CompiledQuery:
    """Lower ``plan`` to a :class:`PipelineSpec` (see module docstring)."""
    validate_plan(plan)
    nodes = plan.nodes()
    step_of: dict[LogicalNode, str] = {}
    block_step_of: dict[LogicalNode, str] = {}
    for index, node in enumerate(node for node in nodes if node.op != "source"):
        step_of[node] = f"s{index + 1}_{node.op}"
        if node.op == "resolve" and node.params.get("proxy"):
            block_step_of[node] = f"s{index + 1}_block"

    # -- run-time materialization ---------------------------------------------------

    def materialize(node: LogicalNode, results: Mapping[str, Any]) -> list[str]:
        """Output items of ``node`` given the upstream step results."""
        if node.op == "source":
            return list(node.params["items"])
        parent_items = materialize(node.inputs[0], results)
        if node.op in ("categorize", "cluster", "impute"):
            return parent_items
        result = results[step_of[node]]
        if node.op == "filter":
            return list(result.kept)
        if node.op == "sort":
            placed = set(result.order)
            return list(result.order) + [
                item for item in parent_items if item not in placed
            ]
        if node.op == "top_k":
            return list(result.top_items)
        if node.op == "join":
            matched = sorted({left_index for left_index, _ in result.matches})
            return [parent_items[index] for index in matched]
        if node.op == "resolve":
            return _representatives(_unique(parent_items), result)
        raise SpecError(f"cannot materialize logical operation {node.op!r}")

    # -- dependency inference ---------------------------------------------------------

    def lineage_of(node: LogicalNode) -> tuple[str, ...]:
        """Steps whose results :func:`materialize` reads for ``node``."""
        if node.op == "source":
            return ()
        upstream = lineage_of(node.inputs[0])
        if node.op in ("categorize", "cluster", "impute"):
            return upstream
        if node.op in ("filter", "top_k"):
            # kept/top_items are literal strings; the parent chain's results
            # are not needed once this step has run.
            return (step_of[node],)
        return (step_of[node], *upstream)

    def depends_for(node: LogicalNode) -> tuple[str, ...]:
        if lineage_deps:
            deps: list[str] = []
            for upstream in node.inputs:
                deps.extend(lineage_of(upstream))
        else:
            deps = [step_of[upstream] for upstream in node.inputs if upstream.op != "source"]
        return tuple(dict.fromkeys(deps))

    # -- spec construction ------------------------------------------------------------

    def build_spec(node: LogicalNode, *input_items: list[str]) -> TaskSpec:
        params = node.params
        common = {
            "strategy": params.get("strategy", "auto"),
            "strategy_options": dict(params.get("options", {})),
            "budget_dollars": params.get("budget_dollars"),
            "accuracy_target": params.get("accuracy_target"),
        }
        items = list(input_items[0]) if input_items else []
        if node.op == "filter":
            return FilterSpec(
                items=items,
                predicates=tuple(params["predicates"]),
                expected_selectivities=tuple(params.get("selectivities", ())),
                **common,
            )
        if node.op == "sort":
            return SortSpec(
                items=items,
                criterion=params["criterion"],
                validation_order=tuple(params.get("validation_order", ())),
                **common,
            )
        if node.op == "resolve":
            # Exact-duplicate strings are duplicates by definition; merge
            # them for free instead of spending pair judgments on them.
            return ResolveSpec(records=_unique(items), **common)
        if node.op == "categorize":
            return CategorizeSpec(items=items, categories=tuple(params["categories"]), **common)
        if node.op == "top_k":
            # Declarative top-k of a shrunken set: clamp rather than fail.
            k = max(1, min(int(params["k"]), len(items))) if items else int(params["k"])
            return TopKSpec(items=items, criterion=params["criterion"], k=k, **common)
        if node.op == "cluster":
            return ClusterSpec(items=_unique(items), **common)
        if node.op == "impute":
            common.pop("strategy_options")
            return ImputeSpec(
                data=params["data"],
                n_examples=int(params.get("n_examples", 0)),
                strategy=params.get("strategy", "auto"),
                budget_dollars=params.get("budget_dollars"),
                accuracy_target=params.get("accuracy_target"),
            )
        if node.op == "join":
            return JoinSpec(left=items, right=list(input_items[1]), **common)
        raise SpecError(f"cannot build a spec for logical operation {node.op!r}")

    def item_inputs(node: LogicalNode) -> tuple[LogicalNode, ...]:
        """The upstream nodes whose output items feed this node's spec."""
        if node.op == "impute":
            return ()  # reads its ImputationDataset, not the chain items
        return node.inputs

    # -- step emission ----------------------------------------------------------------

    pipeline_steps: list[PipelineStep] = []
    compiled_steps: list[CompiledStep] = []
    quoted: dict[str, CostEstimate] = {}
    unquoted: list[str] = []

    for node in nodes:
        if node.op == "source":
            continue
        name = step_of[node]
        feeds = item_inputs(node)
        static = all(lineage_of(upstream) == () for upstream in feeds)
        if node.op == "resolve" and node.params.get("proxy"):
            block_name, judge_deps = _emit_proxy_resolve(
                node,
                name,
                block_step_of[node],
                depends_for(node),
                materialize,
                build_spec,
                pipeline_steps,
                store,
            )
            estimate = _proxy_estimate(node, planner)
            compiled_steps.append(
                CompiledStep(
                    name=block_name,
                    op="proxy_block",
                    depends_on=depends_for(node),
                    estimate=None,
                    description="embedding blocker: candidate pairs, no LLM calls",
                )
            )
            unquoted.append(block_name)
            compiled_steps.append(
                CompiledStep(
                    name=name,
                    op="resolve(proxy)",
                    depends_on=judge_deps,
                    estimate=estimate,
                    description="judge blocked candidate pairs, then merge components",
                )
            )
            if estimate is not None:
                quoted[name] = estimate
            else:
                unquoted.append(name)
            continue

        depends_on = depends_for(node)
        if static:
            # Static feeds are source-only, so the estimate *is* the literal
            # item list (no stats needed to materialize it).
            task: TaskSpec | Callable[..., TaskSpec] = build_spec(
                node, *[list(estimated_items(up)) for up in feeds]
            )
        else:

            def factory(
                inputs: Mapping[str, Any],
                *,
                _node: LogicalNode = node,
                _feeds: tuple[LogicalNode, ...] = feeds,
            ) -> TaskSpec:
                return build_spec(
                    _node, *[materialize(upstream, inputs) for upstream in _feeds]
                )

            task = factory
        description = _describe(node)
        annotation = _stats_annotation(node, planner)
        if annotation:
            description = f"{description} [{annotation}]"
        pipeline_steps.append(
            PipelineStep(
                name=name, task=task, depends_on=depends_on, description=description
            )
        )

        estimate = _estimate_step(node, feeds, build_spec, planner)
        compiled_steps.append(
            CompiledStep(
                name=name,
                op=node.op,
                depends_on=depends_on,
                estimate=estimate,
                description=description,
            )
        )
        if estimate is not None:
            quoted[name] = estimate
        else:
            unquoted.append(name)

    spec = PipelineSpec(
        name=plan.name,
        steps=pipeline_steps,
        budget_dollars=budget_dollars,
        description="compiled from a fluent Dataset query",
    )
    spec.validate()
    notes: list[str] = []
    if planner is not None and hasattr(planner, "known_cached_calls"):
        # Statically-compiled steps have concrete specs, so their prompts
        # can be probed against the durable response cache right now: a
        # fresh session quoting a previously-run workload reports the known
        # hits (priced at zero inside each step's estimate).
        known_hits = known_probed = 0
        for step in pipeline_steps:
            if isinstance(step.task, TaskSpec):
                hits, probed = planner.known_cached_calls(step.task)
                known_hits += hits
                known_probed += probed
        if known_hits:
            notes.append(
                f"persistent cache: {known_hits} of {known_probed} "
                "statically-known calls already cached (priced at zero)"
            )
    discount_note = planner.cache_discount_note() if planner is not None else None
    if discount_note is not None:
        notes.append(discount_note)
    quote_notes = tuple(notes)
    quote = PipelineQuote(
        pipeline=plan.name, steps=quoted, unquoted=tuple(unquoted), notes=quote_notes
    )
    root = plan.root

    proxy_nodes = [
        node for node in nodes if node.op == "resolve" and node.params.get("proxy")
    ]

    def record_feedback(
        results: Mapping[str, Any], stats: Any, restored: frozenset = frozenset()
    ) -> None:
        """Feed proxy-resolve outcomes back into the session's runtime stats.

        The engine records dedup survivor ratios for records-path resolves
        it runs itself, but a proxy-rewritten dedup executes as a blocking
        callable plus a pair-judgment step — the cluster count only exists
        here, where the judgments are merged into representatives.  Without
        this, only records-path resolves informed the dedup ratio.

        ``restored`` steps are skipped: their evidence was recorded by the
        run that produced the checkpoint, and re-adding it on every free
        replay would let one workload's observations grow without bound.
        """
        for node in proxy_nodes:
            judge_name = step_of[node]
            if judge_name not in results:
                continue  # step stopped/skipped: nothing observed
            if judge_name in restored:
                continue  # replayed from a checkpoint: already recorded
            blocking = results.get(block_step_of[node])
            if blocking is None:
                # Degenerate (<2 survivors) path: the judge ran a records
                # resolve through the engine, which already recorded it.
                continue
            parent_items = _unique(materialize(node.inputs[0], results))
            representatives = _representatives(parent_items, results[judge_name])
            stats.record_dedup(inputs=len(parent_items), survivors=len(representatives))
            block_k = int(node.params.get("block_k", 5))
            effective_k = min(block_k, max(1, len(parent_items) - 1))
            stats.record_blocked_pairs(
                candidates=blocking.n_candidates,
                upper_bound=effective_k * len(parent_items),
            )

    return CompiledQuery(
        plan=plan,
        spec=spec,
        quote=quote,
        steps=tuple(compiled_steps),
        step_of=dict(step_of),
        extract_output=lambda results: materialize(root, results),
        record_feedback=record_feedback,
    )


# -- helpers --------------------------------------------------------------------------


def _unique(items: list[str]) -> list[str]:
    """Items with exact-duplicate strings removed, first occurrence kept."""
    return list(dict.fromkeys(items))


def _representatives(parent_items: list[str], result: Any) -> list[str]:
    """Dedup semantics: the first member of each duplicate cluster, in order."""
    if isinstance(result, ResolveResult):
        clusters = sorted(result.clusters, key=min)
        return [parent_items[min(cluster)] for cluster in clusters]
    if isinstance(result, PairJudgmentResult):
        graph = MatchGraph()
        for item in parent_items:
            graph.add_node(item)
        for judgment in result.judgments:
            if judgment.is_duplicate:
                graph.add_match(judgment.left, judgment.right)
        index_of = {item: index for index, item in enumerate(parent_items)}
        clusters = sorted(
            (sorted(index_of[item] for item in component) for component in graph.components()),
            key=min,
        )
        return [parent_items[cluster[0]] for cluster in clusters]
    raise SpecError(f"unexpected resolve step result {type(result).__name__}")


def _emit_proxy_resolve(
    node: LogicalNode,
    judge_name: str,
    block_name: str,
    parent_deps: tuple[str, ...],
    materialize: Callable[[LogicalNode, Mapping[str, Any]], list[str]],
    build_spec: Callable[..., TaskSpec],
    pipeline_steps: list[PipelineStep],
    compile_store: Any | None = None,
) -> tuple[str, tuple[str, ...]]:
    """Emit the blocking + pair-judgment step pair for a proxy resolve."""
    parent = node.inputs[0]
    block_k = int(node.params.get("block_k", 5))

    def run_blocker(session: Any, inputs: Mapping[str, Any]) -> Any:
        items = _unique(materialize(parent, inputs))
        if len(items) < 2:
            return None
        # Route neighbor-finding through the vector-index layer: embeddings
        # go through the store's durable cache, and the built index
        # persists under a content-fingerprinted name, so re-running the
        # same workload neither re-embeds nor rebuilds.  Corpus size picks
        # exact vs LSH ("auto"), which is what keeps blocking sub-quadratic
        # once item lists grow past a few thousand.
        store = (
            compile_store
            if compile_store is not None
            else getattr(session, "store", None)
        )
        embedder = resolve_embedder(store=store)
        index_name = corpus_index_name(items, embedder, prefix="block")
        reused = False
        index: Any = None
        if store is not None:
            index = store.load_vector_index(index_name)
            if (
                index is not None
                and len(index) == len(items)
                and index.dimensions == embedder.dimensions
            ):
                reused = True
            else:
                index = None
        if index is None:
            index = build_index(
                items,
                embedder=embedder,
                store=store,
                name=index_name if store is not None else None,
            )
        k = min(block_k, max(1, len(items) - 1))
        probes_before = int(getattr(index, "probes", 0))
        candidates_before = int(getattr(index, "candidates_examined", 0))
        result = EmbeddingBlocker(k=k, embedder=embedder, index=index).block(items)
        probed = int(getattr(index, "probes", 0)) - probes_before
        stats = getattr(session, "stats", None)
        if stats is not None and probed > 0:
            stats.record_probe_candidates(
                candidates=int(getattr(index, "candidates_examined", 0))
                - candidates_before,
                probed=probed,
            )
        tracer = getattr(session, "tracer", None)
        if tracer is not None:
            tracer.record(
                operator=f"index:{getattr(index, 'kind', 'unknown')}",
                model=str(getattr(embedder, "model", "embedder")),
                prompt=f"knn_graph(k={k}) over {len(items)} texts [{index_name}]",
                response_text=f"{result.n_candidates} candidate pairs",
                cost=0.0,
                cache_hit=reused,
            )
        return result

    pipeline_steps.append(
        PipelineStep(
            name=block_name,
            run=run_blocker,
            depends_on=parent_deps,
            description="embedding-blocking proxy (LLM-free)",
        )
    )

    def judge_factory(inputs: Mapping[str, Any]) -> TaskSpec:
        items = _unique(materialize(parent, inputs))
        blocking = inputs[block_name]
        if blocking is None:
            # Degenerate input (a single survivor): one grouping prompt.
            return build_spec(node.with_params(proxy=False, strategy="single_prompt"), items)
        pairs = [(items[i], items[j]) for i, j in blocking.candidate_pairs]
        return ResolveSpec(
            pairs=pairs,
            strategy="pairwise",
            budget_dollars=node.params.get("budget_dollars"),
            accuracy_target=node.params.get("accuracy_target"),
        )

    judge_deps = tuple(dict.fromkeys((block_name, *parent_deps)))
    pipeline_steps.append(
        PipelineStep(
            name=judge_name,
            task=judge_factory,
            depends_on=judge_deps,
            description="pairwise judgments over blocked candidates",
        )
    )
    return block_name, judge_deps


def _estimate_step(
    node: LogicalNode,
    feeds: tuple[LogicalNode, ...],
    build_spec: Callable[..., TaskSpec],
    planner: CostPlanner | None,
) -> CostEstimate | None:
    """Quote one step over statically estimated input items.

    The upstream estimates consult the planner's runtime stats when it has
    them, so a second quote of an executed workload sizes every downstream
    step from observed selectivities instead of priors.
    """
    if planner is None:
        return None
    stats = getattr(planner, "stats", None)
    try:
        spec = build_spec(node, *[estimated_items(upstream, stats) for upstream in feeds])
        return planner.estimate_spec(spec)
    except SpecError:
        return None


def _stats_annotation(node: LogicalNode, planner: CostPlanner | None) -> str:
    """A "prior -> observed" note for ``.explain()`` when stats exist."""
    stats = getattr(planner, "stats", None)
    if stats is None:
        return ""
    parts: list[str] = []
    if node.op == "filter":
        priors = list(node.params.get("selectivities", ()))
        for index, predicate in enumerate(node.params.get("predicates", ())):
            observed = stats.filter_selectivity(predicate)
            if observed is None:
                continue
            prior = float(priors[index]) if index < len(priors) else 0.5
            parts.append(f"selectivity prior {prior:.2f} -> observed {observed:.2f}")
    elif node.op == "resolve":
        ratio = stats.dedup_survivor_ratio()
        if ratio is not None:
            parts.append(f"dedup survivors observed {ratio:.2f}")
    elif node.op == "join":
        observed = stats.join_selectivity()
        if observed is not None:
            declared = node.params.get("selectivity")
            if declared is not None:
                # An authored per-join prior outranks the session-global
                # observed match rate; surface both so the choice is visible.
                parts.append(
                    f"join selectivity declared {float(declared):.2f} "
                    f"(observed {observed:.2f})"
                )
            else:
                parts.append(f"join selectivity observed {observed:.2f}")
    strategy = node.params.get("strategy", "auto")
    if strategy == "auto":
        # Ratios are keyed by the strategy that executed; an auto node's
        # ratio lives under its default — the same mapping the planner
        # applies when it scales the quote, so every scaled step is
        # annotated.  (Query resolve nodes are records-mode: "pairwise".)
        strategy = AUTO_DEFAULT_STRATEGY.get(node.op, strategy)
    call_ratio = stats.call_ratio(f"{node.op}:{strategy}")
    if call_ratio is not None and node.op != "filter":
        parts.append(f"call ratio observed {call_ratio:.2f}")
    return "; ".join(parts)


def _proxy_estimate(node: LogicalNode, planner: CostPlanner | None) -> CostEstimate | None:
    """Quote a proxy-blocked resolve: pair judgments over the blocked candidates.

    The structural prior is the k·n upper bound; once a blocking run has
    been observed (this session or a loaded workload profile), the quote
    shrinks to the observed mutual-neighbor candidate fraction of that
    bound — symmetric and overlapping neighbor pairs deduplicate, so the
    real candidate count routinely lands well under k·n.
    """
    if planner is None:
        return None
    items = estimated_items(node.inputs[0], getattr(planner, "stats", None))
    if len(items) < 2:
        return None
    block_k = int(node.params.get("block_k", 5))
    upper_bound = block_k * len(items)
    count = min(upper_bound, len(items) * (len(items) - 1) // 2)
    rate = planner.observed_blocked_pair_rate()
    if rate is not None:
        count = min(count, max(1, int(round(upper_bound * rate))))
    pairs: list[tuple[str, str]] = []
    for distance in range(1, len(items)):
        for index in range(len(items) - distance):
            if len(pairs) >= count:
                break
            pairs.append((items[index], items[index + distance]))
        if len(pairs) >= count:
            break
    estimate = planner.pair_judgments(pairs)
    return dataclass_replace(estimate, strategy="resolve:proxy_blocked")


def _describe(node: LogicalNode) -> str:
    params = node.params
    if node.op == "filter":
        return "filter: " + " AND ".join(params["predicates"])
    if node.op == "sort":
        return f"sort by {params['criterion']!r}"
    if node.op == "resolve":
        return "resolve duplicates to one representative per entity"
    if node.op == "categorize":
        return "categorize into " + ", ".join(params["categories"])
    if node.op == "top_k":
        return f"top {params['k']} by {params['criterion']!r}"
    if node.op == "cluster":
        return "cluster items into groups"
    if node.op == "impute":
        return f"impute {params['data'].target_attribute!r}"
    if node.op == "join":
        return "semi-join against a second dataset"
    return node.op
