"""Rule-based logical-plan optimizer for the fluent Dataset API.

The paper's thesis is that a declarative frontend should *reorder and
restructure* LLM data work before spending a token on it.  This module is
that reordering layer: a handful of rewrite rules over
:class:`~repro.query.plan.LogicalPlan`, each annotated onto the plan so
``.explain()`` can show what changed and why.

Rules (applied in this order by :func:`optimize`):

1. :func:`fuse_adjacent_filters` — consecutive ``.filter()`` calls with the
   same strategy collapse into one conjunctive filter step; the engine runs
   later predicates only over earlier predicates' survivors, so the fused
   step costs no more than the chain and schedules as a single batched wave.
2. :func:`push_filters_early` — a filter is commuted ahead of expensive
   upstream ops whenever that is semantics-preserving: past per-pair sorts
   (a subset's pairwise comparisons are the same prompts), past pairwise
   duplicate resolution, and past annotating ops (whose side results are
   then computed only for the survivors — the declarative contract is that
   a query's observable output is its final item set plus the annotations
   of the items that survive).  Filters are *not* pushed past ``top_k`` or
   whole-list prompting strategies, where reordering changes the answer.
3. :func:`insert_proxy_prefilters` — a pairwise dedup over n records costs
   O(n²) LLM calls; when the :class:`~repro.core.planner.CostPlanner` says
   an embedding-blocking proxy (k·n candidate pairs) is strictly cheaper,
   the resolve node is rewritten to run an LLM-free
   :class:`~repro.proxies.blocking.EmbeddingBlocker` step first and judge
   only the candidate pairs.

Dependency inference from data lineage (annotators off the critical item
path, so independent branches schedule concurrently) happens at compile
time — see :func:`repro.query.compile.compile_plan` — because it is a
property of the lowering, not a plan rewrite.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.config import DEFAULT_CONFIG
from repro.core.planner import CostPlanner
from repro.query.plan import ANNOTATORS, LogicalNode, LogicalPlan, estimated_items

#: Sort strategies whose unit prompts are per-pair or per-item, so sorting a
#: subset issues a subset of the same prompts (commuting a filter past them
#: cannot change the survivors' relative order at temperature 0).
_PUSH_SAFE_SORT = {"auto", "pairwise", "pairwise_consistent", "rating"}
#: Resolve strategies safe to commute a filter past (per-pair judgments).
_PUSH_SAFE_RESOLVE = {"auto", "pairwise"}
#: Minimum record count before a blocking proxy is worth considering.
_PROXY_MIN_ITEMS = 8

Rule = Callable[[LogicalPlan, CostPlanner], LogicalPlan]


def _single_consumer_parent(
    plan: LogicalPlan, node: LogicalNode
) -> LogicalNode | None:
    """``node``'s item parent, if this node is its only consumer."""
    parent = node.item_parent
    if parent is None:
        return None
    consumers = plan.consumers()
    return parent if consumers.get(parent, []) == [node] else None


def fuse_adjacent_filters(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Collapse filter-of-filter chains into one conjunctive filter node."""
    changed = True
    while changed:
        changed = False
        for node in plan.nodes():
            if node.op != "filter":
                continue
            parent = _single_consumer_parent(plan, node)
            if parent is None or parent.op != "filter":
                continue
            if node.params.get("strategy") != parent.params.get("strategy"):
                continue
            if node.params.get("options") != parent.params.get("options"):
                continue
            # Fusing would silently drop the parent's per-step caps if they
            # differed; only identical targets can share one step.
            if node.params.get("budget_dollars") != parent.params.get("budget_dollars"):
                continue
            if node.params.get("accuracy_target") != parent.params.get("accuracy_target"):
                continue
            if node.params.get("pushdown", True) != parent.params.get("pushdown", True):
                continue
            fused = node.with_params(
                predicates=(*parent.params["predicates"], *node.params["predicates"]),
                selectivities=(
                    *parent.params.get("selectivities", (0.5,)),
                    *node.params.get("selectivities", (0.5,)),
                ),
            ).with_inputs(*parent.inputs)
            plan = plan.replaced(node, fused).noted(
                "fused adjacent filters "
                + " AND ".join(repr(p) for p in fused.params["predicates"])
                + " into one conjunctive step"
            )
            changed = True
            break
    return plan


def _pushable_past(node: LogicalNode) -> bool:
    """Whether a per-item filter commutes past ``node`` without changing results."""
    if node.op in ANNOTATORS:
        return True
    if node.op == "sort":
        # A validation_order pins labelled items that a pushed filter could
        # remove (and lets the auto-strategy selector pick whole-list
        # strategies), so those sorts stay where the author put them.
        return (
            node.params.get("strategy", "auto") in _PUSH_SAFE_SORT
            and not node.params.get("validation_order")
        )
    if node.op == "resolve":
        return (
            node.params.get("strategy", "auto") in _PUSH_SAFE_RESOLVE
            and not node.params.get("proxy")
        )
    return False


def push_filters_early(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Commute filters ahead of expensive upstream ops where safe.

    Pushing a filter ahead of a dedup assumes the predicate is
    *entity-level* (duplicate records agree on it) — the declarative
    contract documented in :meth:`repro.query.Dataset.filter`.  Authors
    whose predicate distinguishes duplicate variants opt out per filter
    with ``pushdown=False``.
    """
    changed = True
    while changed:
        changed = False
        for node in plan.nodes():
            if node.op != "filter" or not node.params.get("pushdown", True):
                continue
            parent = _single_consumer_parent(plan, node)
            if parent is None or not _pushable_past(parent):
                continue
            pushed_filter = node.with_inputs(parent.inputs[0], *node.inputs[1:])
            lifted_parent = parent.with_inputs(pushed_filter, *parent.inputs[1:])
            plan = plan.replaced(node, lifted_parent).noted(
                "pushed filter "
                + " AND ".join(repr(p) for p in node.params["predicates"])
                + f" ahead of {parent.op}"
            )
            changed = True
            break
    return plan


def insert_proxy_prefilters(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Rewrite pairwise dedups to block with an embedding proxy when it pays."""
    changed = True
    while changed:
        changed = False
        # Rescan after every rewrite: replaced() rebuilds downstream node
        # identities, so references from a pre-rewrite snapshot go stale.
        for node in plan.nodes():
            if node.op != "resolve" or node.params.get("proxy"):
                continue
            if node.params.get("strategy", "auto") not in _PUSH_SAFE_RESOLVE:
                continue
            parent = node.item_parent
            assert parent is not None
            items = estimated_items(parent)
            if len(items) < _PROXY_MIN_ITEMS:
                continue
            block_k = int(node.params.get("block_k", 5))
            pairwise_dollars = planner.pairwise(items).dollars
            candidate_count = min(block_k * len(items), len(items) * (len(items) - 1) // 2)
            blocked_dollars = planner.pair_judgments(
                _synthetic_pairs(items, candidate_count)
            ).dollars
            if blocked_dollars >= pairwise_dollars:
                continue
            plan = plan.replaced(node, node.with_params(proxy=True, block_k=block_k)).noted(
                f"inserted embedding-blocking proxy before resolve "
                f"(~{candidate_count} candidate pairs instead of "
                f"{len(items) * (len(items) - 1) // 2}: "
                f"${blocked_dollars:.6f} vs ${pairwise_dollars:.6f})"
            )
            changed = True
            break
    return plan


def _synthetic_pairs(items: Sequence[str], count: int) -> list[tuple[str, str]]:
    """Deterministic representative pairs for pricing a blocked judgment set."""
    pairs: list[tuple[str, str]] = []
    n = len(items)
    for distance in range(1, n):
        for index in range(n - distance):
            if len(pairs) >= count:
                return pairs
            pairs.append((items[index], items[index + distance]))
    return pairs if pairs else [(items[0], items[0])]


#: The standard rule set, in application order.  Fusion runs again after
#: pushdown because commuting filters upward can make them adjacent.
DEFAULT_RULES: tuple[Rule, ...] = (
    fuse_adjacent_filters,
    push_filters_early,
    fuse_adjacent_filters,
    insert_proxy_prefilters,
)


def optimize(
    plan: LogicalPlan,
    *,
    planner: CostPlanner | None = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
) -> LogicalPlan:
    """Apply the rewrite rules to ``plan`` and return the optimized plan.

    Args:
        plan: the logical plan to rewrite (left untouched; plans are
            immutable).
        planner: cost planner the cost-based rules consult; defaults to a
            planner over the library's default chat model.
        rules: rules to apply, in order (defaults to :data:`DEFAULT_RULES`).
    """
    planner = planner or CostPlanner(DEFAULT_CONFIG.chat_model)
    for rule in rules:
        plan = rule(plan, planner)
    return plan
