"""Rule-based logical-plan optimizer for the fluent Dataset API.

The paper's thesis is that a declarative frontend should *reorder and
restructure* LLM data work before spending a token on it.  This module is
that reordering layer: a handful of rewrite rules over
:class:`~repro.query.plan.LogicalPlan`, each annotated onto the plan so
``.explain()`` can show what changed and why.

Rules (applied in this order by :func:`optimize`):

1. :func:`share_common_subplans` — structurally identical subplans reached
   from different branches (a prefix the author built twice, or two
   branches of a ``.join()`` over the same chain) are merged so the shared
   prefix compiles to *one* set of pipeline steps; downstream consumers
   fan out as ``depends_on`` edges from the shared steps.
2. :func:`fuse_adjacent_filters` — consecutive ``.filter()`` calls with the
   same strategy collapse into one conjunctive filter step; the engine runs
   later predicates only over earlier predicates' survivors, so the fused
   step costs no more than the chain and schedules as a single batched wave.
3. :func:`push_filters_early` — a filter is commuted ahead of expensive
   upstream ops whenever that is semantics-preserving: past per-pair sorts
   (a subset's pairwise comparisons are the same prompts), past pairwise
   duplicate resolution, and past annotating ops (whose side results are
   then computed only for the survivors — the declarative contract is that
   a query's observable output is its final item set plus the annotations
   of the items that survive).  Filters are *not* pushed past ``top_k`` or
   whole-list prompting strategies, where reordering changes the answer.
4. :func:`push_filters_into_joins` — a filter directly above a semi-join
   commutes into the join's *left* input: every join strategy judges each
   left record independently against the right side, so filtering the left
   input first is exact and the join probes only the survivors.  Fusion and
   both pushdown rules run to a fixpoint, so a filter can travel past a
   sort, into a join input, and onward up the left branch.
5. :func:`order_semi_joins` — adjacent semi-joins commute (each keeps a
   subset of the same left items); when the planner says running the other
   join first is strictly cheaper — because its right side is smaller or
   its declared/observed match selectivity shrinks the surviving left set
   more — the two are swapped.
6. :func:`insert_proxy_prefilters` — a pairwise dedup over n records costs
   O(n²) LLM calls; when the :class:`~repro.core.planner.CostPlanner` says
   an embedding-blocking proxy (k·n candidate pairs) is strictly cheaper,
   the resolve node is rewritten to run an LLM-free
   :class:`~repro.proxies.blocking.EmbeddingBlocker` step first and judge
   only the candidate pairs.

Cost-gated rules price candidate rewrites through the planner, and a
planner fed by :class:`~repro.core.physical.RuntimeStats` (e.g.
``engine.planner()`` after the engine has executed work) prices them from
*observed* selectivities and call ratios rather than static priors — the
adaptive feedback loop the physical-planning layer closes.

Dependency inference from data lineage (annotators off the critical item
path, so independent branches schedule concurrently) happens at compile
time — see :func:`repro.query.compile.compile_plan` — because it is a
property of the lowering, not a plan rewrite.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

from repro.config import DEFAULT_CONFIG
from repro.core.planner import CostPlanner
from repro.core.spec import FilterSpec, JoinSpec
from repro.exceptions import ConfigurationError, SpecError
from repro.query.plan import (
    ANNOTATORS,
    LogicalNode,
    LogicalPlan,
    estimated_items,
    join_selectivity,
)

#: Sort strategies whose unit prompts are per-pair or per-item, so sorting a
#: subset issues a subset of the same prompts (commuting a filter past them
#: cannot change the survivors' relative order at temperature 0).
_PUSH_SAFE_SORT = {"auto", "pairwise", "pairwise_consistent", "rating"}
#: Resolve strategies safe to commute a filter past (per-pair judgments).
_PUSH_SAFE_RESOLVE = {"auto", "pairwise"}
#: Minimum record count before a blocking proxy is worth considering.
_PROXY_MIN_ITEMS = 8

Rule = Callable[[LogicalPlan, CostPlanner], LogicalPlan]


def _single_consumer_parent(
    plan: LogicalPlan, node: LogicalNode
) -> LogicalNode | None:
    """``node``'s item parent, if this node is its only consumer."""
    parent = node.item_parent
    if parent is None:
        return None
    consumers = plan.consumers()
    return parent if consumers.get(parent, []) == [node] else None


def fuse_adjacent_filters(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Collapse filter-of-filter chains into one conjunctive filter node."""
    changed = True
    while changed:
        changed = False
        for node in plan.nodes():
            if node.op != "filter":
                continue
            parent = _single_consumer_parent(plan, node)
            if parent is None or parent.op != "filter":
                continue
            if node.params.get("strategy") != parent.params.get("strategy"):
                continue
            if node.params.get("options") != parent.params.get("options"):
                continue
            # Fusing would silently drop the parent's per-step caps if they
            # differed; only identical targets can share one step.
            if node.params.get("budget_dollars") != parent.params.get("budget_dollars"):
                continue
            if node.params.get("accuracy_target") != parent.params.get("accuracy_target"):
                continue
            if node.params.get("pushdown", True) != parent.params.get("pushdown", True):
                continue
            fused = node.with_params(
                predicates=(*parent.params["predicates"], *node.params["predicates"]),
                selectivities=(
                    *parent.params.get("selectivities", (0.5,)),
                    *node.params.get("selectivities", (0.5,)),
                ),
            ).with_inputs(*parent.inputs)
            plan = plan.replaced(node, fused).noted(
                "fused adjacent filters "
                + " AND ".join(repr(p) for p in fused.params["predicates"])
                + " into one conjunctive step"
            )
            changed = True
            break
    return plan


def _structural_key(node: LogicalNode, keys: dict[LogicalNode, Any]) -> Any:
    """A hashable key equal for structurally identical subplans.

    ``keys`` must already hold the keys of ``node``'s inputs (nodes are
    visited in topological order).  Unhashable parameter values (e.g. an
    ``ImputationDataset``) compare by identity, which is the right notion
    of "the same data" for sharing.
    """
    return (node.op, _freeze(node.params), tuple(keys[upstream] for upstream in node.inputs))


def _freeze(value: Any) -> Any:
    if isinstance(value, Mapping):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(map(repr, value)))
    try:
        hash(value)
    except TypeError:
        return id(value)
    return value


def share_common_subplans(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Merge structurally identical subplans so a shared prefix compiles once.

    A branched query whose branches rebuild the same chain (same source
    items, same operations, same parameters) would otherwise compile the
    prefix once per branch and pay for it once per branch in the quote.
    After sharing, the prefix is a single set of pipeline steps and every
    branch's steps simply ``depends_on`` them.  Exact at temperature 0:
    identical specs produce identical results.
    """
    canonical: dict[LogicalNode, LogicalNode] = {}
    keys: dict[LogicalNode, Any] = {}
    first_by_key: dict[Any, LogicalNode] = {}
    shared: list[str] = []
    for node in plan.nodes():
        inputs = tuple(canonical[upstream] for upstream in node.inputs)
        rebuilt = (
            node
            if all(a is b for a, b in zip(inputs, node.inputs))
            else node.with_inputs(*inputs)
        )
        keys[node] = key = _structural_key(rebuilt, keys)
        existing = first_by_key.get(key)
        if existing is not None and existing is not rebuilt:
            canonical[node] = existing
            if node.op != "source":
                shared.append(node.op)
        else:
            first_by_key.setdefault(key, rebuilt)
            canonical[node] = rebuilt
        keys[canonical[node]] = key
    root = canonical[plan.root]
    if root is plan.root and not shared:
        return plan
    plan = LogicalPlan(root=root, name=plan.name, notes=plan.notes)
    for op in shared:
        plan = plan.noted(
            f"shared common {op} subplan across branches (compiled once, "
            "dependents fan out)"
        )
    return plan


def _pushable_past(node: LogicalNode) -> bool:
    """Whether a per-item filter commutes past ``node`` without changing results."""
    if node.op in ANNOTATORS:
        return True
    if node.op == "sort":
        # A validation_order pins labelled items that a pushed filter could
        # remove (and lets the auto-strategy selector pick whole-list
        # strategies), so those sorts stay where the author put them.
        return (
            node.params.get("strategy", "auto") in _PUSH_SAFE_SORT
            and not node.params.get("validation_order")
        )
    if node.op == "resolve":
        return (
            node.params.get("strategy", "auto") in _PUSH_SAFE_RESOLVE
            and not node.params.get("proxy")
        )
    return False


def push_filters_early(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Commute filters ahead of expensive upstream ops where safe.

    Pushing a filter ahead of a dedup assumes the predicate is
    *entity-level* (duplicate records agree on it) — the declarative
    contract documented in :meth:`repro.query.Dataset.filter`.  Authors
    whose predicate distinguishes duplicate variants opt out per filter
    with ``pushdown=False``.
    """
    changed = True
    while changed:
        changed = False
        for node in plan.nodes():
            if node.op != "filter" or not node.params.get("pushdown", True):
                continue
            parent = _single_consumer_parent(plan, node)
            if parent is None or not _pushable_past(parent):
                continue
            pushed_filter = node.with_inputs(parent.inputs[0], *node.inputs[1:])
            lifted_parent = parent.with_inputs(pushed_filter, *parent.inputs[1:])
            plan = plan.replaced(node, lifted_parent).noted(
                "pushed filter "
                + " AND ".join(repr(p) for p in node.params["predicates"])
                + f" ahead of {parent.op}"
            )
            changed = True
            break
    return plan


def push_filters_into_joins(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Commute a filter directly above a semi-join into the join's left input.

    Every join strategy (``all_pairs``, ``blocked``, ``proxy_blocked``)
    judges each left record against the right side independently of the
    other left records, so filtering the left input first keeps exactly the
    records that would have survived filtering the join's output — and the
    join probes only the survivors.  The right input is untouched (the
    predicate ranges over the left items flowing through the query).

    Unlike plain pushdown, this move is not always a win: a highly
    selective join can shrink the filter's input more than the filter
    shrinks the join's, so the rewrite is cost-gated — the planner prices
    both orders (selectivities observed over priors) and the filter only
    moves when that does not increase the quoted total.
    """
    changed = True
    while changed:
        changed = False
        for node in plan.nodes():
            if node.op != "filter" or not node.params.get("pushdown", True):
                continue
            parent = _single_consumer_parent(plan, node)
            if parent is None or parent.op != "join":
                continue
            pushed_filter = node.with_inputs(parent.inputs[0])
            lifted_join = parent.with_inputs(pushed_filter, *parent.inputs[1:])
            current, pushed = _filter_join_order_dollars(
                planner, node, parent, pushed_filter, lifted_join
            )
            if pushed > current + 1e-12:
                continue
            plan = plan.replaced(node, lifted_join).noted(
                "pushed filter "
                + " AND ".join(repr(p) for p in node.params["predicates"])
                + f" into the join's left input (${pushed:.6f} vs ${current:.6f})"
            )
            changed = True
            break
    return plan


def _filter_join_order_dollars(
    planner: CostPlanner,
    filter_node: LogicalNode,
    join_node: LogicalNode,
    pushed_filter: LogicalNode,
    lifted_join: LogicalNode,
) -> tuple[float, float]:
    """Quoted dollars of filter-after-join vs. filter-inside-left-input."""
    stats = getattr(planner, "stats", None)

    def spec_for(node: LogicalNode) -> Any:
        items = estimated_items(node.inputs[0], stats)
        if node.op == "filter":
            return FilterSpec(
                items=items,
                predicates=tuple(node.params["predicates"]),
                expected_selectivities=tuple(node.params.get("selectivities", ())),
                strategy=node.params.get("strategy", "auto"),
                strategy_options=dict(node.params.get("options", {})),
            )
        return JoinSpec(
            left=items,
            right=estimated_items(node.inputs[1], stats),
            strategy=node.params.get("strategy", "auto"),
            strategy_options=dict(node.params.get("options", {})),
        )

    def dollars(*nodes: LogicalNode) -> float:
        total = 0.0
        for node in nodes:
            try:
                total += planner.estimate_spec(spec_for(node)).dollars
            except (SpecError, ConfigurationError):
                return float("inf")
        return total

    current = dollars(join_node, filter_node)
    pushed = dollars(pushed_filter, lifted_join)
    return current, pushed


def _join_chain_dollars(
    planner: CostPlanner,
    left_items: Sequence[str],
    joins: Sequence[LogicalNode],
) -> float:
    """Quoted dollars of running ``joins`` over ``left_items`` in order.

    Each join probes the current left estimate against its own right side,
    then shrinks the surviving set by its match selectivity (the declared
    prior, or the observed join selectivity when stats are attached).
    """
    stats = getattr(planner, "stats", None)
    total = 0.0
    survivors = list(left_items)
    for join in joins:
        right = estimated_items(join.inputs[1], stats)
        if not survivors or not right:
            break
        spec = JoinSpec(
            left=survivors,
            right=right,
            strategy=join.params.get("strategy", "auto"),
            strategy_options=dict(join.params.get("options", {})),
        )
        try:
            total += planner.estimate_spec(spec).dollars
        except (SpecError, ConfigurationError):
            return float("inf")
        selectivity = join_selectivity(join, stats)
        kept = min(len(survivors), max(1, math.ceil(len(survivors) * selectivity)))
        survivors = survivors[:kept]
    return total


def order_semi_joins(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Swap adjacent semi-joins when probing the cheaper/sharper one first pays.

    Two stacked semi-joins both keep subsets of the same left items, and
    each judges every left record independently, so their order is
    semantics-free — but not cost-free: the first join probes the full
    left set, the second only its survivors.  The planner prices both
    orders (using declared selectivity priors, or observed join
    selectivity once the session has run) and keeps the cheaper one.
    """
    changed = True
    while changed:
        changed = False
        consumers = plan.consumers()
        for outer in plan.nodes():
            if outer.op != "join":
                continue
            inner = outer.item_parent
            if inner is None or inner.op != "join":
                continue
            if consumers.get(inner, []) != [outer]:
                continue
            base_items = estimated_items(inner.inputs[0], getattr(planner, "stats", None))
            if not base_items:
                continue
            current = _join_chain_dollars(planner, base_items, (inner, outer))
            swapped = _join_chain_dollars(planner, base_items, (outer, inner))
            if not swapped < current - 1e-12:
                continue
            new_inner = outer.with_inputs(inner.inputs[0], *outer.inputs[1:])
            new_outer = inner.with_inputs(new_inner, *inner.inputs[1:])
            plan = plan.replaced(outer, new_outer).noted(
                f"reordered adjacent semi-joins by estimated cardinality "
                f"(${swapped:.6f} vs ${current:.6f})"
            )
            changed = True
            break
    return plan


def insert_proxy_prefilters(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
    """Rewrite pairwise dedups to block with an embedding proxy when it pays."""
    changed = True
    while changed:
        changed = False
        # Rescan after every rewrite: replaced() rebuilds downstream node
        # identities, so references from a pre-rewrite snapshot go stale.
        for node in plan.nodes():
            if node.op != "resolve" or node.params.get("proxy"):
                continue
            if node.params.get("strategy", "auto") not in _PUSH_SAFE_RESOLVE:
                continue
            parent = node.item_parent
            assert parent is not None
            items = estimated_items(parent, getattr(planner, "stats", None))
            if len(items) < _PROXY_MIN_ITEMS:
                continue
            block_k = int(node.params.get("block_k", 5))
            pairwise_dollars = planner.pairwise(items).dollars
            candidate_count = min(block_k * len(items), len(items) * (len(items) - 1) // 2)
            blocked_dollars = planner.pair_judgments(
                _synthetic_pairs(items, candidate_count)
            ).dollars
            if blocked_dollars >= pairwise_dollars:
                continue
            plan = plan.replaced(node, node.with_params(proxy=True, block_k=block_k)).noted(
                f"inserted embedding-blocking proxy before resolve "
                f"(~{candidate_count} candidate pairs instead of "
                f"{len(items) * (len(items) - 1) // 2}: "
                f"${blocked_dollars:.6f} vs ${pairwise_dollars:.6f})"
            )
            changed = True
            break
    return plan


def _synthetic_pairs(items: Sequence[str], count: int) -> list[tuple[str, str]]:
    """Deterministic representative pairs for pricing a blocked judgment set."""
    pairs: list[tuple[str, str]] = []
    n = len(items)
    for distance in range(1, n):
        for index in range(n - distance):
            if len(pairs) >= count:
                return pairs
            pairs.append((items[index], items[index + distance]))
    return pairs if pairs else [(items[0], items[0])]


def fixpoint(*rules: Rule, max_rounds: int = 8) -> Rule:
    """Apply ``rules`` repeatedly until none of them changes the plan.

    A filter can need several alternating moves to reach its final spot
    (past a sort, into a join input, then up the left branch); the rules
    stay simple single-move rewrites and this wrapper iterates them.  Each
    rewrite appends a plan note, so "no new notes" is the fixed point.
    """

    def apply(plan: LogicalPlan, planner: CostPlanner) -> LogicalPlan:
        for _ in range(max_rounds):
            before = len(plan.notes)
            for rule in rules:
                plan = rule(plan, planner)
            if len(plan.notes) == before:
                break
        return plan

    return apply


#: The standard rule set, in application order.  Subplan sharing runs first
#: so pushdown sees true consumer counts; fusion and both pushdown rules
#: iterate to a fixpoint because commuting a filter can enable further
#: moves; the cost-gated join ordering and proxy rules run on the settled
#: shape.
DEFAULT_RULES: tuple[Rule, ...] = (
    share_common_subplans,
    fixpoint(fuse_adjacent_filters, push_filters_early, push_filters_into_joins),
    order_semi_joins,
    insert_proxy_prefilters,
)


def optimize(
    plan: LogicalPlan,
    *,
    planner: CostPlanner | None = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
) -> LogicalPlan:
    """Apply the rewrite rules to ``plan`` and return the optimized plan.

    Args:
        plan: the logical plan to rewrite (left untouched; plans are
            immutable).
        planner: cost planner the cost-based rules consult; defaults to a
            planner over the library's default chat model.
        rules: rules to apply, in order (defaults to :data:`DEFAULT_RULES`).
    """
    planner = planner or CostPlanner(DEFAULT_CONFIG.chat_model)
    for rule in rules:
        plan = rule(plan, planner)
    return plan
