"""The fluent, lazily-evaluated Dataset query API.

This is the library's declarative frontend: chainable methods accumulate a
:class:`~repro.query.plan.LogicalPlan` instead of executing anything, and a
terminal call lowers the plan — through the rule-based optimizer — onto the
DAG pipeline engine::

    from repro import Dataset

    result = (
        Dataset(product_texts, name="products")
        .filter("is an electronics product")
        .resolve()                      # dedup to one listing per product
        .top_k("best value for money", k=3)
        .with_budget(0.25)
        .run(engine)
    )
    print(result.items)

Nothing above runs an LLM call until ``.run``; ``.explain()`` renders the
optimized plan with per-step cost quotes, and ``.quote()`` returns the same
numbers as a :class:`~repro.core.planner.PipelineQuote`.  The optimizer
pushes cheap filters ahead of pairwise-heavy operators, fuses adjacent
filters, inserts embedding-blocking proxy steps when the planner says they
pay, and infers ``depends_on`` edges from data lineage so annotating steps
(categorize, cluster, impute) run concurrently with the item chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.config import DEFAULT_CONFIG
from repro.core.engine import DeclarativeEngine
from repro.core.planner import CostPlanner, PipelineQuote
from repro.core.session import PromptSession
from repro.core.spec import PipelineSpec
from repro.core.workflow import WorkflowReport
from repro.data.products import ImputationDataset
from repro.exceptions import SpecError
from repro.index import build_index, corpus_index_name, resolve_embedder
from repro.query.compile import CompiledQuery, compile_plan
from repro.query.optimizer import optimize
from repro.query.plan import ANNOTATORS, LogicalNode, LogicalPlan, source

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import Store


@dataclass
class QueryResult:
    """Outcome of running a fluent query.

    Attributes:
        items: the query's final item list (the root node's output).
        report: the pipeline run report (per-step statuses, costs, waves).
        spec: the :class:`PipelineSpec` the query compiled to.
        quote: the pre-flight quote of the executed plan.
        explain: the rendered plan that was executed.
    """

    items: list[str]
    report: WorkflowReport
    spec: PipelineSpec
    quote: PipelineQuote
    explain: str = ""

    @property
    def results(self) -> dict[str, Any]:
        """Per-step operator results, keyed by compiled step name."""
        return self.report.results

    @property
    def total_cost(self) -> float:
        """Dollars this run spent."""
        return self.report.total_cost

    @property
    def total_calls(self) -> int:
        """LLM calls this run made."""
        return self.report.total_calls

    def step_result(self, name_or_op: str) -> Any:
        """Result of the step named ``name_or_op`` (or the first with that op).

        ``result.step_result("categorize")`` finds the categorize step's
        result without knowing the generated step name.
        """
        if name_or_op in self.report.results:
            return self.report.results[name_or_op]
        for name, value in self.report.results.items():
            if name.split("_", 1)[-1] == name_or_op:
                return value
        raise KeyError(f"no pipeline step matches {name_or_op!r}")


class Dataset:
    """A lazily-evaluated collection of text items with chainable operators.

    Every operator method returns a *new* ``Dataset`` wrapping a grown
    logical plan; the receiver is never mutated, so intermediate datasets
    can be branched and reused.  See the module docstring for the overall
    flow and :mod:`repro.query.optimizer` for what optimization does.
    """

    def __init__(
        self,
        items: Sequence[str] | None = None,
        *,
        name: str = "dataset",
        _node: LogicalNode | None = None,
        _budget_dollars: float | None = None,
        _store: "Store | None" = None,
    ) -> None:
        if _node is None:
            if items is None:
                raise SpecError("a Dataset needs items")
            _node = source(items, name)
        self._node = _node
        self._name = name
        self._budget_dollars = _budget_dollars
        self._store = _store

    def _extend(self, op: str, params: dict[str, Any], *extra_inputs: LogicalNode) -> "Dataset":
        node = LogicalNode(op=op, params=params, inputs=(self._node, *extra_inputs))
        return Dataset(
            name=self._name,
            _node=node,
            _budget_dollars=self._budget_dollars,
            _store=self._store,
        )

    @staticmethod
    def _common(
        strategy: str,
        options: dict[str, Any],
        budget_dollars: float | None,
        accuracy_target: float | None,
    ) -> dict[str, Any]:
        return {
            "strategy": strategy,
            "options": options,
            "budget_dollars": budget_dollars,
            "accuracy_target": accuracy_target,
        }

    # -- chainable operators ---------------------------------------------------------

    def filter(
        self,
        predicate: str,
        *,
        expected_selectivity: float = 0.5,
        pushdown: bool = True,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Keep items satisfying a natural-language predicate.

        ``expected_selectivity`` is the planner's prior for the surviving
        fraction; it shapes downstream cost quotes (and therefore what the
        optimizer considers worth reordering), never the actual result.

        The optimizer may commute this filter ahead of upstream operators.
        Across a ``.resolve()`` dedup that assumes the predicate is
        *entity-level* — duplicate records agree on it (the usual
        declarative contract, like pushing a selection below a
        duplicate-elimination in SQL).  If this predicate distinguishes
        duplicate variants (e.g. "is not the refurbished listing"), pass
        ``pushdown=False`` to keep it exactly where it was written.
        """
        if not predicate:
            raise SpecError("filter needs a predicate")
        if not 0.0 < expected_selectivity <= 1.0:
            raise SpecError("expected_selectivity must be in (0, 1]")
        return self._extend(
            "filter",
            {
                "predicates": (predicate,),
                "selectivities": (expected_selectivity,),
                "pushdown": pushdown,
                **self._common(strategy, options, budget_dollars, accuracy_target),
            },
        )

    def sort(
        self,
        criterion: str,
        *,
        strategy: str = "auto",
        validation_order: Sequence[str] = (),
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Order items by a textual criterion (best first)."""
        if not criterion:
            raise SpecError("sort needs a criterion")
        return self._extend(
            "sort",
            {
                "criterion": criterion,
                "validation_order": tuple(validation_order),
                **self._common(strategy, options, budget_dollars, accuracy_target),
            },
        )

    def resolve(
        self,
        *,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Deduplicate: keep one representative per duplicate cluster.

        The representative is the cluster member appearing first in the
        input order.  The optimizer may insert an embedding-blocking proxy
        ahead of the pairwise judgments when the planner says it pays.
        """
        return self._extend(
            "resolve", self._common(strategy, options, budget_dollars, accuracy_target)
        )

    def categorize(
        self,
        categories: Sequence[str],
        *,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Annotate each item with one of the fixed category labels.

        Items pass through unchanged; read the assignments from
        ``result.step_result("categorize")``.
        """
        return self._extend(
            "categorize",
            {
                "categories": tuple(str(category) for category in categories),
                **self._common(strategy, options, budget_dollars, accuracy_target),
            },
        )

    def top_k(
        self,
        criterion: str,
        k: int = 1,
        *,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Keep the best ``k`` items under a textual criterion."""
        if not criterion:
            raise SpecError("top_k needs a criterion")
        if k < 1:
            raise SpecError("k must be at least 1")
        return self._extend(
            "top_k",
            {
                "criterion": criterion,
                "k": k,
                **self._common(strategy, options, budget_dollars, accuracy_target),
            },
        )

    def cluster(
        self,
        *,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Annotate the items with entity/category groups (items unchanged)."""
        return self._extend(
            "cluster", self._common(strategy, options, budget_dollars, accuracy_target)
        )

    def impute(
        self,
        data: ImputationDataset,
        *,
        n_examples: int = 0,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
    ) -> "Dataset":
        """Annotate the query with an imputation run over ``data``.

        The imputation reads its own dataset rather than the chain items,
        so the optimizer schedules it concurrently with the item chain.
        """
        return self._extend(
            "impute",
            {
                "data": data,
                "n_examples": n_examples,
                "strategy": strategy,
                "budget_dollars": budget_dollars,
                "accuracy_target": accuracy_target,
            },
        )

    def join(
        self,
        other: "Dataset",
        *,
        expected_selectivity: float | None = None,
        strategy: str = "auto",
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
        **options: Any,
    ) -> "Dataset":
        """Semi-join: keep items with at least one fuzzy match in ``other``.

        The match table is available as ``result.step_result("join")``.
        ``expected_selectivity`` is the planner's prior for the fraction of
        items that find a match; like a filter's selectivity it shapes
        downstream cost quotes — and the semi-join ordering rule — never
        the actual result.  An explicitly declared prior always wins (the
        author knows *this* join — declaring 1.0 pins it there); left
        undeclared, the session's observed join match rate fills in once a
        join has executed, and a conservative 1.0 otherwise.
        """
        if not isinstance(other, Dataset):
            raise SpecError("join needs another Dataset")
        params = self._common(strategy, options, budget_dollars, accuracy_target)
        if expected_selectivity is not None:
            if not 0.0 < expected_selectivity <= 1.0:
                raise SpecError("expected_selectivity must be in (0, 1]")
            params["selectivity"] = expected_selectivity
        return self._extend("join", params, other._node)

    def with_budget(self, dollars: float) -> "Dataset":
        """Cap the whole query's spend (enforced as a pipeline-level lease)."""
        if dollars < 0:
            raise SpecError("budget_dollars must be non-negative")
        return Dataset(
            name=self._name,
            _node=self._node,
            _budget_dollars=dollars,
            _store=self._store,
        )

    def with_store(self, store: "Store") -> "Dataset":
        """Attach a durable :class:`~repro.store.Store` to this query.

        ``.run`` then executes checkpointed: each step's result persists as
        it completes, a re-run (same or later process) restores finished
        steps with zero LLM calls, and editing part of the chain re-executes
        only the changed subtree.  The session's workload profile is saved
        to the store after the run.
        """
        return Dataset(
            name=self._name,
            _node=self._node,
            _budget_dollars=self._budget_dollars,
            _store=store,
        )

    # -- semantic search -------------------------------------------------------------

    def _static_items(self) -> list[str]:
        """The dataset's item list, when it is statically known.

        Annotating ops (categorize/cluster/impute) pass items through, so
        chains of them still expose the source items.  Below a reducer
        (filter, sort, resolve, top_k, join) the items only exist after a
        run — searching a guess would be wrong, so that is an error.
        """
        node = self._node
        while node.op in ANNOTATORS:
            node = node.inputs[0]
        if node.op != "source":
            raise SpecError(
                f"search needs statically-known items, but {node.op!r} only "
                "produces its output at run time; call .run(...) and search "
                "a new Dataset over result.items instead"
            )
        return [str(item) for item in node.params["items"]]

    def search(self, query: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` items nearest to ``query`` in embedding space.

        Zero LLM calls: the items are embedded (through the attached
        store's durable cache, when one is attached via
        :meth:`with_store`), indexed — exact for small datasets, LSH past
        a few thousand items — and probed once.  With a store, the built
        index persists under a content-addressed name, so repeated
        searches over an unchanged dataset neither re-embed nor rebuild.

        Returns ``(item, distance)`` pairs, nearest first.
        """
        if not query:
            raise SpecError("search needs a query")
        if k < 1:
            raise SpecError("k must be at least 1")
        items = self._static_items()
        if not items:
            return []
        embedder = resolve_embedder(store=self._store)
        index = build_index(
            items,
            embedder=embedder,
            store=self._store,
            name=(
                corpus_index_name(items, embedder, prefix="search")
                if self._store is not None
                else None
            ),
        )
        hits = index.search(embedder.embed(query), min(k, len(items)))
        return [(items[int(row_id)], float(distance)) for row_id, distance in hits]

    # -- plan access -----------------------------------------------------------------

    def logical_plan(self) -> LogicalPlan:
        """The raw (unoptimized) logical plan this dataset has accumulated."""
        return LogicalPlan(root=self._node, name=self._name)

    def optimized_plan(self, *, planner: CostPlanner | None = None) -> LogicalPlan:
        """The plan after the rule-based optimizer has rewritten it."""
        return optimize(self.logical_plan(), planner=planner or self._default_planner())

    def compile(
        self,
        *,
        optimized: bool = True,
        planner: CostPlanner | None = None,
        store: "Store | None" = None,
    ) -> CompiledQuery:
        """Lower the (optionally optimized) plan to a pipeline spec + quote.

        ``store`` (defaulting to the one attached via :meth:`with_store`)
        is where LLM-free blocking steps persist their embeddings and
        vector indexes.
        """
        planner = planner or self._default_planner()
        plan = self.optimized_plan(planner=planner) if optimized else self.logical_plan()
        return compile_plan(
            plan,
            planner=planner,
            lineage_deps=optimized,
            budget_dollars=self._budget_dollars,
            store=store if store is not None else self._store,
        )

    def to_pipeline(
        self, *, optimized: bool = True, planner: CostPlanner | None = None
    ) -> PipelineSpec:
        """The executable :class:`PipelineSpec` the query compiles to."""
        return self.compile(optimized=optimized, planner=planner).spec

    def quote(
        self, *, optimized: bool = True, planner: CostPlanner | None = None
    ) -> PipelineQuote:
        """Pre-flight quote: per-step estimates over the compiled plan.

        Without ``planner`` the library's default chat model prices the
        quote; pass ``engine.planner()`` to price (and cost-gate the
        optimizer) exactly as a ``.run(engine)`` will.  ``.run`` results
        carry the quote actually used in ``result.quote``.
        """
        return self.compile(optimized=optimized, planner=planner).quote

    def explain(
        self, *, optimized: bool = True, planner: CostPlanner | None = None
    ) -> str:
        """Human-readable plan rendering with per-step cost quotes.

        As with :meth:`quote`, pass ``engine.planner()`` to see the plan a
        ``.run(engine)`` will execute; ``result.explain`` on a run result
        is always the executed plan.
        """
        compiled = self.compile(optimized=optimized, planner=planner)
        return render_explain(compiled, optimized=optimized)

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        engine: "DeclarativeEngine | PromptSession | Any",
        *,
        optimized: bool = True,
        max_concurrency: int | None = None,
        store: "Store | None" = None,
    ) -> QueryResult:
        """Compile the query and execute it on the DAG pipeline engine.

        Args:
            engine: a :class:`DeclarativeEngine`, a :class:`PromptSession`,
                or a raw LLM client (a session/engine is built around it).
            optimized: run the optimizer before compiling (default); pass
                ``False`` to execute the naive authored chain.
            max_concurrency: scheduler pool size for independent steps.
            store: durable store for checkpoint/resume; defaults to the one
                attached via :meth:`with_store` (or the session's own).
        """
        engine = _as_engine(engine)
        if store is None:
            store = self._store
        if store is None:
            store = getattr(engine.session, "store", None)
        compiled = self.compile(optimized=optimized, planner=engine.planner(), store=store)
        report = engine.run_pipeline(
            compiled.spec,
            quote=compiled.quote,
            max_concurrency=max_concurrency,
            store=store,
        )
        items = self._final_items(compiled, report)
        # Close the feedback loop for rewrites the engine cannot see from
        # inside a step: proxy-resolve dedup survivor ratios and observed
        # blocked-pair rates (the next quote prices blocking from these).
        # Checkpoint-restored steps are excluded — their evidence was
        # recorded by the run that produced them.
        compiled.record_feedback(
            report.results,
            engine.session.stats,
            frozenset(report.restored_steps),
        )
        if store is not None:
            # The feedback above landed after run_pipeline's autosave;
            # refresh the stored profile so it carries the full picture.
            store.save_profile(
                engine.session.stats,
                merge=store is not getattr(engine.session, "store", None),
            )
        return QueryResult(
            items=items,
            report=report,
            spec=compiled.spec,
            quote=compiled.quote,
            explain=render_explain(compiled, optimized=optimized),
        )

    @staticmethod
    def _final_items(compiled: CompiledQuery, report: WorkflowReport) -> list[str]:
        if report.stopped_early:
            # A budget stop leaves downstream results missing; the final
            # item list is unknowable, but the report carries the partials.
            return []
        return compiled.extract_output(report.results)

    def _default_planner(self) -> CostPlanner:
        # With a store attached, quotes probe its durable response cache:
        # statically-known prompts a previous session already paid for are
        # priced at zero even before any engine/session exists.
        cache = self._store.response_cache() if self._store is not None else None
        return CostPlanner(DEFAULT_CONFIG.chat_model, response_cache=cache)

    def __repr__(self) -> str:
        ops = " -> ".join(node.op for node in self.logical_plan().nodes())
        return f"Dataset({self._name!r}: {ops})"


def _as_engine(target: Any) -> DeclarativeEngine:
    if isinstance(target, DeclarativeEngine):
        return target
    if isinstance(target, PromptSession):
        return DeclarativeEngine.from_session(target)
    return DeclarativeEngine(target)


def render_explain(compiled: CompiledQuery, *, optimized: bool = True) -> str:
    """Render a compiled query as the ``.explain()`` text block."""
    mode = "optimized" if optimized else "naive"
    lines = [f"Query plan: {compiled.plan.name} ({mode})"]
    name_width = max((len(step.name) for step in compiled.steps), default=4)
    for step in compiled.steps:
        depends = ", ".join(step.depends_on) if step.depends_on else "-"
        if step.estimate is None:
            cost = "         (unquoted)"
        else:
            cost = f"{step.estimate.calls:>5} calls  ${step.estimate.dollars:.6f}"
            if step.estimate.seconds is not None:
                cost += f"  ~{step.estimate.seconds:.1f}s"
        lines.append(f"  {step.name:<{name_width}}  {cost}  <- {depends}")
        lines.append(f"  {'':<{name_width}}  {step.description}")
    quote = compiled.quote
    total = f"Estimated total: {quote.total_calls} calls, ${quote.total_dollars:.6f}"
    seconds = quote.total_seconds
    if seconds is not None:
        # Only latency-observed steps contribute, so the total is a floor
        # when some steps have no wall-clock estimate yet.
        qualifier = ">=" if any(
            estimate.seconds is None for estimate in quote.steps.values()
        ) else "~"
        total += f", {qualifier}{seconds:.1f}s"
    lines.append(total)
    if compiled.spec.budget_dollars is not None:
        lines.append(f"Budget cap: ${compiled.spec.budget_dollars:.6f}")
    if quote.notes:
        lines.append("Quote notes:")
        for note in quote.notes:
            lines.append(f"  - {note}")
    if compiled.plan.notes:
        lines.append("Optimizer notes:")
        for note in compiled.plan.notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)
