"""The fluent declarative query frontend.

``Dataset`` is the user-facing builder (lazy, chainable operator methods);
``optimize``/``DEFAULT_RULES`` expose the logical-plan rewrite rules;
``compile_plan`` lowers a plan onto the DAG pipeline engine.  See
:mod:`repro.query.dataset` for the end-to-end flow.
"""

from repro.query.compile import CompiledQuery, CompiledStep, compile_plan
from repro.query.dataset import Dataset, QueryResult, render_explain
from repro.query.optimizer import (
    DEFAULT_RULES,
    fixpoint,
    fuse_adjacent_filters,
    insert_proxy_prefilters,
    optimize,
    order_semi_joins,
    push_filters_early,
    push_filters_into_joins,
    share_common_subplans,
)
from repro.query.plan import LogicalNode, LogicalPlan, estimated_items, source

__all__ = [
    "CompiledQuery",
    "CompiledStep",
    "DEFAULT_RULES",
    "Dataset",
    "LogicalNode",
    "LogicalPlan",
    "QueryResult",
    "compile_plan",
    "estimated_items",
    "fixpoint",
    "fuse_adjacent_filters",
    "insert_proxy_prefilters",
    "optimize",
    "order_semi_joins",
    "push_filters_early",
    "push_filters_into_joins",
    "render_explain",
    "share_common_subplans",
    "source",
]
