"""Declarative data-processing operators.

Each operator implements one primitive from the paper's vision (sort, resolve,
impute, count, filter, top-k, cluster) and exposes several *strategies* for it
— the coarse single-prompt approach, fine-grained unit tasks, hybrid
coarse-to-fine schemes, and LLM/non-LLM hybrids — behind one declarative call.
The strategy name is the only thing a caller changes to move along the
cost–accuracy tradeoff curve.
"""

from repro.operators.base import OperatorResult, StrategyInfo
from repro.operators.categorize import CategorizeOperator, CategorizeResult
from repro.operators.cluster import ClusterOperator, ClusterResult
from repro.operators.count import CountOperator, CountResult
from repro.operators.filter import FilterOperator, FilterResult
from repro.operators.impute import ImputeOperator, ImputeResult
from repro.operators.join import JoinOperator, JoinResult
from repro.operators.resolve import PairJudgment, ResolveOperator, ResolveResult
from repro.operators.sort import SortOperator, SortResult
from repro.operators.top_k import TopKOperator, TopKResult

__all__ = [
    "CategorizeOperator",
    "CategorizeResult",
    "ClusterOperator",
    "ClusterResult",
    "CountOperator",
    "CountResult",
    "FilterOperator",
    "FilterResult",
    "ImputeOperator",
    "ImputeResult",
    "JoinOperator",
    "JoinResult",
    "OperatorResult",
    "PairJudgment",
    "ResolveOperator",
    "ResolveResult",
    "SortOperator",
    "SortResult",
    "StrategyInfo",
    "TopKOperator",
    "TopKResult",
]
