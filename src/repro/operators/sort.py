"""The sort operator and its prompting strategies (paper Sections 3.1–3.2).

Strategies:

* ``single_prompt`` — put every item into one prompt and ask for the sorted
  list (the paper's baseline).  Cheap, but noisy, and on long lists the
  response drops and hallucinates items.
* ``rating`` — ask for a 1–7 rating per item (O(n) unit tasks) and sort by
  rating, ties broken by input order.  Supports batching several items per
  prompt via ``batch_size`` (the Section 4 "hyperparameter").
* ``pairwise`` — compare every pair (O(n²) unit tasks) and sort by the number
  of comparisons won.  Most expensive, most accurate.
* ``hybrid_sort_insert`` — the Table 2 coarse→fine scheme: one whole-list sort
  first, hallucinations dropped, then every missing item is re-inserted via
  pairwise comparisons against the partially sorted list (both operand orders)
  at the position that minimises inverted comparisons.
* ``pairwise_consistent`` — ``pairwise`` followed by the Section 3.3
  consistency repair (local search for the order violating fewest comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.consistency.ranking_repair import alignment_insert_position, best_consistent_order
from repro.exceptions import DatasetError, ResponseParseError
from repro.llm.parsing import extract_choice, extract_integer, extract_list, extract_ratings
from repro.llm.prompts import (
    pairwise_comparison_prompt,
    rating_batch_prompt,
    rating_prompt,
    sort_list_prompt,
)
from repro.operators.base import BaseOperator, OperatorResult


@dataclass
class SortResult(OperatorResult):
    """Output of a sort run.

    Attributes:
        order: the items in predicted order, best rank first.  Only items from
            the input appear here; hallucinated items are reported separately.
        missing: input items absent from the LLM's response (before any
            re-insertion the strategy may have performed).
        hallucinated: response items that were not in the input.
        scores: per-item scores when the strategy produces them (ratings or
            pairwise win counts).
    """

    order: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    hallucinated: list[str] = field(default_factory=list)
    scores: dict[str, float] = field(default_factory=dict)


class SortOperator(BaseOperator):
    """Sort a list of items by a textual criterion using an LLM."""

    operation = "sort"

    def __init__(self, client, criterion: str, **kwargs) -> None:
        self.criterion = criterion
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "single_prompt",
            self._run_single_prompt,
            description="one prompt containing every item",
            granularity="coarse",
        )
        self.register_strategy(
            "rating",
            self._run_rating,
            description="one 1-7 rating task per item (optionally batched)",
            granularity="coarse",
        )
        self.register_strategy(
            "pairwise",
            self._run_pairwise,
            description="one comparison task per item pair",
            granularity="fine",
        )
        self.register_strategy(
            "hybrid_sort_insert",
            self._run_hybrid_sort_insert,
            description="whole-list sort, then pairwise re-insertion of missing items",
            granularity="hybrid",
        )
        self.register_strategy(
            "pairwise_consistent",
            self._run_pairwise_consistent,
            description="pairwise comparisons followed by consistency repair",
            granularity="hybrid",
        )

    # -- public API ---------------------------------------------------------------

    def run(self, items: Sequence[str], *, strategy: str = "single_prompt", **kwargs) -> SortResult:
        """Sort ``items`` with the named strategy."""
        item_list = [str(item) for item in items]
        if len(item_list) != len(set(item_list)):
            raise DatasetError("sort items must be unique strings")
        if len(item_list) < 2:
            result = SortResult(strategy=strategy, order=list(item_list))
            return result
        usage_before = self._usage_snapshot()
        result: SortResult = self._strategy(strategy)(item_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    # -- strategies ---------------------------------------------------------------

    def _run_single_prompt(self, items: list[str]) -> SortResult:
        """Baseline: the entire list in one prompt."""
        response = self._complete(sort_list_prompt(items, self.criterion))
        try:
            raw_order = extract_list(response.text)
        except ResponseParseError:
            raw_order = []
        known = set(items)
        order = [item for item in raw_order if item in known]
        # Preserve the first occurrence only, in case the response repeats items.
        seen: set[str] = set()
        order = [item for item in order if not (item in seen or seen.add(item))]
        missing = [item for item in items if item not in set(order)]
        hallucinated = [item for item in raw_order if item not in known]
        return SortResult(
            strategy="single_prompt", order=order, missing=missing, hallucinated=hallucinated
        )

    def _run_rating(self, items: list[str], *, batch_size: int = 1) -> SortResult:
        """O(n) rating tasks, sorted by rating (descending), ties by input order.

        All rating prompts are independent, so they are dispatched as one
        batch through the operator's executor.
        """
        if batch_size < 1:
            raise DatasetError("batch_size must be at least 1")
        ratings: dict[str, float] = {}
        if batch_size == 1:
            responses = self._complete_batch(
                [rating_prompt(item, self.criterion) for item in items]
            )
            for item, response in zip(items, responses):
                ratings[item] = float(extract_integer(response.text, minimum=1, maximum=7))
        else:
            chunks = [items[start : start + batch_size] for start in range(0, len(items), batch_size)]
            responses = self._complete_batch(
                [rating_batch_prompt(chunk, self.criterion) for chunk in chunks]
            )
            for chunk, response in zip(chunks, responses):
                for item, value in zip(chunk, extract_ratings(response.text, len(chunk))):
                    ratings[item] = float(min(7, max(1, value)))
        order = sorted(items, key=lambda item: -ratings[item])
        return SortResult(strategy="rating", order=order, scores=dict(ratings))

    def _collect_pairwise(self, items: list[str]) -> dict[tuple[str, str], bool]:
        """Ask one comparison per unordered pair; True means first ranks higher.

        The O(n²) comparisons are independent unit tasks and go out as one
        batch — this is the workload where concurrency buys the most.
        """
        pairs = [
            (items[i], items[j])
            for i in range(len(items))
            for j in range(i + 1, len(items))
        ]
        responses = self._complete_batch(
            [pairwise_comparison_prompt(first, second, self.criterion) for first, second in pairs]
        )
        comparisons: dict[tuple[str, str], bool] = {}
        for (first, second), response in zip(pairs, responses):
            choice = extract_choice(response.text, ["A", "B"])
            comparisons[(first, second)] = choice == "A"
        return comparisons

    def _run_pairwise(self, items: list[str]) -> SortResult:
        """O(n^2) comparisons, sorted by number of comparisons won."""
        comparisons = self._collect_pairwise(items)
        wins = {item: 0 for item in items}
        for (first, second), first_wins in comparisons.items():
            wins[first if first_wins else second] += 1
        order = sorted(items, key=lambda item: -wins[item])
        return SortResult(
            strategy="pairwise", order=order, scores={item: float(w) for item, w in wins.items()}
        )

    def _run_pairwise_consistent(self, items: list[str]) -> SortResult:
        """Pairwise comparisons plus Section 3.3 consistency repair."""
        comparisons = self._collect_pairwise(items)
        order = best_consistent_order(items, comparisons)
        wins = {item: 0 for item in items}
        for (first, second), first_wins in comparisons.items():
            wins[first if first_wins else second] += 1
        return SortResult(
            strategy="pairwise_consistent",
            order=list(order),
            scores={item: float(w) for item, w in wins.items()},
        )

    def _run_hybrid_sort_insert(self, items: list[str]) -> SortResult:
        """Table 2's coarse-to-fine scheme: whole-list sort, then re-insert misses."""
        coarse = self._run_single_prompt(items)
        order = list(coarse.order)
        for missing_item in coarse.missing:
            # Each insertion depends on the order produced by the previous one,
            # so insertions stay sequential — but within one insertion the
            # comparisons against every placed item (both operand orders, to
            # cancel position bias) are independent and run as one batch.
            prompts: list[str] = []
            for other in order:
                prompts.append(pairwise_comparison_prompt(missing_item, other, self.criterion))
                prompts.append(pairwise_comparison_prompt(other, missing_item, self.criterion))
            responses = self._complete_batch(prompts)
            judged_before: dict[str, bool] = {}
            for position_index, other in enumerate(order):
                first_response = responses[2 * position_index]
                second_response = responses[2 * position_index + 1]
                first_says_before = extract_choice(first_response.text, ["A", "B"]) == "A"
                second_says_before = extract_choice(second_response.text, ["A", "B"]) == "B"
                if first_says_before == second_says_before:
                    judged_before[other] = first_says_before
                else:
                    # The two orderings disagree; trust the first phrasing.
                    judged_before[other] = first_says_before
            position = alignment_insert_position(order, judged_before)
            order.insert(position, missing_item)
        return SortResult(
            strategy="hybrid_sort_insert",
            order=order,
            missing=list(coarse.missing),
            hallucinated=list(coarse.hallucinated),
        )
