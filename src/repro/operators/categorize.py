"""The categorize operator: assign items to a fixed set of categories.

"Categorize" is one of the primitives the paper's Section 3 lists alongside
sort, filter, and resolve.  Unlike :mod:`repro.operators.cluster`, the
category labels are known in advance; the task per item is a multiple-choice
question, so the quality-control machinery (self-consistency sampling and
multi-model voting, Section 3.5) applies directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.executor import BatchRequest
from repro.exceptions import ConfigurationError, ResponseParseError
from repro.llm.parsing import extract_choice
from repro.llm.prompts import categorize_prompt
from repro.operators.base import BaseOperator, OperatorResult
from repro.quality.voting import majority_vote


@dataclass
class CategorizeResult(OperatorResult):
    """Output of a categorization run."""

    assignments: dict[str, str] = field(default_factory=dict)
    votes_used: int = 0

    def items_in(self, category: str) -> list[str]:
        """Items assigned to ``category``, in input order."""
        return [item for item, label in self.assignments.items() if label == category]


class CategorizeOperator(BaseOperator):
    """Assign each item to one of a fixed set of category labels."""

    operation = "categorize"

    def __init__(self, client, categories: Sequence[str], **kwargs) -> None:
        labels = [str(category) for category in categories]
        if len(labels) < 2:
            raise ConfigurationError("need at least two categories")
        if len(set(labels)) != len(labels):
            raise ConfigurationError("categories must be distinct")
        self.categories = labels
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "per_item",
            self._run_per_item,
            description="one multiple-choice task per item",
            granularity="fine",
        )
        self.register_strategy(
            "self_consistency",
            self._run_self_consistency,
            description="sample each item several times and majority-vote",
            granularity="fine",
        )
        self.register_strategy(
            "ensemble_vote",
            self._run_ensemble_vote,
            description="ask several models per item and majority-vote",
            granularity="fine",
        )

    def run(self, items: Sequence[str], *, strategy: str = "per_item", **kwargs) -> CategorizeResult:
        """Categorize ``items`` with the named strategy."""
        item_list = [str(item) for item in items]
        usage_before = self._usage_snapshot()
        result: CategorizeResult = self._strategy(strategy)(item_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    # -- helpers --------------------------------------------------------------------

    def _ask(self, item: str, model: str | None = None, temperature: float = 0.0) -> str:
        response = self._complete(
            categorize_prompt(item, self.categories), model=model, temperature=temperature
        )
        return self._parse_choice(response.text)

    def _parse_choice(self, text: str) -> str:
        try:
            return extract_choice(text, self.categories)
        except ResponseParseError:
            return self.categories[0]

    # -- strategies ------------------------------------------------------------------

    def _run_per_item(self, items: list[str]) -> CategorizeResult:
        # Independent multiple-choice tasks: dispatch the lot as one batch.
        responses = self._complete_batch(
            [categorize_prompt(item, self.categories) for item in items], model=self.model
        )
        assignments = {
            item: self._parse_choice(response.text) for item, response in zip(items, responses)
        }
        return CategorizeResult(
            strategy="per_item", assignments=assignments, votes_used=len(items)
        )

    def _run_self_consistency(
        self, items: list[str], *, n_samples: int = 3, temperature: float = 0.7
    ) -> CategorizeResult:
        if n_samples < 1:
            raise ConfigurationError("n_samples must be at least 1")
        # Temperature > 0 sampling stays sequential: the simulated client's
        # sample counter makes draw order part of the observable behaviour.
        assignments: dict[str, str] = {}
        votes_used = 0
        for item in items:
            samples = [
                self._ask(item, self.model, temperature=temperature) for _ in range(n_samples)
            ]
            votes_used += n_samples
            assignments[item] = str(majority_vote(samples).winner)
        return CategorizeResult(
            strategy="self_consistency", assignments=assignments, votes_used=votes_used
        )

    def _run_ensemble_vote(
        self, items: list[str], *, models: Sequence[str] | None = None
    ) -> CategorizeResult:
        voter_models = list(models or ([self.model] if self.model else []))
        if len(voter_models) < 2:
            raise ConfigurationError("ensemble_vote needs at least two models")
        # Every (item, model) ballot is independent: one item-major batch.
        requests = [
            BatchRequest(prompt=categorize_prompt(item, self.categories), model=model)
            for item in items
            for model in voter_models
        ]
        responses = iter(self._complete_requests(requests))
        assignments: dict[str, str] = {}
        votes_used = 0
        for item in items:
            samples = [self._parse_choice(next(responses).text) for _ in voter_models]
            votes_used += len(samples)
            assignments[item] = str(majority_vote(samples).winner)
        return CategorizeResult(
            strategy="ensemble_vote", assignments=assignments, votes_used=votes_used
        )
