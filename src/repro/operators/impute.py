"""The missing-value imputation operator (paper Section 3.4, Table 4).

Strategies:

* ``knn`` — the non-LLM proxy: predict the mode of the k nearest neighbors'
  values.  Zero LLM tokens.
* ``llm_only`` — ask the LLM for every query record, optionally with
  ``n_examples`` neighbor records embedded as in-context examples.
* ``hybrid`` — use the k-NN answer whenever all k neighbors agree, and ask the
  LLM only for the records where they disagree.  This is the paper's hybrid
  scheme that matches LLM-only accuracy at roughly half the token cost.
* ``retrieval`` — the hybrid escalation, grounded: neighbors come from a
  :class:`~repro.index.base.VectorIndex` over the reference embeddings
  (scales past a few thousand reference records), and every escalated
  prompt carries the retrieved neighbors as in-context evidence, so the
  LLM answers *with* the nearest labelled records in front of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.products import ImputationDataset
from repro.data.record import Record
from repro.exceptions import ResponseParseError
from repro.llm.parsing import extract_value
from repro.llm.prompts import impute_prompt
from repro.operators.base import BaseOperator, OperatorResult
from repro.proxies.knn import KNNImputer


@dataclass
class ImputeResult(OperatorResult):
    """Output of an imputation run.

    Attributes:
        predictions: query record id → predicted value.
        llm_queries: how many query records were answered by the LLM.
        proxy_queries: how many were answered by the k-NN proxy.
    """

    predictions: dict[str, str] = field(default_factory=dict)
    llm_queries: int = 0
    proxy_queries: int = 0


class ImputeOperator(BaseOperator):
    """Impute a missing attribute for every query record of a dataset."""

    operation = "impute"

    def __init__(self, client, *, k: int = 3, **kwargs) -> None:
        self.k = k
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "knn",
            self._run_knn,
            description="mode of the k nearest neighbors (no LLM)",
            granularity="proxy",
        )
        self.register_strategy(
            "llm_only",
            self._run_llm_only,
            description="one imputation prompt per query record",
            granularity="fine",
        )
        self.register_strategy(
            "hybrid",
            self._run_hybrid,
            description="k-NN when neighbors agree, LLM otherwise",
            granularity="hybrid",
        )
        self.register_strategy(
            "retrieval",
            self._run_retrieval,
            description="index-retrieved neighbors; escalations carry them as evidence",
            granularity="hybrid",
        )

    # -- public API -----------------------------------------------------------------

    def run(
        self,
        data: ImputationDataset,
        *,
        strategy: str = "hybrid",
        n_examples: int = 0,
    ) -> ImputeResult:
        """Impute the missing attribute for every query record in ``data``.

        Args:
            data: the imputation dataset (queries, reference set, target).
            strategy: ``"knn"``, ``"llm_only"``, ``"hybrid"``, or
                ``"retrieval"``.
            n_examples: number of nearest-neighbor in-context examples to embed
                into each LLM prompt (0 reproduces the "no examples" rows of
                Table 4, 3 the "3 examples" rows).
        """
        usage_before = self._usage_snapshot()
        if strategy == "retrieval":
            # Neighbor lookup through a vector index over the reference set:
            # exact for small references, LSH once brute force would hurt.
            from repro.index import create_index

            from repro.llm.embeddings import HashingEmbedder

            embedder = HashingEmbedder()
            imputer = KNNImputer(
                data.reference,
                data.target_attribute,
                k=self.k,
                index=create_index(
                    "auto", embedder.dimensions, expected_size=len(data.reference)
                ),
                embedder=embedder,
            )
        else:
            imputer = KNNImputer(data.reference, data.target_attribute, k=self.k)
        result: ImputeResult = self._strategy(strategy)(data, imputer, n_examples)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    # -- strategies ------------------------------------------------------------------

    def _impute_prompt(
        self,
        data: ImputationDataset,
        imputer: KNNImputer,
        record: Record,
        n_examples: int,
    ) -> str:
        examples = imputer.examples_for(record, n_examples) if n_examples > 0 else None
        return impute_prompt(data.serialized_query(record), data.target_attribute, examples)

    def _ask_llm_batch(
        self,
        data: ImputationDataset,
        imputer: KNNImputer,
        records: list[Record],
        n_examples: int,
    ) -> dict[str, str]:
        """Batch one imputation prompt per record; record id → predicted value."""
        responses = self._complete_batch(
            [self._impute_prompt(data, imputer, record, n_examples) for record in records]
        )
        predictions: dict[str, str] = {}
        for record, response in zip(records, responses):
            try:
                predictions[record.record_id] = extract_value(response.text)
            except ResponseParseError:
                predictions[record.record_id] = ""
        return predictions

    def _run_knn(
        self, data: ImputationDataset, imputer: KNNImputer, n_examples: int
    ) -> ImputeResult:
        del n_examples  # the proxy does not build prompts
        predictions = {record.record_id: imputer.impute(record) for record in data.queries}
        return ImputeResult(
            strategy="knn", predictions=predictions, proxy_queries=len(predictions)
        )

    def _run_llm_only(
        self, data: ImputationDataset, imputer: KNNImputer, n_examples: int
    ) -> ImputeResult:
        predictions = self._ask_llm_batch(data, imputer, list(data.queries), n_examples)
        return ImputeResult(
            strategy="llm_only", predictions=predictions, llm_queries=len(predictions)
        )

    def _run_hybrid(
        self, data: ImputationDataset, imputer: KNNImputer, n_examples: int
    ) -> ImputeResult:
        # First pass: the free k-NN vote decides which records need the LLM;
        # those records' prompts then go out as one batch.  Votes are kept
        # positionally (not keyed by record id) so duplicate ids cannot
        # shadow one another's vote.
        query_records = list(data.queries)
        votes = [imputer.vote(record) for record in query_records]
        disagreeing = [
            record for record, vote in zip(query_records, votes) if not vote.unanimous
        ]
        llm_predictions = self._ask_llm_batch(data, imputer, disagreeing, n_examples)
        predictions: dict[str, str] = {}
        for record, vote in zip(query_records, votes):
            if vote.unanimous:
                predictions[record.record_id] = vote.prediction
            else:
                predictions[record.record_id] = llm_predictions[record.record_id]
        return ImputeResult(
            strategy="hybrid",
            predictions=predictions,
            llm_queries=len(disagreeing),
            proxy_queries=len(query_records) - len(disagreeing),
        )

    def _run_retrieval(
        self, data: ImputationDataset, imputer: KNNImputer, n_examples: int
    ) -> ImputeResult:
        """Hybrid escalation with index-retrieved neighbors as prompt evidence.

        Same proxy/escalate split as ``hybrid`` (unanimous neighbors answer
        for free), but each escalated prompt is grounded in the retrieved
        neighbors: the k nearest labelled records ride along as in-context
        examples even when the caller asked for ``n_examples=0``.  The
        imputer handed in by :meth:`run` probes a vector index, so neighbor
        lookup costs a probe, not a reference-set scan.
        """
        del n_examples  # the retrieved neighbors *are* the examples
        query_records = list(data.queries)
        votes = [imputer.vote(record) for record in query_records]
        escalated = [
            (record, vote)
            for record, vote in zip(query_records, votes)
            if not vote.unanimous
        ]
        prompts = []
        for record, vote in escalated:
            evidence = [
                {
                    "input": neighbor.serialize(exclude=(data.target_attribute,)),
                    "output": str(neighbor[data.target_attribute]),
                }
                for neighbor in vote.neighbors
            ]
            prompts.append(
                impute_prompt(
                    data.serialized_query(record), data.target_attribute, evidence
                )
            )
        responses = self._complete_batch(prompts)
        llm_predictions: dict[str, str] = {}
        for (record, _), response in zip(escalated, responses):
            try:
                llm_predictions[record.record_id] = extract_value(response.text)
            except ResponseParseError:
                llm_predictions[record.record_id] = ""
        predictions: dict[str, str] = {}
        for record, vote in zip(query_records, votes):
            if vote.unanimous:
                predictions[record.record_id] = vote.prediction
            else:
                predictions[record.record_id] = llm_predictions[record.record_id]
        return ImputeResult(
            strategy="retrieval",
            predictions=predictions,
            llm_queries=len(escalated),
            proxy_queries=len(query_records) - len(escalated),
        )
