"""Shared plumbing for operators: results, strategy registries, LLM access.

Every operator extends :class:`BaseOperator`, which owns a tracked LLM client
(so token/cost accounting is automatic), an optional response cache, and a
registry of named strategies.  Operator results extend
:class:`OperatorResult`, which carries the usage and dollar cost alongside the
task output so benchmarks can report the cost columns of the paper's tables
without extra bookkeeping.

Independent unit-task loops go through :meth:`BaseOperator._complete_batch`
(or :meth:`BaseOperator._complete_requests` for heterogeneous per-call
models), which dispatches via a :class:`~repro.core.executor.BatchExecutor`.
The operator-level ``max_concurrency`` argument sizes that executor's thread
pool; at the default of 1 execution is sequential and deterministic, and at
temperature 0 the concurrent path produces element-wise identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.budget import Budget, BudgetLease
from repro.core.executor import BatchExecutor, BatchRequest
from repro.core.governor import ConcurrencyGovernor
from repro.exceptions import UnknownStrategyError
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.cache import CachedClient, ResponseCache
from repro.llm.tracker import TrackedClient, UsageTracker
from repro.tokenizer.cost import CostModel, Usage


@dataclass(frozen=True)
class StrategyInfo:
    """Metadata about one registered strategy."""

    name: str
    description: str
    granularity: str  # "coarse", "fine", "hybrid", or "proxy"


@dataclass
class OperatorResult:
    """Base class for operator outputs.

    Attributes:
        strategy: the strategy that produced this result.
        usage: total token usage of the LLM calls made.
        cost: dollar cost of those calls (zero when no cost model is attached).
        metadata: strategy-specific extras (e.g. number of cache hits).
    """

    strategy: str
    usage: Usage = field(default_factory=Usage)
    cost: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


class BaseOperator:
    """Common infrastructure for declarative operators.

    Args:
        client: the underlying LLM client (simulated or otherwise).
        model: default model for this operator's unit tasks.
        cost_model: optional price table used to convert usage to dollars.
        use_cache: whether identical temperature-0 prompts are served from a
            response cache (recommended; several strategies re-ask pairs).
        max_concurrency: thread-pool size for the operator's independent unit
            tasks; 1 (the default) runs them sequentially.
        budget: optional budget the operator's batches check before each
            dispatch, so a limit stops a large batch mid-way instead of after
            the fact.  The engine threads its session budget through here; a
            pipeline step instead passes its per-step
            :class:`~repro.core.budget.BudgetLease`, capping the operator at
            the step's apportioned share of the remaining dollars.
        governor: optional shared admission point
            (:class:`~repro.core.governor.ConcurrencyGovernor`) the
            operator's executor routes every dispatch through; the engine
            threads its session's governor here so all operators in a
            pipeline respect one set of rate limits.
    """

    #: Operator name used in error messages; subclasses override.
    operation = "operator"

    def __init__(
        self,
        client: LLMClient,
        *,
        model: str | None = None,
        cost_model: CostModel | None = None,
        use_cache: bool = True,
        max_concurrency: int = 1,
        budget: Budget | BudgetLease | None = None,
        governor: ConcurrencyGovernor | None = None,
    ) -> None:
        self.model = model
        self.tracker = UsageTracker(cost_model=cost_model)
        inner: LLMClient = CachedClient(client, ResponseCache()) if use_cache else client
        self._client = TrackedClient(inner, self.tracker)
        self.max_concurrency = max_concurrency
        self._executor = BatchExecutor(
            self._client, max_concurrency=max_concurrency, budget=budget, governor=governor
        )
        self._strategies: dict[str, Callable[..., Any]] = {}
        self._strategy_info: dict[str, StrategyInfo] = {}
        self._register_strategies()

    # -- strategy registry -----------------------------------------------------

    def _register_strategies(self) -> None:
        """Subclasses register their strategies here."""

    def register_strategy(
        self,
        name: str,
        runner: Callable[..., Any],
        *,
        description: str = "",
        granularity: str = "fine",
    ) -> None:
        """Register a named strategy implemented by ``runner``."""
        self._strategies[name] = runner
        self._strategy_info[name] = StrategyInfo(
            name=name, description=description, granularity=granularity
        )

    @property
    def strategies(self) -> list[str]:
        """Names of the registered strategies."""
        return sorted(self._strategies)

    def strategy_info(self, name: str) -> StrategyInfo:
        """Metadata for one strategy."""
        if name not in self._strategy_info:
            raise UnknownStrategyError(self.operation, name, self.strategies)
        return self._strategy_info[name]

    def _strategy(self, name: str) -> Callable[..., Any]:
        try:
            return self._strategies[name]
        except KeyError as exc:
            raise UnknownStrategyError(self.operation, name, self.strategies) from exc

    # -- LLM access --------------------------------------------------------------

    def _complete(
        self, prompt: str, *, model: str | None = None, temperature: float = 0.0
    ) -> LLMResponse:
        """Issue one tracked (and possibly cached) LLM call."""
        return self._client.complete(prompt, model=model or self.model, temperature=temperature)

    def _complete_batch(
        self, prompts: Sequence[str], *, model: str | None = None, temperature: float = 0.0
    ) -> list[LLMResponse]:
        """Issue a bag of independent unit tasks, responses in prompt order.

        This is the hot path of every fine-grained strategy: the batch runs
        through the operator's :class:`~repro.core.executor.BatchExecutor`,
        sequentially at ``max_concurrency == 1`` and over a thread pool
        otherwise.
        """
        return self._complete_requests(
            [
                BatchRequest(prompt=prompt, model=model or self.model, temperature=temperature)
                for prompt in prompts
            ]
        )

    def _complete_requests(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        """Issue fully specified unit tasks (per-request models/temperatures)."""
        return self._executor.run(requests)

    def _usage_snapshot(self) -> Usage:
        """Copy of the usage accumulated so far (used to diff per-run usage)."""
        self._cost_snapshot = self.tracker.cost()
        return self.tracker.usage

    def _finalize(self, result: OperatorResult, usage_before: Usage) -> None:
        """Fill in the usage/cost delta accumulated since ``usage_before``."""
        total = self.tracker.usage
        result.usage = Usage(
            prompt_tokens=total.prompt_tokens - usage_before.prompt_tokens,
            completion_tokens=total.completion_tokens - usage_before.completion_tokens,
            calls=total.calls - usage_before.calls,
        )
        if self.tracker.cost_model is not None:
            result.cost = self.tracker.cost() - getattr(self, "_cost_snapshot", 0.0)
