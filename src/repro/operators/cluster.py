"""The cluster / categorize operator (paper Section 3.2, citing Jain et al.).

Clustering a corpus with an LLM in one prompt suffers the same drops and
hallucinations as whole-list sorting.  The two-phase scheme from the
crowdsourcing literature first derives a clustering *scheme* from a small
sample, then assigns the remaining items to those clusters one at a time.

* ``single_prompt`` — group every item in one prompt.
* ``two_phase`` — group a seed sample in one prompt, pick one representative
  per discovered group, then assign every remaining item by comparing it
  against the representatives with unit tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import DatasetError, ResponseParseError
from repro.llm.parsing import extract_groups, extract_yes_no
from repro.llm.prompts import duplicate_check_prompt, group_records_prompt
from repro.operators.base import BaseOperator, OperatorResult


@dataclass
class ClusterResult(OperatorResult):
    """Output of a clustering run: groups of item indices."""

    clusters: list[list[int]] = field(default_factory=list)

    def labels(self) -> dict[int, int]:
        """Item index → cluster index mapping."""
        return {
            item: cluster_index
            for cluster_index, cluster in enumerate(self.clusters)
            for item in cluster
        }


class ClusterOperator(BaseOperator):
    """Group items that refer to the same underlying entity or category."""

    operation = "cluster"

    def _register_strategies(self) -> None:
        self.register_strategy(
            "single_prompt",
            self._run_single_prompt,
            description="group every item in one prompt",
            granularity="coarse",
        )
        self.register_strategy(
            "two_phase",
            self._run_two_phase,
            description="derive groups from a seed sample, then assign the rest",
            granularity="hybrid",
        )

    def run(self, items: Sequence[str], *, strategy: str = "two_phase", **kwargs) -> ClusterResult:
        """Cluster ``items`` with the named strategy."""
        item_list = [str(item) for item in items]
        if len(item_list) != len(set(item_list)):
            raise DatasetError("items must be unique strings")
        usage_before = self._usage_snapshot()
        result: ClusterResult = self._strategy(strategy)(item_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    def _group_prompt(self, items: list[str]) -> list[list[int]]:
        response = self._complete(group_records_prompt(items))
        try:
            raw_groups = extract_groups(response.text)
        except ResponseParseError:
            return [[index] for index in range(len(items))]
        covered: set[int] = set()
        groups: list[list[int]] = []
        for group in raw_groups:
            valid = [index for index in group if 0 <= index < len(items) and index not in covered]
            if valid:
                groups.append(valid)
                covered.update(valid)
        groups.extend([[index] for index in range(len(items)) if index not in covered])
        return groups

    def _run_single_prompt(self, items: list[str]) -> ClusterResult:
        return ClusterResult(strategy="single_prompt", clusters=self._group_prompt(items))

    def _run_two_phase(self, items: list[str], *, seed_size: int = 12) -> ClusterResult:
        """Phase 1: group a seed sample; phase 2: assign the rest to those groups."""
        if seed_size < 2:
            raise DatasetError("seed_size must be at least 2")
        seed = items[: min(seed_size, len(items))]
        remaining = items[len(seed) :]
        seed_groups_local = self._group_prompt(seed)
        # Translate local seed indices into global item indices and pick the
        # first member of each group as its representative.
        clusters: list[list[int]] = [
            [items.index(seed[local]) for local in group] for group in seed_groups_local
        ]
        representatives = [seed[group[0]] for group in seed_groups_local]

        for item in remaining:
            item_index = items.index(item)
            assigned = False
            for cluster_index, representative in enumerate(representatives):
                response = self._complete(duplicate_check_prompt(item, representative))
                try:
                    same = extract_yes_no(response.text)
                except ResponseParseError:
                    same = False
                if same:
                    clusters[cluster_index].append(item_index)
                    assigned = True
                    break
            if not assigned:
                clusters.append([item_index])
                representatives.append(item)
        return ClusterResult(strategy="two_phase", clusters=clusters)
