"""The filter operator (paper Section 3.5, citing CrowdScreen).

Filtering asks, per item, whether it satisfies a predicate.  Quality control
matters here: a single noisy answer mislabels the item, so the operator offers
ensemble strategies in addition to the plain per-item one.

* ``per_item`` — one predicate check per item with a single model.
* ``ensemble_vote`` — ask several models and take a (optionally weighted)
  majority vote per item.
* ``adaptive`` — CrowdScreen-style sequential querying: keep asking additional
  models only while the answers disagree, up to a budgeted maximum, finalising
  early for items with clear agreement.

``per_item`` and ``ensemble_vote`` dispatch their independent checks through
the operator's batch executor (see :mod:`repro.core.executor`), so they honour
``max_concurrency``; ``adaptive`` is inherently sequential per item — each
extra vote depends on the tally so far — and keeps the per-call path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.executor import BatchRequest
from repro.exceptions import ConfigurationError, ResponseParseError
from repro.llm.parsing import extract_yes_no
from repro.llm.prompts import predicate_check_prompt
from repro.operators.base import BaseOperator, OperatorResult
from repro.quality.voting import majority_vote, weighted_vote


@dataclass
class FilterResult(OperatorResult):
    """Output of a filter run."""

    kept: list[str] = field(default_factory=list)
    decisions: dict[str, bool] = field(default_factory=dict)
    votes_used: int = 0


class FilterOperator(BaseOperator):
    """Keep the items satisfying a natural-language predicate."""

    operation = "filter"

    def __init__(self, client, predicate: str, **kwargs) -> None:
        self.predicate = predicate
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "per_item",
            self._run_per_item,
            description="a single predicate check per item",
            granularity="fine",
        )
        self.register_strategy(
            "ensemble_vote",
            self._run_ensemble_vote,
            description="majority vote across several models per item",
            granularity="fine",
        )
        self.register_strategy(
            "adaptive",
            self._run_adaptive,
            description="ask more models only while they disagree",
            granularity="hybrid",
        )

    def run(self, items: Sequence[str], *, strategy: str = "per_item", **kwargs) -> FilterResult:
        """Filter ``items`` with the named strategy."""
        item_list = [str(item) for item in items]
        usage_before = self._usage_snapshot()
        result: FilterResult = self._strategy(strategy)(item_list, **kwargs)
        result.strategy = strategy
        result.kept = [item for item in item_list if result.decisions.get(item, False)]
        self._finalize(result, usage_before)
        return result

    def _check(self, item: str, model: str | None, temperature: float = 0.0) -> bool:
        response = self._complete(
            predicate_check_prompt(item, self.predicate), model=model, temperature=temperature
        )
        return self._parse_check(response.text)

    @staticmethod
    def _parse_check(text: str) -> bool:
        try:
            return extract_yes_no(text)
        except ResponseParseError:
            return False

    def _check_batch(self, items: Sequence[str], model: str | None) -> list[bool]:
        """Batch the independent predicate checks; one decision per item."""
        responses = self._complete_batch(
            [predicate_check_prompt(item, self.predicate) for item in items], model=model
        )
        return [self._parse_check(response.text) for response in responses]

    def _run_per_item(self, items: list[str]) -> FilterResult:
        decisions = dict(zip(items, self._check_batch(items, self.model)))
        return FilterResult(strategy="per_item", decisions=decisions, votes_used=len(items))

    def _run_ensemble_vote(
        self,
        items: list[str],
        *,
        models: Sequence[str] | None = None,
        weights: Mapping[str, float] | None = None,
    ) -> FilterResult:
        """Majority (or accuracy-weighted) vote across several models.

        Every (item, model) ballot is an independent unit task, so the whole
        item-major grid goes out as one batch of per-model requests.
        """
        voter_models = list(models or ([self.model] if self.model else []))
        if len(voter_models) < 2:
            raise ConfigurationError("ensemble_vote needs at least two models")
        requests = [
            BatchRequest(prompt=predicate_check_prompt(item, self.predicate), model=model)
            for item in items
            for model in voter_models
        ]
        responses = iter(self._complete_requests(requests))
        decisions: dict[str, bool] = {}
        votes_used = 0
        for item in items:
            ballots = {model: self._parse_check(next(responses).text) for model in voter_models}
            votes_used += len(ballots)
            if weights:
                outcome = weighted_vote(ballots, weights)
            else:
                outcome = majority_vote(list(ballots.values()))
            decisions[item] = bool(outcome.winner)
        return FilterResult(strategy="ensemble_vote", decisions=decisions, votes_used=votes_used)

    def _run_adaptive(
        self,
        items: list[str],
        *,
        models: Sequence[str] | None = None,
        agreement_margin: int = 2,
        max_votes_per_item: int | None = None,
    ) -> FilterResult:
        """Sequential voting: stop per item once one answer leads by the margin.

        Items with early agreement cost few calls; only contentious items use
        the full model list — the CrowdScreen insight that disagreement, not
        volume, should drive spending.
        """
        voter_models = list(models or ([self.model] if self.model else []))
        if len(voter_models) < 2:
            raise ConfigurationError("adaptive filtering needs at least two models")
        if agreement_margin < 1:
            raise ConfigurationError("agreement_margin must be at least 1")
        limit = max_votes_per_item or len(voter_models)
        decisions: dict[str, bool] = {}
        votes_used = 0
        for item in items:
            yes_votes = 0
            no_votes = 0
            for model in voter_models[:limit]:
                if self._check(item, model):
                    yes_votes += 1
                else:
                    no_votes += 1
                votes_used += 1
                if abs(yes_votes - no_votes) >= agreement_margin:
                    break
            decisions[item] = yes_votes > no_votes
        return FilterResult(strategy="adaptive", decisions=decisions, votes_used=votes_used)
