"""The top-k / max-finding operator (paper Section 3.2, citing Khan's hybrid).

Finding the best item(s) under a criterion admits the same hybrid structure as
sorting: a cheap coarse pass narrows the field, and expensive fine-grained
comparisons decide among the finalists.

* ``rating_only`` — rate every item and take the top-k ratings.
* ``pairwise_tournament`` — compare all pairs and take the items with the most
  wins (accurate, O(n²) calls).
* ``hybrid_rating_comparison`` — Khan-style: rate every item (O(n) calls),
  keep the highest-rated bucket, then run pairwise comparisons only among
  those finalists.  Higher accuracy than ratings alone, far cheaper than a
  full tournament.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import DatasetError
from repro.llm.parsing import extract_choice, extract_integer
from repro.llm.prompts import pairwise_comparison_prompt, rating_prompt
from repro.operators.base import BaseOperator, OperatorResult


@dataclass
class TopKResult(OperatorResult):
    """Output of a top-k run."""

    top_items: list[str] = field(default_factory=list)
    ratings: dict[str, int] = field(default_factory=dict)
    finalists: list[str] = field(default_factory=list)


class TopKOperator(BaseOperator):
    """Find the top-k items under a textual criterion."""

    operation = "top_k"

    def __init__(self, client, criterion: str, **kwargs) -> None:
        self.criterion = criterion
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "rating_only",
            self._run_rating_only,
            description="rate every item, take the top ratings",
            granularity="coarse",
        )
        self.register_strategy(
            "pairwise_tournament",
            self._run_pairwise_tournament,
            description="compare all pairs, take the items with most wins",
            granularity="fine",
        )
        self.register_strategy(
            "hybrid_rating_comparison",
            self._run_hybrid,
            description="rate to shortlist, then compare the finalists",
            granularity="hybrid",
        )

    def run(self, items: Sequence[str], *, k: int = 1, strategy: str = "hybrid_rating_comparison", **kwargs) -> TopKResult:
        """Return the top ``k`` items of ``items`` under the operator's criterion."""
        item_list = [str(item) for item in items]
        if k < 1:
            raise DatasetError("k must be at least 1")
        if k > len(item_list):
            raise DatasetError(f"k={k} exceeds the number of items ({len(item_list)})")
        usage_before = self._usage_snapshot()
        result: TopKResult = self._strategy(strategy)(item_list, k, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    # -- helpers --------------------------------------------------------------------

    def _rate_all(self, items: list[str]) -> dict[str, int]:
        ratings = {}
        for item in items:
            response = self._complete(rating_prompt(item, self.criterion))
            ratings[item] = extract_integer(response.text, minimum=1, maximum=7)
        return ratings

    def _tournament(self, items: list[str]) -> dict[str, int]:
        wins = {item: 0 for item in items}
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                response = self._complete(
                    pairwise_comparison_prompt(items[i], items[j], self.criterion)
                )
                choice = extract_choice(response.text, ["A", "B"])
                wins[items[i] if choice == "A" else items[j]] += 1
        return wins

    # -- strategies -------------------------------------------------------------------

    def _run_rating_only(self, items: list[str], k: int) -> TopKResult:
        ratings = self._rate_all(items)
        ranked = sorted(items, key=lambda item: -ratings[item])
        return TopKResult(strategy="rating_only", top_items=ranked[:k], ratings=ratings)

    def _run_pairwise_tournament(self, items: list[str], k: int) -> TopKResult:
        wins = self._tournament(items)
        ranked = sorted(items, key=lambda item: -wins[item])
        return TopKResult(strategy="pairwise_tournament", top_items=ranked[:k], finalists=items)

    def _run_hybrid(self, items: list[str], k: int, *, shortlist_factor: int = 3) -> TopKResult:
        """Rate everything, shortlist, then run the tournament on the shortlist."""
        if shortlist_factor < 1:
            raise DatasetError("shortlist_factor must be at least 1")
        ratings = self._rate_all(items)
        shortlist_size = min(len(items), max(k, k * shortlist_factor))
        shortlist = sorted(items, key=lambda item: -ratings[item])[:shortlist_size]
        wins = self._tournament(shortlist)
        ranked = sorted(shortlist, key=lambda item: -wins[item])
        return TopKResult(
            strategy="hybrid_rating_comparison",
            top_items=ranked[:k],
            ratings=ratings,
            finalists=shortlist,
        )
