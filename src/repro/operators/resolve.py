"""The entity-resolution operator (paper Sections 1, 3.3, 3.4).

Two entry points:

* :meth:`ResolveOperator.resolve` — cluster a list of records into duplicate
  groups.  Strategies: the coarse ``single_prompt`` grouping task, the fine
  ``pairwise`` all-pairs approach, and ``blocked_pairwise`` which only asks
  the LLM about embedding-blocked candidate pairs.
* :meth:`ResolveOperator.judge_pairs` — answer a set of labelled duplicate
  questions (the Table 3 setting).  Strategies: the ``pairwise`` baseline, the
  ``transitive`` augmentation that adds k-NN neighbor comparisons and flips
  "No" answers connected through the match graph, and the ``proxy_hybrid``
  scheme that answers easy pairs with a similarity proxy and asks the LLM only
  about the confusing band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.consistency.transitivity import MatchGraph
from repro.exceptions import DatasetError, ResponseParseError, UnknownStrategyError
from repro.llm.embeddings import HashingEmbedder
from repro.llm.parsing import extract_groups, extract_yes_no
from repro.llm.prompts import duplicate_check_prompt, group_records_prompt
from repro.operators.base import BaseOperator, OperatorResult
from repro.proxies.blocking import EmbeddingBlocker
from repro.proxies.classifier import SimilarityMatchProxy


@dataclass
class ResolveResult(OperatorResult):
    """Output of a full clustering run: groups of record indices."""

    clusters: list[list[int]] = field(default_factory=list)


@dataclass
class PairJudgment:
    """Judgment for one queried pair."""

    left: str
    right: str
    is_duplicate: bool
    source: str  # "llm", "transitivity", or "proxy"


@dataclass
class PairJudgmentResult(OperatorResult):
    """Output of a pair-judgment run."""

    judgments: list[PairJudgment] = field(default_factory=list)

    @property
    def decisions(self) -> list[bool]:
        return [judgment.is_duplicate for judgment in self.judgments]


class ResolveOperator(BaseOperator):
    """Entity resolution over textual records."""

    operation = "resolve"

    def __init__(self, client, *, embedder: HashingEmbedder | None = None, **kwargs) -> None:
        self.embedder = embedder or HashingEmbedder()
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "single_prompt",
            self._resolve_single_prompt,
            description="group every record in one prompt",
            granularity="coarse",
        )
        self.register_strategy(
            "pairwise",
            self._resolve_pairwise,
            description="one duplicate-check task per record pair",
            granularity="fine",
        )
        self.register_strategy(
            "blocked_pairwise",
            self._resolve_blocked_pairwise,
            description="duplicate checks only for embedding-blocked candidate pairs",
            granularity="hybrid",
        )

    # -- full clustering -----------------------------------------------------------

    def resolve(self, records: Sequence[str], *, strategy: str = "pairwise", **kwargs) -> ResolveResult:
        """Cluster ``records`` into duplicate groups using the named strategy."""
        record_list = [str(record) for record in records]
        if len(record_list) != len(set(record_list)):
            raise DatasetError("records must be unique strings")
        usage_before = self._usage_snapshot()
        result: ResolveResult = self._strategy(strategy)(record_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    def _resolve_single_prompt(self, records: list[str]) -> ResolveResult:
        response = self._complete(group_records_prompt(records))
        try:
            groups = extract_groups(response.text)
        except ResponseParseError:
            groups = [[index] for index in range(len(records))]
        covered: set[int] = set()
        clusters: list[list[int]] = []
        for group in groups:
            valid = [index for index in group if 0 <= index < len(records) and index not in covered]
            if valid:
                clusters.append(valid)
                covered.update(valid)
        clusters.extend([[index] for index in range(len(records)) if index not in covered])
        return ResolveResult(strategy="single_prompt", clusters=clusters)

    @staticmethod
    def _parse_duplicate(text: str) -> bool:
        try:
            return extract_yes_no(text)
        except ResponseParseError:
            return False

    def _ask_duplicate(self, left: str, right: str) -> bool:
        response = self._complete(duplicate_check_prompt(left, right))
        return self._parse_duplicate(response.text)

    def _ask_duplicates(self, pairs: Sequence[tuple[str, str]]) -> list[bool]:
        """Batch the independent duplicate checks; one decision per pair, in order."""
        responses = self._complete_batch(
            [duplicate_check_prompt(left, right) for left, right in pairs]
        )
        return [self._parse_duplicate(response.text) for response in responses]

    def _clusters_from_graph(self, records: list[str], graph: MatchGraph) -> list[list[int]]:
        index_of = {record: index for index, record in enumerate(records)}
        clusters = [
            sorted(index_of[record] for record in component) for component in graph.components()
        ]
        return sorted(clusters)

    def _resolve_pairwise(self, records: list[str]) -> ResolveResult:
        graph = MatchGraph()
        for record in records:
            graph.add_node(record)
        pairs = [
            (records[i], records[j])
            for i in range(len(records))
            for j in range(i + 1, len(records))
        ]
        for (left, right), is_duplicate in zip(pairs, self._ask_duplicates(pairs)):
            if is_duplicate:
                graph.add_match(left, right)
            else:
                graph.add_non_match(left, right)
        return ResolveResult(strategy="pairwise", clusters=self._clusters_from_graph(records, graph))

    def _resolve_blocked_pairwise(self, records: list[str], *, block_k: int = 5) -> ResolveResult:
        blocker = EmbeddingBlocker(embedder=self.embedder, k=block_k)
        blocking = blocker.block(records)
        graph = MatchGraph()
        for record in records:
            graph.add_node(record)
        pairs = [(records[i], records[j]) for i, j in blocking.candidate_pairs]
        for (left, right), is_duplicate in zip(pairs, self._ask_duplicates(pairs)):
            if is_duplicate:
                graph.add_match(left, right)
            else:
                graph.add_non_match(left, right)
        result = ResolveResult(
            strategy="blocked_pairwise", clusters=self._clusters_from_graph(records, graph)
        )
        result.metadata["candidate_pairs"] = blocking.n_candidates
        result.metadata["all_pairs"] = len(records) * (len(records) - 1) // 2
        return result

    # -- labelled pair judgments (Table 3) -------------------------------------------

    def judge_pairs(
        self,
        pairs: Sequence[tuple[str, str]],
        *,
        strategy: str = "pairwise",
        corpus: Sequence[str] | None = None,
        neighbors_k: int = 1,
        proxy: SimilarityMatchProxy | None = None,
    ) -> PairJudgmentResult:
        """Judge whether each queried pair is a duplicate.

        Args:
            pairs: the (left, right) record-text pairs to judge.
            strategy: ``"pairwise"``, ``"transitive"``, or ``"proxy_hybrid"``.
            corpus: for ``"transitive"``, the full record collection from which
                embedding nearest neighbors are drawn (defaults to the records
                appearing in ``pairs``).
            neighbors_k: the k of the k-NN augmentation (the paper's k=1, 2).
            proxy: for ``"proxy_hybrid"``, the similarity proxy; a default
                two-threshold Jaccard proxy is used when omitted.
        """
        pair_list = [(str(left), str(right)) for left, right in pairs]
        usage_before = self._usage_snapshot()
        if strategy == "pairwise":
            result = self._judge_pairwise(pair_list)
        elif strategy == "transitive":
            result = self._judge_transitive(pair_list, corpus=corpus, neighbors_k=neighbors_k)
        elif strategy == "proxy_hybrid":
            result = self._judge_proxy_hybrid(pair_list, proxy=proxy)
        else:
            raise UnknownStrategyError(
                self.operation, strategy, ["pairwise", "transitive", "proxy_hybrid"]
            )
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    def _judge_pairwise(self, pairs: list[tuple[str, str]]) -> PairJudgmentResult:
        judgments = [
            PairJudgment(left=left, right=right, is_duplicate=is_duplicate, source="llm")
            for (left, right), is_duplicate in zip(pairs, self._ask_duplicates(pairs))
        ]
        return PairJudgmentResult(strategy="pairwise", judgments=judgments)

    def _judge_transitive(
        self,
        pairs: list[tuple[str, str]],
        *,
        corpus: Sequence[str] | None,
        neighbors_k: int,
    ) -> PairJudgmentResult:
        """The Table 3 strategy: k-NN-augmented comparisons plus transitivity.

        With ``neighbors_k == 0`` this reduces to the plain pairwise baseline.
        """
        if neighbors_k < 0:
            raise DatasetError("neighbors_k must be non-negative")
        corpus_texts = list(corpus) if corpus is not None else sorted(
            {text for pair in pairs for text in pair}
        )
        text_index = {text: position for position, text in enumerate(corpus_texts)}

        neighbor_map: dict[int, list[int]] = {}
        if neighbors_k > 0:
            neighbor_map = self.embedder.nearest_neighbors(corpus_texts, neighbors_k)

        graph = MatchGraph()
        direct_answer: dict[frozenset[str], bool] = {}

        def judge_batch(queried: list[tuple[str, str]]) -> None:
            """Ask every not-yet-judged pair in one batch and record the answers."""
            pending_keys: set[frozenset[str]] = set()
            unseen: list[tuple[str, str]] = []
            for left, right in queried:
                key = frozenset((left, right))
                if key in direct_answer or key in pending_keys:
                    continue
                pending_keys.add(key)
                unseen.append((left, right))
            for (left, right), answer in zip(unseen, self._ask_duplicates(unseen)):
                direct_answer[frozenset((left, right))] = answer
                if answer:
                    graph.add_match(left, right)
                else:
                    graph.add_non_match(left, right)

        judgments: list[PairJudgment] = []
        for left, right in pairs:
            # Build the comparison group: the two anchors plus their k nearest
            # neighbors in the corpus.  The anchor pair comes first, in its
            # original orientation, so the k = 0 configuration reproduces the
            # plain pairwise baseline exactly; the group's remaining pairs are
            # independent of one another and go out in the same batch.
            group = {left, right}
            if neighbors_k > 0:
                for anchor in (left, right):
                    anchor_index = text_index.get(anchor)
                    if anchor_index is None:
                        continue
                    group.update(
                        corpus_texts[neighbor] for neighbor in neighbor_map.get(anchor_index, [])
                    )
            members = sorted(group)
            queried = [(left, right)] + [
                (members[i], members[j])
                for i in range(len(members))
                for j in range(i + 1, len(members))
            ]
            judge_batch(queried)
            direct = direct_answer[frozenset((left, right))]
            if direct:
                judgments.append(
                    PairJudgment(left=left, right=right, is_duplicate=True, source="llm")
                )
            elif graph.connected(left, right):
                # The Section 3.3 flip: a "No" contradicted by a Yes-path.
                judgments.append(
                    PairJudgment(left=left, right=right, is_duplicate=True, source="transitivity")
                )
            else:
                judgments.append(
                    PairJudgment(left=left, right=right, is_duplicate=False, source="llm")
                )
        result = PairJudgmentResult(strategy="transitive", judgments=judgments)
        result.metadata["unique_llm_pairs"] = len(direct_answer)
        result.metadata["flipped"] = sum(
            1 for judgment in judgments if judgment.source == "transitivity"
        )
        return result

    def _judge_proxy_hybrid(
        self, pairs: list[tuple[str, str]], *, proxy: SimilarityMatchProxy | None
    ) -> PairJudgmentResult:
        """Answer easy pairs with a similarity proxy, the rest with the LLM.

        The proxy decides every pair first (no LLM cost); only the pairs it
        abstains on are batched to the LLM.
        """
        proxy = proxy or SimilarityMatchProxy()
        decisions = [proxy.decide(left, right) for left, right in pairs]
        abstained_pairs = [
            pair for pair, decision in zip(pairs, decisions) if decision.abstained
        ]
        llm_answers = iter(self._ask_duplicates(abstained_pairs))
        judgments: list[PairJudgment] = []
        for (left, right), decision in zip(pairs, decisions):
            if decision.abstained:
                judgments.append(
                    PairJudgment(
                        left=left, right=right, is_duplicate=next(llm_answers), source="llm"
                    )
                )
            else:
                judgments.append(
                    PairJudgment(
                        left=left, right=right, is_duplicate=bool(decision.label), source="proxy"
                    )
                )
        llm_pairs = len(abstained_pairs)
        result = PairJudgmentResult(strategy="proxy_hybrid", judgments=judgments)
        result.metadata["llm_pairs"] = llm_pairs
        result.metadata["proxy_pairs"] = len(pairs) - llm_pairs
        return result
