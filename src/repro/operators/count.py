"""The count operator (paper Section 3.1, citing "Counting with the Crowd").

Counting how many items satisfy a predicate admits the same coarse/fine
decomposition as sorting:

* ``estimate`` — coarse "eyeballing": split the items into chunks, ask the LLM
  to estimate the satisfying count per chunk, and sum the estimates.  O(n / chunk)
  prompts, each answered approximately.
* ``per_item`` — fine-grained: one predicate-check task per item, count the
  "Yes" answers.  O(n) prompts, each answered accurately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import DatasetError, ResponseParseError
from repro.llm.parsing import extract_integer, extract_yes_no
from repro.llm.prompts import estimate_count_prompt, predicate_check_prompt
from repro.operators.base import BaseOperator, OperatorResult


@dataclass
class CountResult(OperatorResult):
    """Output of a count run."""

    count: int = 0
    per_item: dict[str, bool] | None = None


class CountOperator(BaseOperator):
    """Count the items satisfying a natural-language predicate."""

    operation = "count"

    def __init__(self, client, predicate: str, **kwargs) -> None:
        self.predicate = predicate
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "estimate",
            self._run_estimate,
            description="chunked approximate counts",
            granularity="coarse",
        )
        self.register_strategy(
            "per_item",
            self._run_per_item,
            description="one predicate check per item",
            granularity="fine",
        )

    def run(self, items: Sequence[str], *, strategy: str = "per_item", **kwargs) -> CountResult:
        """Count the items of ``items`` satisfying the operator's predicate."""
        item_list = [str(item) for item in items]
        usage_before = self._usage_snapshot()
        result: CountResult = self._strategy(strategy)(item_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    def _run_estimate(self, items: list[str], *, chunk_size: int = 20) -> CountResult:
        if chunk_size < 1:
            raise DatasetError("chunk_size must be at least 1")
        total = 0
        for start in range(0, len(items), chunk_size):
            chunk = items[start : start + chunk_size]
            response = self._complete(estimate_count_prompt(chunk, self.predicate))
            try:
                estimate = extract_integer(response.text, minimum=0, maximum=len(chunk))
            except ResponseParseError:
                estimate = 0
            total += estimate
        return CountResult(strategy="estimate", count=total)

    def _run_per_item(self, items: list[str]) -> CountResult:
        per_item: dict[str, bool] = {}
        for item in items:
            response = self._complete(predicate_check_prompt(item, self.predicate))
            try:
                per_item[item] = extract_yes_no(response.text)
            except ResponseParseError:
                per_item[item] = False
        return CountResult(
            strategy="per_item", count=sum(per_item.values()), per_item=per_item
        )
