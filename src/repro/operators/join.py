"""The fuzzy-join operator: match records across two collections.

"Join" is another of the paper's Section 3 primitives; entity resolution on a
bipartite graph is a fuzzy join (the paper cites Wang et al.'s
transitivity-based crowdsourced joins).  The operator matches records of a
left collection to records of a right collection:

* ``all_pairs`` — one duplicate-check task per (left, right) pair, O(|L||R|).
* ``blocked`` — embed both sides, only compare pairs whose embeddings are
  near neighbors, O(k·|L|) LLM calls.
* ``proxy_blocked`` — as ``blocked``, but a two-threshold similarity proxy
  answers the obvious matches/non-matches and only the confusing candidates
  reach the LLM (the CrowdER-style hybrid of Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ResponseParseError
from repro.llm.embeddings import HashingEmbedder
from repro.llm.parsing import extract_yes_no
from repro.llm.prompts import duplicate_check_prompt
from repro.operators.base import BaseOperator, OperatorResult
from repro.proxies.classifier import SimilarityMatchProxy


@dataclass
class JoinResult(OperatorResult):
    """Output of a fuzzy join.

    Attributes:
        matches: (left index, right index) pairs judged to co-refer.
        candidate_pairs: how many pairs were considered at all.
        llm_pairs: how many pairs were sent to the LLM.
    """

    matches: list[tuple[int, int]] = field(default_factory=list)
    candidate_pairs: int = 0
    llm_pairs: int = 0


class JoinOperator(BaseOperator):
    """Fuzzy join between two collections of textual records."""

    operation = "join"

    def __init__(self, client, *, embedder: HashingEmbedder | None = None, **kwargs) -> None:
        self.embedder = embedder or HashingEmbedder()
        super().__init__(client, **kwargs)

    def _register_strategies(self) -> None:
        self.register_strategy(
            "all_pairs",
            self._run_all_pairs,
            description="one duplicate check per (left, right) pair",
            granularity="fine",
        )
        self.register_strategy(
            "blocked",
            self._run_blocked,
            description="duplicate checks only for embedding-near pairs",
            granularity="hybrid",
        )
        self.register_strategy(
            "proxy_blocked",
            self._run_proxy_blocked,
            description="similarity proxy first, LLM only for the confusing band",
            granularity="proxy",
        )

    def run(
        self,
        left: Sequence[str],
        right: Sequence[str],
        *,
        strategy: str = "blocked",
        **kwargs,
    ) -> JoinResult:
        """Join ``left`` against ``right`` with the named strategy."""
        left_list = [str(record) for record in left]
        right_list = [str(record) for record in right]
        if not left_list or not right_list:
            raise ConfigurationError("both sides of a join need at least one record")
        usage_before = self._usage_snapshot()
        result: JoinResult = self._strategy(strategy)(left_list, right_list, **kwargs)
        result.strategy = strategy
        self._finalize(result, usage_before)
        return result

    # -- helpers --------------------------------------------------------------------

    def _ask(self, left: str, right: str) -> bool:
        response = self._complete(duplicate_check_prompt(left, right))
        try:
            return extract_yes_no(response.text)
        except ResponseParseError:
            return False

    def _candidate_pairs(
        self,
        left: list[str],
        right: list[str],
        block_k: int,
        index_kind: str | None = None,
    ) -> list[tuple[int, int]]:
        """Cross-side candidate pairs whose embeddings are near neighbors.

        With ``index_kind`` unset, every (left, right) distance is computed
        in one Gram-matrix pass — exact, O(|L||R|).  With ``index_kind`` set
        (``"exact"``, ``"lsh"``, or ``"auto"``), the right side is loaded
        into a :class:`~repro.index.base.VectorIndex` and each left record
        probes it, so large right sides stop costing a full scan per join.
        """
        left_matrix = self.embedder.embed_batch(left)
        right_matrix = self.embedder.embed_batch(right)
        k = min(block_k, len(right))
        if index_kind is not None:
            from repro.index import create_index

            index = create_index(
                index_kind, self.embedder.dimensions, expected_size=len(right)
            )
            index.add(right_matrix)
            pairs_via_index: set[tuple[int, int]] = set()
            for left_index in range(len(left)):
                for right_index, _ in index.search(left_matrix[left_index], k):
                    pairs_via_index.add((left_index, int(right_index)))
            return sorted(pairs_via_index)
        # Squared L2 distances between every left row and every right row.
        left_norms = np.sum(left_matrix * left_matrix, axis=1)
        right_norms = np.sum(right_matrix * right_matrix, axis=1)
        distances = (
            left_norms[:, None] + right_norms[None, :] - 2.0 * (left_matrix @ right_matrix.T)
        )
        pairs: set[tuple[int, int]] = set()
        for left_index in range(len(left)):
            nearest = np.argsort(distances[left_index])[:k]
            pairs.update((left_index, int(right_index)) for right_index in nearest)
        return sorted(pairs)

    # -- strategies ------------------------------------------------------------------

    def _run_all_pairs(self, left: list[str], right: list[str]) -> JoinResult:
        matches = []
        for left_index, left_record in enumerate(left):
            for right_index, right_record in enumerate(right):
                if self._ask(left_record, right_record):
                    matches.append((left_index, right_index))
        total = len(left) * len(right)
        return JoinResult(
            strategy="all_pairs", matches=matches, candidate_pairs=total, llm_pairs=total
        )

    def _run_blocked(
        self,
        left: list[str],
        right: list[str],
        *,
        block_k: int = 3,
        index_kind: str | None = None,
    ) -> JoinResult:
        if block_k < 1:
            raise ConfigurationError("block_k must be at least 1")
        candidates = self._candidate_pairs(left, right, block_k, index_kind)
        matches = [
            (left_index, right_index)
            for left_index, right_index in candidates
            if self._ask(left[left_index], right[right_index])
        ]
        return JoinResult(
            strategy="blocked",
            matches=matches,
            candidate_pairs=len(candidates),
            llm_pairs=len(candidates),
        )

    def _run_proxy_blocked(
        self,
        left: list[str],
        right: list[str],
        *,
        block_k: int = 3,
        proxy: SimilarityMatchProxy | None = None,
        index_kind: str | None = None,
    ) -> JoinResult:
        if block_k < 1:
            raise ConfigurationError("block_k must be at least 1")
        proxy = proxy or SimilarityMatchProxy()
        candidates = self._candidate_pairs(left, right, block_k, index_kind)
        matches = []
        llm_pairs = 0
        for left_index, right_index in candidates:
            decision = proxy.decide(left[left_index], right[right_index])
            if decision.abstained:
                llm_pairs += 1
                if self._ask(left[left_index], right[right_index]):
                    matches.append((left_index, right_index))
            elif decision.label:
                matches.append((left_index, right_index))
        return JoinResult(
            strategy="proxy_blocked",
            matches=matches,
            candidate_pairs=len(candidates),
            llm_pairs=llm_pairs,
        )
