"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses distinguish the three
failure domains a declarative prompt-engineering toolkit has to care about:
the LLM substrate (context limits, parse failures), the budget (cost limits),
and the declarative layer (bad specs, unknown strategies).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class UnknownModelError(ReproError):
    """A model name was requested that is not present in the registry."""


class ContextLengthExceededError(ReproError):
    """A prompt did not fit into the model's context window.

    Mirrors the hard failure a real LLM API returns when the number of prompt
    tokens exceeds the model's context length.
    """

    def __init__(self, prompt_tokens: int, context_length: int, model: str = "") -> None:
        self.prompt_tokens = prompt_tokens
        self.context_length = context_length
        self.model = model
        message = (
            f"prompt of {prompt_tokens} tokens exceeds context length "
            f"{context_length}" + (f" for model {model!r}" if model else "")
        )
        super().__init__(message)


class ResponseParseError(ReproError):
    """The answer could not be extracted from an LLM response."""

    def __init__(self, message: str, response_text: str = "") -> None:
        self.response_text = response_text
        super().__init__(message)


class BudgetExceededError(ReproError):
    """An operation would exceed (or has exceeded) the monetary budget."""

    def __init__(self, spent: float, limit: float, message: str | None = None) -> None:
        self.spent = spent
        self.limit = limit
        super().__init__(
            message or f"budget exceeded: spent ${spent:.6f} of ${limit:.6f} limit"
        )


class RateLimitError(ReproError):
    """The LLM backend refused a call because a rate limit was hit.

    Mirrors the 429-style signal real provider APIs return.  ``retry_after``
    carries the backend's suggested wait in seconds when it supplied one (0
    otherwise); the :class:`~repro.core.governor.ConcurrencyGovernor` consumes
    it to drive adaptive backoff, falling back to exponential delays when the
    backend gave no hint.
    """

    def __init__(self, message: str = "rate limit exceeded", retry_after: float = 0.0) -> None:
        self.retry_after = retry_after
        if retry_after:
            message += f" (retry after {retry_after:g}s)"
        super().__init__(message)


class SpecError(ReproError):
    """A declarative task specification is invalid or incomplete."""


class UnknownStrategyError(SpecError):
    """The requested strategy name is not registered for the operator."""

    def __init__(self, operator: str, strategy: str, available: list[str] | None = None) -> None:
        self.operator = operator
        self.strategy = strategy
        self.available = list(available or [])
        message = f"unknown strategy {strategy!r} for operator {operator!r}"
        if self.available:
            message += f" (available: {', '.join(sorted(self.available))})"
        super().__init__(message)


class StoreError(ReproError):
    """The durable store could not be opened or used safely.

    Raised when a store file belongs to another application or was written
    by a newer library version — the cases where silently rebuilding would
    destroy data the library does not own or cannot read.
    """


class TraceError(ReproError):
    """A call trace could not be recorded, loaded, or replayed.

    Raised most prominently by the replay fixture when a replayed run asks
    for a prompt the recorded trace never answered — the signal that a
    "zero live calls" replay would have needed a live call.
    """


class DatasetError(ReproError):
    """A dataset is malformed for the requested operation."""


class QualityControlError(ReproError):
    """A quality-control procedure could not be carried out."""
