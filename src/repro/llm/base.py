"""Client protocol and response types for (simulated) LLMs.

Every LLM-facing component in the library talks to the :class:`LLMClient`
protocol rather than a concrete class, so the simulated client, the caching
wrapper, the cascade router and the ensemble client are all interchangeable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.exceptions import SpecError
from repro.tokenizer.cost import Usage


@dataclass(frozen=True)
class ChatMessage:
    """A single chat message (role + content).

    The simulator only inspects the concatenated content, but keeping the chat
    structure makes the client surface match real chat-completion APIs.
    """

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in {"system", "user", "assistant"}:
            raise SpecError(f"unsupported chat role: {self.role!r}")


@dataclass
class LLMResponse:
    """Response from a single LLM call.

    Attributes:
        text: the generated text.
        model: the model that produced the response.
        usage: prompt/completion token usage of this call.
        finish_reason: ``"stop"`` normally, ``"length"`` when truncated.
        confidence: the model's (simulated) self-confidence in ``[0, 1]``; real
            APIs expose this indirectly through token log-probabilities.
        metadata: free-form extra information (e.g. cache hits, routing).
    """

    text: str
    model: str
    usage: Usage = field(default_factory=Usage)
    finish_reason: str = "stop"
    confidence: float = 1.0
    metadata: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class LLMClient(Protocol):
    """Protocol implemented by every LLM client in this package.

    ``complete`` is the unit-task call.  ``complete_batch`` is the bulk entry
    point used by the batched execution layer (:mod:`repro.core.executor`):
    given N prompts sharing one (model, temperature, max_tokens) configuration
    it returns N responses in input order.  Clients without a native batch
    implementation can delegate to :func:`sequential_complete_batch`.

    ``acomplete``/``acomplete_batch`` are the asyncio-native counterparts used
    by the :class:`~repro.core.executor.AsyncBatchExecutor`.  At temperature 0
    they must be observably identical to the sync methods (the async
    equivalence suite asserts this for every wrapper in this package).

    Compatibility: minimal clients that only implement ``complete`` are still
    accepted by every consumer in this package — all internal batch dispatch
    goes through :func:`call_complete_batch`, which falls back to the
    sequential loop when ``complete_batch`` is absent, and all internal async
    dispatch goes through :func:`call_acomplete`/:func:`call_acomplete_batch`,
    which bridge a sync-only client into a worker thread.  Such clients are
    not full ``LLMClient`` implementations (``isinstance`` and static checks
    will say so), but they run fine everywhere a client is consumed.
    """

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Run one completion call and return the response."""
        ...  # pragma: no cover - protocol definition

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Run one completion call per prompt and return responses in order."""
        ...  # pragma: no cover - protocol definition

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Asyncio-native ``complete``: identical semantics, awaitable."""
        ...  # pragma: no cover - protocol definition

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Asyncio-native ``complete_batch``: identical semantics, awaitable."""
        ...  # pragma: no cover - protocol definition


def sequential_complete_batch(
    client: Any,
    prompts: list[str],
    *,
    model: str | None = None,
    temperature: float = 0.0,
    max_tokens: int | None = None,
) -> list[LLMResponse]:
    """The sequential default for ``complete_batch``: one ``complete`` per prompt.

    At temperature 0 this is observably identical to any correct native batch
    implementation (same responses, same totals), which is what the batch
    equivalence test suite asserts.
    """
    return [
        client.complete(prompt, model=model, temperature=temperature, max_tokens=max_tokens)
        for prompt in prompts
    ]


def call_complete_batch(
    client: Any,
    prompts: list[str],
    *,
    model: str | None = None,
    temperature: float = 0.0,
    max_tokens: int | None = None,
) -> list[LLMResponse]:
    """Dispatch a batch to ``client``, preferring its native ``complete_batch``.

    Third-party clients that only implement ``complete`` still work: the batch
    falls back to the sequential loop.
    """
    batch = getattr(client, "complete_batch", None)
    if callable(batch):
        return batch(prompts, model=model, temperature=temperature, max_tokens=max_tokens)
    return sequential_complete_batch(
        client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
    )


async def sequential_acomplete_batch(
    client: Any,
    prompts: list[str],
    *,
    model: str | None = None,
    temperature: float = 0.0,
    max_tokens: int | None = None,
) -> list[LLMResponse]:
    """The sequential default for ``acomplete_batch``: one awaited call per prompt.

    Mirrors :func:`sequential_complete_batch`; concurrency across the batch is
    the :class:`~repro.core.executor.AsyncBatchExecutor`'s job, exactly as the
    thread pool is the sync path's.
    """
    return [
        await call_acomplete(
            client, prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        for prompt in prompts
    ]


async def call_acomplete(
    client: Any,
    prompt: str,
    *,
    model: str | None = None,
    temperature: float = 0.0,
    max_tokens: int | None = None,
) -> LLMResponse:
    """Await ``client``'s completion, preferring its native ``acomplete``.

    The default sync-bridge: a client that only implements ``complete`` is
    called in a worker thread (``asyncio.to_thread``), so every existing sync
    client stays drop-in on the async path.  Contextvars — including the trace
    labels of :mod:`repro.trace` — propagate into the bridge thread.
    """
    acomplete = getattr(client, "acomplete", None)
    if callable(acomplete):
        return await acomplete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
    return await asyncio.to_thread(
        client.complete, prompt, model=model, temperature=temperature, max_tokens=max_tokens
    )


async def call_acomplete_batch(
    client: Any,
    prompts: list[str],
    *,
    model: str | None = None,
    temperature: float = 0.0,
    max_tokens: int | None = None,
) -> list[LLMResponse]:
    """Await a batch, preferring native ``acomplete_batch``, bridging otherwise.

    Fallback order mirrors the sync dispatcher: a native async batch first, a
    sync ``complete_batch`` bridged through a worker thread second (it may
    carry batch-level optimisations such as cache dedup), the sequential
    awaited loop last.
    """
    abatch = getattr(client, "acomplete_batch", None)
    if callable(abatch):
        return await abatch(prompts, model=model, temperature=temperature, max_tokens=max_tokens)
    batch = getattr(client, "complete_batch", None)
    if callable(batch):
        return await asyncio.to_thread(
            lambda: batch(prompts, model=model, temperature=temperature, max_tokens=max_tokens)
        )
    return await sequential_acomplete_batch(
        client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
    )


def messages_to_prompt(messages: list[ChatMessage]) -> str:
    """Flatten a chat transcript into a single prompt string.

    The simulated models are plain text-completion models; chat-style callers
    can still use them by flattening the transcript with role prefixes, the
    same way provider SDKs do internally for non-chat models.
    """
    return "\n".join(f"{message.role}: {message.content}" for message in messages)
