"""Response caching.

Data-processing workflows re-issue many identical unit tasks (the transitivity
augmentation in Table 3, for example, asks about overlapping neighbor pairs).
Caching identical (model, prompt, temperature-0) calls is the cheapest
cost-reduction technique available, so the library makes it a first-class
wrapper that any client can be composed with.

The cache is thread-safe: the :class:`~repro.core.executor.BatchExecutor`
dispatches unit tasks from a thread pool, so ``get``/``put`` (and the hit/miss
counters they maintain) are serialised behind a lock.  ``CachedClient`` also
implements the bulk ``complete_batch`` entry point, which additionally
deduplicates identical prompts *within* one batch so that N copies of a prompt
cost exactly one inner call — the same guarantee the sequential path gets from
the cache, preserved when the whole batch is handed downstream at once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.exceptions import ConfigurationError
from repro.llm.base import (
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
)
from repro.tokenizer.cost import Usage


@runtime_checkable
class ResponseCacheLike(Protocol):
    """The cache surface :class:`CachedClient` (and sessions) rely on.

    Both the in-memory :class:`ResponseCache` and the durable
    :class:`~repro.store.PersistentResponseCache` satisfy this, so anything
    accepting a cache can take either interchangeably.
    """

    stats: "CacheStats"

    def get(self, model: str, prompt: str) -> LLMResponse | None: ...  # pragma: no cover

    def put(self, model: str, prompt: str, response: LLMResponse) -> None: ...  # pragma: no cover

    def __len__(self) -> int: ...  # pragma: no cover

    def clear(self) -> None: ...  # pragma: no cover


@dataclass
class CacheStats:
    """Hit/miss counters for a :class:`ResponseCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ResponseCache:
    """A bounded LRU cache of LLM responses keyed by (model, prompt).

    All public methods are safe to call concurrently from multiple threads;
    hit/miss accounting never loses updates.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str], LLMResponse] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, model: str, prompt: str) -> LLMResponse | None:
        key = (model, prompt)
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return response

    def put(self, model: str, prompt: str, response: LLMResponse) -> None:
        key = (model, prompt)
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


def _cache_hit_copy(cached: LLMResponse) -> LLMResponse:
    """A fresh response representing a cache hit: zero usage, marked metadata."""
    return LLMResponse(
        text=cached.text,
        model=cached.model,
        usage=Usage(),
        finish_reason=cached.finish_reason,
        confidence=cached.confidence,
        metadata={**cached.metadata, "cache_hit": True},
    )


class CachedClient:
    """Client wrapper that serves repeated temperature-0 calls from a cache.

    Cached responses are returned with zero-token usage (the call never went
    out), with a ``"cache_hit"`` marker in the metadata so downstream trackers
    can still count logical requests if they want to.
    """

    def __init__(self, client: LLMClient, cache: ResponseCacheLike | None = None) -> None:
        self._client = client
        # `cache or ResponseCache()` would discard an *empty* cache (it is
        # falsy because it defines __len__), so test for None explicitly.
        self.cache: ResponseCacheLike = cache if cache is not None else ResponseCache()

    def _cache_key_model(self, model: str | None) -> str:
        return model or getattr(self._client, "default_model", "default")

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        cache_key_model = self._cache_key_model(model)
        if temperature == 0.0:
            cached = self.cache.get(cache_key_model, prompt)
            if cached is not None:
                return _cache_hit_copy(cached)
        response = self._client.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        if temperature == 0.0:
            self.cache.put(cache_key_model, prompt, response)
        return response

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Serve a whole batch through the cache with within-batch dedup.

        Element-wise equivalent to calling :meth:`complete` per prompt in
        order: already-cached prompts are hits, the first occurrence of each
        novel prompt is a miss forwarded to the inner client (as one inner
        batch), and duplicate occurrences within the batch become hits served
        from the just-filled cache — so per-prompt hit/miss accounting matches
        the sequential path exactly while novel prompts cost one inner call
        each.
        """
        if temperature != 0.0:
            return call_complete_batch(
                self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
            )
        cache_key_model = self._cache_key_model(model)
        results: list[LLMResponse | None] = [None] * len(prompts)
        pending_indices: list[int] = []
        pending_prompts: list[str] = []
        scheduled: set[str] = set()
        duplicate_indices: list[int] = []
        for index, prompt in enumerate(prompts):
            if prompt in scheduled:
                # Duplicate of an in-batch miss: resolved from the cache after
                # the inner batch returns, exactly like the sequential path.
                duplicate_indices.append(index)
                continue
            cached = self.cache.get(cache_key_model, prompt)
            if cached is not None:
                results[index] = _cache_hit_copy(cached)
            else:
                scheduled.add(prompt)
                pending_indices.append(index)
                pending_prompts.append(prompt)
        if pending_prompts:
            responses = call_complete_batch(
                self._client,
                pending_prompts,
                model=model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
            for index, prompt, response in zip(pending_indices, pending_prompts, responses):
                self.cache.put(cache_key_model, prompt, response)
                results[index] = response
        for index in duplicate_indices:
            cached = self.cache.get(cache_key_model, prompts[index])
            assert cached is not None  # its first occurrence was just put
            results[index] = _cache_hit_copy(cached)
        assert all(response is not None for response in results)
        return results  # type: ignore[return-value]

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native :meth:`complete`: the cache lookup stays inline.

        ``get``/``put`` are in-memory (or SQLite) operations measured in
        microseconds, so they run on the event loop; only a miss awaits the
        inner client.  Note two concurrent misses on the same prompt may both
        reach the inner client — the async executor's dispatch-level dedup
        (mirroring the thread path) is what prevents that race upstream.
        """
        cache_key_model = self._cache_key_model(model)
        if temperature == 0.0:
            cached = self.cache.get(cache_key_model, prompt)
            if cached is not None:
                return _cache_hit_copy(cached)
        response = await call_acomplete(
            self._client, prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        if temperature == 0.0:
            self.cache.put(cache_key_model, prompt, response)
        return response

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native batch with the same within-batch dedup as the sync path."""
        if temperature != 0.0:
            return await call_acomplete_batch(
                self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
            )
        cache_key_model = self._cache_key_model(model)
        results: list[LLMResponse | None] = [None] * len(prompts)
        pending_indices: list[int] = []
        pending_prompts: list[str] = []
        scheduled: set[str] = set()
        duplicate_indices: list[int] = []
        for index, prompt in enumerate(prompts):
            if prompt in scheduled:
                duplicate_indices.append(index)
                continue
            cached = self.cache.get(cache_key_model, prompt)
            if cached is not None:
                results[index] = _cache_hit_copy(cached)
            else:
                scheduled.add(prompt)
                pending_indices.append(index)
                pending_prompts.append(prompt)
        if pending_prompts:
            responses = await call_acomplete_batch(
                self._client,
                pending_prompts,
                model=model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
            for index, prompt, response in zip(pending_indices, pending_prompts, responses):
                self.cache.put(cache_key_model, prompt, response)
                results[index] = response
        for index in duplicate_indices:
            cached = self.cache.get(cache_key_model, prompts[index])
            assert cached is not None  # its first occurrence was just put
            results[index] = _cache_hit_copy(cached)
        assert all(response is not None for response in results)
        return results  # type: ignore[return-value]
