"""Response caching.

Data-processing workflows re-issue many identical unit tasks (the transitivity
augmentation in Table 3, for example, asks about overlapping neighbor pairs).
Caching identical (model, prompt, temperature-0) calls is the cheapest
cost-reduction technique available, so the library makes it a first-class
wrapper that any client can be composed with.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.llm.base import LLMClient, LLMResponse
from repro.tokenizer.cost import Usage


@dataclass
class CacheStats:
    """Hit/miss counters for a :class:`ResponseCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ResponseCache:
    """A bounded LRU cache of LLM responses keyed by (model, prompt)."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str], LLMResponse] = OrderedDict()

    def get(self, model: str, prompt: str) -> LLMResponse | None:
        key = (model, prompt)
        response = self._entries.get(key)
        if response is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return response

    def put(self, model: str, prompt: str, response: LLMResponse) -> None:
        key = (model, prompt)
        self._entries[key] = response
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()


class CachedClient:
    """Client wrapper that serves repeated temperature-0 calls from a cache.

    Cached responses are returned with zero-token usage (the call never went
    out), with a ``"cache_hit"`` marker in the metadata so downstream trackers
    can still count logical requests if they want to.
    """

    def __init__(self, client: LLMClient, cache: ResponseCache | None = None) -> None:
        self._client = client
        # `cache or ResponseCache()` would discard an *empty* cache (it is
        # falsy because it defines __len__), so test for None explicitly.
        self.cache = cache if cache is not None else ResponseCache()

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        cache_key_model = model or getattr(self._client, "default_model", "default")
        if temperature == 0.0:
            cached = self.cache.get(cache_key_model, prompt)
            if cached is not None:
                return LLMResponse(
                    text=cached.text,
                    model=cached.model,
                    usage=Usage(),
                    finish_reason=cached.finish_reason,
                    confidence=cached.confidence,
                    metadata={**cached.metadata, "cache_hit": True},
                )
        response = self._client.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        if temperature == 0.0:
            self.cache.put(cache_key_model, prompt, response)
        return response
