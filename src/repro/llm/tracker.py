"""Usage tracking: token counts, dollar cost, and per-model breakdowns.

Every operator threads its LLM calls through a :class:`UsageTracker`, which is
what lets the declarative engine enforce budgets (Section 3) and lets the
benchmark harnesses report the prompt/completion token columns of Tables 1
and 4.

The tracker is thread-safe: the batched execution layer
(:mod:`repro.core.executor`) records usage from a pool of worker threads, so
every mutation of the per-model accumulators happens under a lock and no
update is ever lost.  ``record_batch`` applies a whole batch's usage as one
atomic delta.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.llm.base import (
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
)
from repro.tokenizer.cost import CostModel, CostSummary, Usage


@dataclass
class UsageTracker:
    """Accumulates usage and cost across many LLM calls.

    Attributes:
        cost_model: prices used to convert token usage to dollars; optional —
            without it the tracker still counts tokens and calls.
    """

    cost_model: CostModel | None = None
    _by_model: dict[str, Usage] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False, compare=False)

    def record(self, response: LLMResponse) -> None:
        """Record the usage of one response."""
        with self._lock:
            usage = self._by_model.setdefault(response.model, Usage())
            usage.add(response.usage)

    def record_batch(self, responses: Iterable[LLMResponse]) -> None:
        """Record a whole batch of responses as one atomic delta."""
        with self._lock:
            for response in responses:
                self._by_model.setdefault(response.model, Usage()).add(response.usage)

    def record_usage(self, model: str, usage: Usage) -> None:
        """Record usage directly (e.g. for embedding calls)."""
        with self._lock:
            self._by_model.setdefault(model, Usage()).add(usage)

    @property
    def usage(self) -> Usage:
        """Total usage across every model."""
        total = Usage()
        with self._lock:
            for usage in self._by_model.values():
                total.add(usage)
        return total

    @property
    def prompt_tokens(self) -> int:
        return self.usage.prompt_tokens

    @property
    def completion_tokens(self) -> int:
        return self.usage.completion_tokens

    @property
    def calls(self) -> int:
        return self.usage.calls

    def cost(self) -> float:
        """Total dollar cost; zero when no cost model is attached."""
        if self.cost_model is None:
            return 0.0
        with self._lock:
            return sum(
                self.cost_model.cost(model, usage)
                for model, usage in self._by_model.items()
                if self.cost_model.has_model(model)
            )

    def summary(self) -> CostSummary:
        """Per-model usage and dollar breakdown."""
        with self._lock:
            by_model = {model: usage.copy() for model, usage in self._by_model.items()}
        dollars = {}
        if self.cost_model is not None:
            dollars = {
                model: self.cost_model.cost(model, usage)
                for model, usage in by_model.items()
                if self.cost_model.has_model(model)
            }
        return CostSummary(by_model=by_model, dollars_by_model=dollars)

    def reset(self) -> None:
        """Forget all recorded usage."""
        with self._lock:
            self._by_model.clear()


class TrackedClient:
    """LLM client wrapper that records every call into a :class:`UsageTracker`."""

    def __init__(self, client: LLMClient, tracker: UsageTracker) -> None:
        self._client = client
        self.tracker = tracker

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        response = self._client.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record(response)
        return response

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Forward the batch to the inner client and record it atomically."""
        responses = call_complete_batch(
            self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record_batch(responses)
        return responses

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native :meth:`complete`: await the inner client, then record."""
        response = await call_acomplete(
            self._client, prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record(response)
        return response

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native batch: await the inner batch and record it atomically."""
        responses = await call_acomplete_batch(
            self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record_batch(responses)
        return responses
