"""Usage tracking: token counts, dollar cost, and per-model breakdowns.

Every operator threads its LLM calls through a :class:`UsageTracker`, which is
what lets the declarative engine enforce budgets (Section 3) and lets the
benchmark harnesses report the prompt/completion token columns of Tables 1
and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.base import LLMClient, LLMResponse
from repro.tokenizer.cost import CostModel, CostSummary, Usage


@dataclass
class UsageTracker:
    """Accumulates usage and cost across many LLM calls.

    Attributes:
        cost_model: prices used to convert token usage to dollars; optional —
            without it the tracker still counts tokens and calls.
    """

    cost_model: CostModel | None = None
    _by_model: dict[str, Usage] = field(default_factory=dict)

    def record(self, response: LLMResponse) -> None:
        """Record the usage of one response."""
        usage = self._by_model.setdefault(response.model, Usage())
        usage.add(response.usage)

    def record_usage(self, model: str, usage: Usage) -> None:
        """Record usage directly (e.g. for embedding calls)."""
        self._by_model.setdefault(model, Usage()).add(usage)

    @property
    def usage(self) -> Usage:
        """Total usage across every model."""
        total = Usage()
        for usage in self._by_model.values():
            total.add(usage)
        return total

    @property
    def prompt_tokens(self) -> int:
        return self.usage.prompt_tokens

    @property
    def completion_tokens(self) -> int:
        return self.usage.completion_tokens

    @property
    def calls(self) -> int:
        return self.usage.calls

    def cost(self) -> float:
        """Total dollar cost; zero when no cost model is attached."""
        if self.cost_model is None:
            return 0.0
        return sum(
            self.cost_model.cost(model, usage)
            for model, usage in self._by_model.items()
            if self.cost_model.has_model(model)
        )

    def summary(self) -> CostSummary:
        """Per-model usage and dollar breakdown."""
        dollars = {}
        if self.cost_model is not None:
            dollars = {
                model: self.cost_model.cost(model, usage)
                for model, usage in self._by_model.items()
                if self.cost_model.has_model(model)
            }
        return CostSummary(
            by_model={model: usage.copy() for model, usage in self._by_model.items()},
            dollars_by_model=dollars,
        )

    def reset(self) -> None:
        """Forget all recorded usage."""
        self._by_model.clear()


class TrackedClient:
    """LLM client wrapper that records every call into a :class:`UsageTracker`."""

    def __init__(self, client: LLMClient, tracker: UsageTracker) -> None:
        self._client = client
        self.tracker = tracker

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        response = self._client.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record(response)
        return response
