"""Ground-truth oracle backing the simulated LLM.

A real LLM's competence on a task comes from its training data; the simulated
LLM's competence comes from an :class:`Oracle` that knows the ground truth of
the experiment's domain (latent sort scores, duplicate clusters, missing
attribute values, predicate labels).  The simulator then *corrupts* the
oracle's answers according to the behaviour models in
:mod:`repro.llm.behaviors`, which is what makes it a noisy oracle in the
declarative-crowdsourcing sense rather than a perfect one.

Datasets construct and populate oracles; operators never see them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.exceptions import ConfigurationError


def prefix_margin(a: str, b: str) -> float:
    """Difficulty-aware margin for lexicographic comparisons.

    Two strings that differ in their first character are easy to order
    (margin close to 1); strings sharing a long common prefix are hard
    (margin close to 0).
    """
    if not a or not b:
        return 1.0
    limit = min(len(a), len(b))
    shared = 0
    while shared < limit and a[shared].lower() == b[shared].lower():
        shared += 1
    if a.lower() == b.lower():
        return 0.0
    return max(0.05, 1.0 - shared / max(len(a), len(b)))


class Oracle:
    """Ground truth for every task type the simulated LLM can be asked.

    The oracle is deliberately permissive: any subset of the registries can be
    populated, and asking for ground truth that was never registered raises
    ``KeyError`` so that mis-wired experiments fail loudly instead of
    silently producing garbage.
    """

    def __init__(self) -> None:
        self._scores: dict[str, dict[str, float]] = {}
        self._keys: dict[str, Callable[[str], Any]] = {}
        self._key_reverse: dict[str, bool] = {}
        self._margins: dict[str, Callable[[str, str], float]] = {}
        self._entities: dict[str, str] = {}
        self._values: dict[tuple[str, str], str] = {}
        self._predicates: dict[str, Callable[[str], bool]] = {}
        self._categories: dict[str, str] = {}

    # -- registration -------------------------------------------------------

    def register_scores(self, criterion: str, scores: Mapping[str, float]) -> None:
        """Register latent scores (higher = ranks first) for a sort criterion."""
        if not scores:
            raise ConfigurationError("scores mapping must not be empty")
        self._scores[criterion] = dict(scores)

    def register_key(
        self,
        criterion: str,
        key: Callable[[str], Any],
        *,
        reverse: bool = False,
        margin: Callable[[str, str], float] | None = None,
    ) -> None:
        """Register a sort key function for a criterion.

        Args:
            criterion: criterion name as it appears in prompts.
            key: function mapping an item to a sortable key; by convention the
                smallest key ranks first unless ``reverse`` is set.
            reverse: whether larger keys rank first.
            margin: optional difficulty function returning a value in [0, 1].
        """
        self._keys[criterion] = key
        self._key_reverse[criterion] = reverse
        if margin is not None:
            self._margins[criterion] = margin

    def register_entities(self, mapping: Mapping[str, str]) -> None:
        """Register item-text → entity-id ground truth for duplicate checks."""
        self._entities.update(mapping)

    def register_value(self, record_text: str, attribute: str, value: str) -> None:
        """Register the true value of a missing attribute for a record."""
        self._values[(record_text, attribute)] = value

    def register_predicate(self, name: str, fn: Callable[[str], bool]) -> None:
        """Register a boolean predicate over item text."""
        self._predicates[name] = fn

    def register_categories(self, mapping: Mapping[str, str]) -> None:
        """Register item-text → category-label ground truth."""
        self._categories.update(mapping)

    # -- sorting / rating ----------------------------------------------------

    def knows_criterion(self, criterion: str) -> bool:
        """Whether the oracle can order items under ``criterion``."""
        return criterion in self._scores or criterion in self._keys

    def score(self, item: str, criterion: str) -> float:
        """Latent score of ``item`` under ``criterion`` (higher = ranks first)."""
        if criterion in self._scores:
            return self._scores[criterion][item]
        if criterion in self._keys:
            # Key-based criteria have no natural scalar; derive one from the
            # rank within all items registered so far is not possible, so we
            # raise and let callers use compare()/true_order() instead.
            raise KeyError(
                f"criterion {criterion!r} is key-based; use compare() or true_order()"
            )
        raise KeyError(f"unknown criterion {criterion!r}")

    def has_scores(self, criterion: str) -> bool:
        """Whether scalar scores are available for ``criterion``."""
        return criterion in self._scores

    def normalized_score(self, item: str, criterion: str) -> float:
        """Score of ``item`` rescaled to [0, 1] over all registered items."""
        scores = self._scores[criterion]
        values = scores.values()
        minimum, maximum = min(values), max(values)
        span = maximum - minimum
        if span <= 0:
            return 0.5
        return (scores[item] - minimum) / span

    def compare(self, item_a: str, item_b: str, criterion: str) -> int:
        """Return 1 if ``item_a`` ranks before ``item_b``, -1 if after, 0 if tied."""
        if criterion in self._scores:
            score_a = self._scores[criterion][item_a]
            score_b = self._scores[criterion][item_b]
            if score_a == score_b:
                return 0
            return 1 if score_a > score_b else -1
        if criterion in self._keys:
            key = self._keys[criterion]
            key_a, key_b = key(item_a), key(item_b)
            if key_a == key_b:
                return 0
            before = key_a < key_b
            if self._key_reverse[criterion]:
                before = not before
            return 1 if before else -1
        raise KeyError(f"unknown criterion {criterion!r}")

    def margin(self, item_a: str, item_b: str, criterion: str) -> float:
        """Difficulty margin in [0, 1]; large margins are easy comparisons."""
        if criterion in self._margins:
            return float(self._margins[criterion](item_a, item_b))
        if criterion in self._scores:
            scores = self._scores[criterion]
            values = scores.values()
            span = max(values) - min(values)
            if span <= 0:
                return 0.0
            return abs(scores[item_a] - scores[item_b]) / span
        if criterion in self._keys:
            return prefix_margin(str(item_a), str(item_b))
        raise KeyError(f"unknown criterion {criterion!r}")

    def true_order(self, items: Iterable[str], criterion: str) -> list[str]:
        """Return ``items`` in ground-truth order (rank-1 item first)."""
        item_list = list(items)
        if criterion in self._scores:
            scores = self._scores[criterion]
            return sorted(item_list, key=lambda item: -scores[item])
        if criterion in self._keys:
            key = self._keys[criterion]
            return sorted(item_list, key=key, reverse=self._key_reverse[criterion])
        raise KeyError(f"unknown criterion {criterion!r}")

    # -- entity resolution ---------------------------------------------------

    def knows_entity(self, item: str) -> bool:
        """Whether the oracle knows the entity id of ``item``."""
        return item in self._entities

    def entity_id(self, item: str) -> str:
        """Ground-truth entity id of ``item``."""
        return self._entities[item]

    def same_entity(self, item_a: str, item_b: str) -> bool:
        """Whether two items refer to the same real-world entity."""
        return self._entities[item_a] == self._entities[item_b]

    # -- imputation ----------------------------------------------------------

    def true_value(self, record_text: str, attribute: str) -> str:
        """Ground-truth value of ``attribute`` for the serialized record."""
        return self._values[(record_text, attribute)]

    def knows_value(self, record_text: str, attribute: str) -> bool:
        """Whether a true value is registered for this record/attribute pair."""
        return (record_text, attribute) in self._values

    # -- categorization ------------------------------------------------------

    def category_of(self, item: str) -> str:
        """Ground-truth category label of ``item``."""
        return self._categories[item]

    def knows_category(self, item: str) -> bool:
        """Whether a category label is registered for ``item``."""
        return item in self._categories

    # -- predicates ----------------------------------------------------------

    def satisfies(self, item: str, predicate: str) -> bool:
        """Whether ``item`` satisfies the named predicate."""
        return bool(self._predicates[predicate](item))

    def knows_predicate(self, predicate: str) -> bool:
        """Whether the named predicate is registered."""
        return predicate in self._predicates
