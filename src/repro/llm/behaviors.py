"""Behaviour (error) models for the simulated LLM.

Each function takes the parsed structured prompt, the ground-truth oracle, a
per-call random generator, the model's quality tier, and a
:class:`BehaviorConfig`, and returns the *text* the model would have produced
together with a confidence estimate.  The error structure is calibrated to the
failure modes the paper reports:

* pairwise comparisons fail more often the closer two items are (Table 1);
* single-prompt sorting of long lists drops items — preferentially from the
  middle of the prompt ("lost in the middle") — and occasionally hallucinates
  new items (Table 2);
* 1–7 ratings are coarse and noisy, so ties abound (Table 1);
* pairwise duplicate judgments are high precision / low recall (Table 3);
* imputed values are sometimes correct but formatted differently, which exact
  match scoring counts as wrong (Table 4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.llm.oracle import Oracle
from repro.llm.prompts import StructuredPrompt


@dataclass(frozen=True)
class BehaviorConfig:
    """Tunable error-rate parameters of the simulated LLM.

    All probabilities are for a model of quality 1.0; lower-quality models are
    noisier (see :func:`quality_multiplier`).
    """

    # Pairwise comparisons (sorting, max-finding).
    comparison_base_error: float = 0.35
    comparison_floor_error: float = 0.02
    # Order bias: extra probability mass on answering "A" regardless of content.
    comparison_position_bias: float = 0.03

    # Ratings on a bounded integer scale.  The paper found ratings barely more
    # accurate than the single-prompt sort (tau 0.547 vs 0.526): a 1-7 scale is
    # too coarse for 20 items, so the noise here is deliberately large.
    rating_noise_sd: float = 2.8

    # Single-prompt list sorting.  Subjective criteria (latent scores, e.g.
    # "chocolateyness") are ordered noisily; objective key-based criteria
    # (e.g. alphabetical order) are ordered almost perfectly but still suffer
    # drops and hallucinations on long prompts — matching the paper's
    # observations in Sections 3.1 and 3.2 respectively.
    list_sort_noise: float = 0.30
    list_sort_noise_objective: float = 0.015
    list_drop_threshold: int = 30
    list_drop_rate: float = 0.06
    list_hallucination_rate: float = 0.012
    list_middle_drop_boost: float = 2.0

    # Pairwise duplicate checks (entity resolution).
    duplicate_yes_threshold: float = 0.62
    duplicate_sharpness: float = 10.0
    duplicate_false_positive_rate: float = 0.008

    # Single-prompt grouping of duplicates.
    group_merge_error: float = 0.05
    group_split_error: float = 0.12

    # Imputation.
    impute_accuracy: float = 0.88
    impute_accuracy_with_examples: float = 0.96
    impute_format_variant_rate: float = 0.25
    # Few-shot examples demonstrate the exact output format, which largely
    # suppresses the formatting-variant failure mode.
    impute_format_variant_rate_with_examples: float = 0.05

    # Predicate checks and counting.
    predicate_error: float = 0.08
    count_relative_noise: float = 0.15

    # Categorization into a fixed label set.
    categorize_error: float = 0.10

    # Verification (quality control follow-up question).
    verification_agreement: float = 0.85


def quality_multiplier(quality: float) -> float:
    """How much a model's quality tier scales its error rates.

    Quality 1.0 keeps the configured error rates; quality 0.5 roughly doubles
    them.  The mapping is linear and clamped to stay in a sensible range.
    """
    return max(0.25, min(3.0, 1.0 + (0.8 - quality) * 2.5))


def _decide(rng: random.Random, probability: float) -> bool:
    """Bernoulli draw guarded against probabilities outside [0, 1]."""
    return rng.random() < max(0.0, min(1.0, probability))


def _corrupt_word(word: str, rng: random.Random) -> str:
    """Produce a plausible hallucinated variant of an existing word."""
    if not word:
        return "item"
    choice = rng.randrange(3)
    if choice == 0 and len(word) > 3:
        # Drop an interior character.
        index = rng.randrange(1, len(word) - 1)
        return word[:index] + word[index + 1 :]
    if choice == 1:
        # Duplicate a character.
        index = rng.randrange(len(word))
        return word[: index + 1] + word[index] + word[index + 1 :]
    # Swap two adjacent characters.
    if len(word) > 2:
        index = rng.randrange(len(word) - 1)
        chars = list(word)
        chars[index], chars[index + 1] = chars[index + 1], chars[index]
        return "".join(chars)
    return word + word[-1]


def _string_similarity(a: str, b: str) -> float:
    """Cheap token-overlap similarity in [0, 1] used to grade pair hardness."""
    tokens_a = set(a.lower().split())
    tokens_b = set(b.lower().split())
    if not tokens_a or not tokens_b:
        return 0.0
    overlap = len(tokens_a & tokens_b)
    return overlap / max(len(tokens_a), len(tokens_b))


# ---------------------------------------------------------------------------
# Task behaviours
# ---------------------------------------------------------------------------


def pairwise_comparison(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Answer an A/B comparison with margin-dependent error."""
    item_a, item_b = task.items[0], task.items[1]
    criterion = task.fields.get("criterion", "")
    truth = oracle.compare(item_a, item_b, criterion)
    margin = oracle.margin(item_a, item_b, criterion)
    multiplier = quality_multiplier(quality)
    p_error = min(
        0.5,
        (config.comparison_base_error * (1.0 - margin) + config.comparison_floor_error)
        * multiplier,
    )
    correct_answer = "A" if truth >= 0 else "B"
    answer = correct_answer
    if _decide(rng, p_error):
        answer = "B" if correct_answer == "A" else "A"
    # A mild position bias towards the first item, independent of content.
    if answer == "B" and _decide(rng, config.comparison_position_bias * multiplier):
        answer = "A"
    confidence = 1.0 - p_error
    return f"{answer}. The first item is labeled A and the second is labeled B.", confidence


def rating(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Rate one or more items on an integer scale derived from latent scores.

    A single item returns a bare integer; several items (the batched rating
    strategy) return one numbered rating per line, with slightly higher noise
    because longer prompts dilute the model's attention per item.
    """
    criterion = task.fields.get("criterion", "")
    scale = task.fields.get("scale", "1-7")
    low_text, _, high_text = scale.partition("-")
    low, high = int(low_text), int(high_text)
    multiplier = quality_multiplier(quality)
    batch_penalty = 1.0 + 0.15 * max(0, len(task.items) - 1)
    ratings: list[int] = []
    total_offset = 0.0
    for item in task.items:
        if oracle.has_scores(criterion):
            normalised = oracle.normalized_score(item, criterion)
        else:
            # Without scalar scores the model can only guess around the middle.
            normalised = 0.5
        ideal = low + normalised * (high - low)
        noisy = ideal + rng.gauss(0.0, config.rating_noise_sd * multiplier * batch_penalty)
        ratings.append(int(round(min(high, max(low, noisy)))))
        total_offset += abs(noisy - ideal)
    confidence = max(0.1, 1.0 - (total_offset / len(task.items)) / (high - low))
    if len(ratings) == 1:
        return f"{ratings[0]}", confidence
    lines = [f"{index + 1}. {value}" for index, value in enumerate(ratings)]
    return "\n".join(lines), confidence


def sort_list(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Sort a whole list in one response, with drops and hallucinations.

    Items are ordered by a noise-perturbed version of their true rank.  Noise
    grows for items that rank lower under the criterion (the paper observed
    the model getting the clearly-chocolate flavors right and scrambling the
    rest) and with list length.  For long lists, items are dropped with a
    probability that peaks in the middle of the prompt, and occasional
    hallucinated variants of real items are inserted.
    """
    items = list(task.items)
    criterion = task.fields.get("criterion", "")
    count = len(items)
    if count == 0:
        return "(no items)", 0.0
    multiplier = quality_multiplier(quality)
    true_order = oracle.true_order(items, criterion)
    true_rank = {item: index for index, item in enumerate(true_order)}

    length_factor = 1.0 + count / 60.0
    subjective = oracle.has_scores(criterion)
    noisy_keys: dict[str, float] = {}
    for item in items:
        rank_fraction = true_rank[item] / max(1, count - 1)
        if subjective:
            # Subjective criteria: the clearly-top items are ordered well, the
            # rest increasingly scrambled (paper Section 3.1).
            noise_sd = (
                config.list_sort_noise * multiplier * length_factor * (0.25 + rank_fraction)
            )
        else:
            # Objective criteria (alphabetical order): ordering is essentially
            # correct; the failure mode is drops/hallucinations, not shuffling.
            noise_sd = config.list_sort_noise_objective * multiplier
        noisy_keys[item] = rank_fraction + rng.gauss(0.0, noise_sd)
    ordered = sorted(items, key=lambda item: noisy_keys[item])

    dropped: set[str] = set()
    if count > config.list_drop_threshold:
        for prompt_position, item in enumerate(items):
            # "Lost in the middle": drop probability peaks at the centre of the
            # prompt and falls off towards both ends.
            centrality = 1.0 - abs((prompt_position / max(1, count - 1)) - 0.5) * 2.0
            p_drop = config.list_drop_rate * multiplier * (
                1.0 + config.list_middle_drop_boost * centrality
            ) / (1.0 + config.list_middle_drop_boost / 2.0)
            if _decide(rng, p_drop):
                dropped.add(item)
        # Never drop everything.
        if len(dropped) >= count:
            dropped.pop()
    ordered = [item for item in ordered if item not in dropped]

    hallucinated: list[str] = []
    if count > config.list_drop_threshold:
        existing = set(items)
        for item in items:
            if _decide(rng, config.list_hallucination_rate * multiplier):
                variant = _corrupt_word(item, rng)
                if variant not in existing:
                    hallucinated.append(variant)
                    existing.add(variant)
        for variant in hallucinated:
            ordered.insert(rng.randrange(len(ordered) + 1), variant)

    lines = [f"{index + 1}. {item}" for index, item in enumerate(ordered)]
    text = "Here is the sorted list:\n" + "\n".join(lines)
    confidence = max(0.1, 1.0 - (len(dropped) + len(hallucinated)) / count - 0.1)
    return text, confidence


def duplicate_check(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Yes/No duplicate judgment with high precision and low recall.

    The probability of answering "Yes" for a true duplicate pair grows with
    the textual similarity of the two records, so heavily-corrupted duplicates
    are systematically missed — precisely the misses that transitive evidence
    through a cleaner intermediate record can recover (Table 3).
    """
    record_a, record_b = task.items[0], task.items[1]
    multiplier = quality_multiplier(quality)
    is_duplicate = oracle.same_entity(record_a, record_b)
    similarity = _string_similarity(record_a, record_b)
    if is_duplicate:
        logit = config.duplicate_sharpness * (similarity - config.duplicate_yes_threshold)
        p_yes = 1.0 / (1.0 + math.exp(-logit / max(0.25, multiplier)))
        p_yes = max(0.02, min(0.995, p_yes))
    else:
        p_yes = min(0.5, config.duplicate_false_positive_rate * multiplier * (0.5 + similarity))
    answer_yes = _decide(rng, p_yes)
    confidence = p_yes if answer_yes else 1.0 - p_yes
    if answer_yes:
        return "Yes, these two citations refer to the same work.", confidence
    return "No, these two citations appear to be different works.", confidence


def group_records(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Group all records into duplicate sets in one response.

    Errors take the form of splits (a true group reported as two groups) and
    merges (two distinct records reported together), plus dropped records for
    long prompts — mirroring the paper's observation that whole-list entity
    resolution is unreliable even at 20 records.
    """
    items = list(task.items)
    multiplier = quality_multiplier(quality)
    groups: dict[str, list[int]] = {}
    for index, item in enumerate(items):
        entity = oracle.entity_id(item)
        groups.setdefault(entity, []).append(index)

    reported: list[list[int]] = []
    for members in groups.values():
        if len(members) > 1 and _decide(rng, config.group_split_error * multiplier):
            split_point = rng.randrange(1, len(members))
            reported.append(members[:split_point])
            reported.append(members[split_point:])
        else:
            reported.append(list(members))
    # Merge errors: occasionally fuse two reported groups.
    if len(reported) > 1 and _decide(rng, config.group_merge_error * multiplier):
        first = rng.randrange(len(reported))
        second = rng.randrange(len(reported))
        if first != second:
            merged = reported[first] + reported[second]
            reported = [
                group for position, group in enumerate(reported) if position not in {first, second}
            ]
            reported.append(merged)
    # Drop records from long prompts.
    if len(items) > config.list_drop_threshold:
        survivors = []
        for group in reported:
            kept = [
                index for index in group if not _decide(rng, config.list_drop_rate * multiplier)
            ]
            if kept:
                survivors.append(kept)
        reported = survivors or reported
    lines = [", ".join(str(index) for index in sorted(group)) for group in reported]
    return "Groups of duplicates:\n" + "\n".join(lines), 0.7


def impute(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Predict a missing attribute value, sometimes with formatting drift."""
    record = task.items[0]
    attribute = task.fields.get("attribute", "")
    has_examples = task.has_examples
    truth = oracle.true_value(record, attribute)
    multiplier = quality_multiplier(quality)
    base_accuracy = (
        config.impute_accuracy_with_examples if has_examples else config.impute_accuracy
    )
    p_correct = max(0.05, min(0.99, 1.0 - (1.0 - base_accuracy) * multiplier))
    variant_rate = (
        config.impute_format_variant_rate_with_examples
        if has_examples
        else config.impute_format_variant_rate
    )
    if _decide(rng, p_correct):
        if _decide(rng, variant_rate):
            return _format_variant(truth, rng), 0.6
        return truth, min(0.95, p_correct)
    # A wrong but plausible answer: truncate or corrupt the true value.
    wrong = truth.split()[0] if " " in truth else _corrupt_word(truth, rng)
    if wrong == truth:
        wrong = truth + " Inc"
    return wrong, 0.35


def _format_variant(value: str, rng: random.Random) -> str:
    """Return the same value with superficial formatting differences."""
    variants = []
    if " " in value:
        variants.append(value.replace(" ", ""))
        variants.append(value.replace(" ", "-"))
    else:
        # Insert a space before a mid-word capital ("TomTom" -> "Tom Tom").
        for index in range(1, len(value)):
            if value[index].isupper():
                variants.append(value[:index] + " " + value[index:])
                break
    variants.append(value + " Systems")
    variants.append(value.lower())
    return variants[rng.randrange(len(variants))]


def predicate_check(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Yes/No predicate evaluation with a symmetric error rate."""
    item = task.items[0]
    predicate = task.fields.get("predicate", "")
    truth = oracle.satisfies(item, predicate)
    multiplier = quality_multiplier(quality)
    p_error = min(0.45, config.predicate_error * multiplier)
    answer = truth if not _decide(rng, p_error) else not truth
    confidence = 1.0 - p_error
    return ("Yes." if answer else "No."), confidence


def categorize(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Assign an item to one of the offered categories, mostly correctly.

    Errors pick a *different* offered category uniformly at random, which is
    how a distracted annotator (human or model) typically fails this task.
    """
    item = task.items[0]
    offered = [part.strip() for part in task.fields.get("categories", "").split(";") if part.strip()]
    truth = oracle.category_of(item) if oracle.knows_category(item) else ""
    multiplier = quality_multiplier(quality)
    p_error = min(0.6, config.categorize_error * multiplier)
    answer = truth
    if (not truth) or _decide(rng, p_error):
        alternatives = [category for category in offered if category != truth] or offered
        if alternatives:
            answer = alternatives[rng.randrange(len(alternatives))]
    confidence = 1.0 - p_error if answer == truth else 0.5
    return answer or "unknown", confidence


def estimate_count(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Coarse 'eyeballing' estimate of how many items satisfy a predicate."""
    predicate = task.fields.get("predicate", "")
    true_count = sum(1 for item in task.items if oracle.satisfies(item, predicate))
    multiplier = quality_multiplier(quality)
    noise_sd = max(0.5, config.count_relative_noise * multiplier * max(1, len(task.items)) * 0.5)
    estimate = int(round(max(0, min(len(task.items), true_count + rng.gauss(0.0, noise_sd)))))
    return f"Approximately {estimate} of the items satisfy the condition.", 0.6


def verify_answer(
    task: StructuredPrompt,
    oracle: Oracle,
    rng: random.Random,
    quality: float,
    config: BehaviorConfig,
) -> tuple[str, float]:
    """Verification follow-up: agree with the proposed answer most of the time.

    The simulator has no grounding for arbitrary verification questions, so it
    models a verifier that independently agrees with a fixed probability —
    enough to exercise the quality-control plumbing without pretending to add
    information it does not have.
    """
    multiplier = quality_multiplier(quality)
    p_agree = max(0.5, min(0.99, config.verification_agreement / multiplier))
    agrees = _decide(rng, p_agree)
    return ("Yes, the proposed answer looks correct." if agrees else "No, it looks wrong."), p_agree


#: Dispatch table from task kind to behaviour function.
BEHAVIORS = {
    "pairwise_comparison": pairwise_comparison,
    "rating": rating,
    "sort_list": sort_list,
    "duplicate_check": duplicate_check,
    "group_records": group_records,
    "impute": impute,
    "predicate_check": predicate_check,
    "estimate_count": estimate_count,
    "categorize": categorize,
    "verify_answer": verify_answer,
}
