"""Prompt templates and the structured task format.

Operators assemble prompts from templates here so that every unit-task prompt
carries a machine-parsable header (task kind, criterion, options) followed by
the data items.  The same module defines :func:`parse_structured_prompt`, used
by the simulated LLM to recover the task from the prompt text — exactly the
way a real LLM recovers the task from natural-language instructions, but
deterministic.  Keeping the builder and the parser side by side guarantees the
two never drift apart.
"""

from __future__ import annotations

import re
import string
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ResponseParseError


class PromptTemplate:
    """A named prompt template with ``{placeholder}`` substitution.

    Few-shot examples can be attached; they are rendered above the task body
    in the conventional ``Input:`` / ``Output:`` layout used by the paper's
    imputation case study.
    """

    def __init__(self, template: str, *, name: str = "template") -> None:
        self.name = name
        self.template = template
        self._fields = {
            field_name
            for _, field_name, _, _ in string.Formatter().parse(template)
            if field_name
        }

    @property
    def fields(self) -> set[str]:
        """Placeholder names that must be supplied to :meth:`render`."""
        return set(self._fields)

    def render(self, *, examples: Iterable[Mapping[str, str]] | None = None, **values: str) -> str:
        """Render the template with ``values`` and optional few-shot examples."""
        missing = self._fields - set(values)
        if missing:
            raise KeyError(f"missing template fields: {sorted(missing)}")
        body = self.template.format(**values)
        if not examples:
            return body
        example_lines = []
        for example in examples:
            example_lines.append(f"Input: {example['input']}")
            example_lines.append(f"Output: {example['output']}")
        return "Here are some examples:\n" + "\n".join(example_lines) + "\n\n" + body


# ---------------------------------------------------------------------------
# Structured task prompts
# ---------------------------------------------------------------------------

_TASK_HEADER = "### TASK: {task}"
_FIELD_LINE = "### {key}: {value}"
_ITEM_LINE = "[{index}] {text}"

_TASK_RE = re.compile(r"^### TASK: (?P<task>[\w-]+)\s*$", re.MULTILINE)
_FIELD_RE = re.compile(r"^### (?P<key>[A-Z_]+): (?P<value>.*)$", re.MULTILINE)
_ITEM_RE = re.compile(r"^\[(?P<index>\d+)\] (?P<text>.*)$", re.MULTILINE)


@dataclass
class StructuredPrompt:
    """Parsed form of a structured unit-task prompt.

    Attributes:
        task: task kind, e.g. ``"pairwise_comparison"`` or ``"sort_list"``.
        fields: header key/value pairs (criterion, options, attribute, ...).
        items: data items embedded in the prompt, in order.
        instructions: the free-text instructions that followed the data block.
        has_examples: whether few-shot examples were included in the prompt.
    """

    task: str
    fields: dict[str, str] = field(default_factory=dict)
    items: list[str] = field(default_factory=list)
    instructions: str = ""
    has_examples: bool = False


def build_structured_prompt(
    task: str,
    *,
    fields: Mapping[str, str] | None = None,
    items: Iterable[str] = (),
    instructions: str = "",
    examples: Iterable[Mapping[str, str]] | None = None,
) -> str:
    """Build a unit-task prompt in the structured format.

    The format is plain readable text — a header describing the task, the data
    items as a numbered list, then natural-language instructions — so that it
    would also be a sensible prompt for a real LLM.
    """
    lines = [_TASK_HEADER.format(task=task)]
    for key, value in (fields or {}).items():
        lines.append(_FIELD_LINE.format(key=key.upper(), value=value))
    if examples:
        lines.append("### EXAMPLES:")
        for example in examples:
            lines.append(f"Input: {example['input']}")
            lines.append(f"Output: {example['output']}")
    item_list = list(items)
    if item_list:
        lines.append("### DATA:")
        lines.extend(
            _ITEM_LINE.format(index=index, text=text) for index, text in enumerate(item_list)
        )
    if instructions:
        lines.append("### INSTRUCTIONS:")
        lines.append(instructions)
    return "\n".join(lines)


def parse_structured_prompt(prompt: str) -> StructuredPrompt:
    """Parse a prompt produced by :func:`build_structured_prompt`.

    Raises:
        ResponseParseError: if the prompt does not carry a task header.
    """
    task_match = _TASK_RE.search(prompt)
    if task_match is None:
        raise ResponseParseError("prompt has no '### TASK:' header", prompt)
    fields: dict[str, str] = {}
    for match in _FIELD_RE.finditer(prompt):
        key = match.group("key")
        if key in {"TASK", "DATA", "INSTRUCTIONS", "EXAMPLES"}:
            continue
        fields[key.lower()] = match.group("value").strip()
    items = [match.group("text") for match in _ITEM_RE.finditer(prompt)]
    instructions = ""
    marker = "### INSTRUCTIONS:"
    if marker in prompt:
        instructions = prompt.split(marker, 1)[1].strip()
    return StructuredPrompt(
        task=task_match.group("task"),
        fields=fields,
        items=items,
        instructions=instructions,
        has_examples="### EXAMPLES:" in prompt,
    )


# ---------------------------------------------------------------------------
# Canonical task prompts used by the operators
# ---------------------------------------------------------------------------


def sort_list_prompt(items: Iterable[str], criterion: str) -> str:
    """Single prompt asking the model to sort every item at once (Section 3.1)."""
    return build_structured_prompt(
        "sort_list",
        fields={"criterion": criterion},
        items=items,
        instructions=(
            f"Sort ALL of the items above by '{criterion}', from most to least. "
            "Return the full sorted list, one item per line, numbered."
        ),
    )


def pairwise_comparison_prompt(item_a: str, item_b: str, criterion: str) -> str:
    """Unit task comparing two items on a criterion (Section 3.1)."""
    return build_structured_prompt(
        "pairwise_comparison",
        fields={"criterion": criterion},
        items=[item_a, item_b],
        instructions=(
            f"Which item ranks higher on '{criterion}'? "
            "Answer with exactly 'A' for the first item or 'B' for the second item."
        ),
    )


def rating_prompt(item: str, criterion: str, scale_min: int = 1, scale_max: int = 7) -> str:
    """Unit task rating one item on an integer scale (Section 3.1)."""
    return build_structured_prompt(
        "rating",
        fields={"criterion": criterion, "scale": f"{scale_min}-{scale_max}"},
        items=[item],
        instructions=(
            f"Rate the item above on '{criterion}' from {scale_min} (least) to "
            f"{scale_max} (most). Answer with a single integer."
        ),
    )


def rating_batch_prompt(
    items: Iterable[str], criterion: str, scale_min: int = 1, scale_max: int = 7
) -> str:
    """Unit task rating several items in one prompt (batching ablation)."""
    return build_structured_prompt(
        "rating",
        fields={"criterion": criterion, "scale": f"{scale_min}-{scale_max}"},
        items=items,
        instructions=(
            f"Rate EACH item above on '{criterion}' from {scale_min} (least) to "
            f"{scale_max} (most). Answer with one line per item in the form "
            "'<item number>. <rating>'."
        ),
    )


def duplicate_check_prompt(record_a: str, record_b: str) -> str:
    """Unit task asking whether two records refer to the same entity (Section 3.3)."""
    return build_structured_prompt(
        "duplicate_check",
        items=[record_a, record_b],
        instructions=(
            "Are Citation A and Citation B the same? Citation A is the first item, "
            "Citation B is the second item. Start your response with Yes or No."
        ),
    )


def group_records_prompt(records: Iterable[str]) -> str:
    """Single prompt asking the model to group duplicate records (Section 1)."""
    return build_structured_prompt(
        "group_records",
        items=records,
        instructions=(
            "Group the records above into sets of duplicates. Return one group per "
            "line as comma-separated item indices, e.g. '0, 3' for a group of two."
        ),
    )


def impute_prompt(
    serialized_record: str,
    attribute: str,
    examples: Iterable[Mapping[str, str]] | None = None,
) -> str:
    """Unit task asking the model to fill in one missing attribute (Section 3.4)."""
    return build_structured_prompt(
        "impute",
        fields={"attribute": attribute},
        items=[serialized_record],
        instructions=(
            f"Predict the value of the missing attribute '{attribute}' for the record "
            "above. Answer with just the value."
        ),
        examples=examples,
    )


def categorize_prompt(item: str, categories: Iterable[str]) -> str:
    """Unit task assigning one item to one of a fixed set of categories."""
    category_list = list(categories)
    return build_structured_prompt(
        "categorize",
        fields={"categories": "; ".join(category_list)},
        items=[item],
        instructions=(
            "Assign the item above to exactly one of these categories: "
            + ", ".join(category_list)
            + ". Answer with the category name only."
        ),
    )


def predicate_check_prompt(item: str, predicate: str) -> str:
    """Unit task asking whether one item satisfies a predicate (filtering)."""
    return build_structured_prompt(
        "predicate_check",
        fields={"predicate": predicate},
        items=[item],
        instructions=(
            f"Does the item above satisfy the condition '{predicate}'? "
            "Start your response with Yes or No."
        ),
    )


def estimate_count_prompt(items: Iterable[str], predicate: str) -> str:
    """Coarse 'eyeballing' task estimating how many items satisfy a predicate."""
    return build_structured_prompt(
        "estimate_count",
        fields={"predicate": predicate},
        items=items,
        instructions=(
            f"Estimate how many of the items above satisfy the condition '{predicate}'. "
            "Answer with a single integer."
        ),
    )


def verify_answer_prompt(question: str, proposed_answer: str) -> str:
    """Follow-up verification task (Section 3.5 quality control)."""
    return build_structured_prompt(
        "verify_answer",
        fields={"question": question},
        items=[proposed_answer],
        instructions=(
            "Is the proposed answer above correct for the question? "
            "Start your response with Yes or No."
        ),
    )
