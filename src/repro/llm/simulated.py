"""The simulated LLM client.

:class:`SimulatedLLM` implements the :class:`~repro.llm.base.LLMClient`
protocol.  It parses the structured prompt, looks up the ground truth in its
:class:`~repro.llm.oracle.Oracle`, corrupts it according to the behaviour
models, counts tokens, enforces the model's context length, and reports usage
— the same observable contract a commercial chat-completion API provides.

Determinism: at temperature 0 the same (model, prompt) pair always yields the
same response, because the per-call random generator is seeded from a stable
hash of the prompt.  At temperature > 0 a per-client call counter is folded
into the seed so repeated calls differ, which is what lets self-consistency
voting (Section 3.5) draw independent samples.
"""

from __future__ import annotations

import hashlib
import random
import threading

from repro.config import DEFAULT_CHAT_MODEL, DEFAULT_SEED
from repro.exceptions import ContextLengthExceededError, ResponseParseError
from repro.llm.base import LLMResponse, sequential_complete_batch
from repro.llm.behaviors import BEHAVIORS, BehaviorConfig
from repro.llm.oracle import Oracle
from repro.llm.prompts import parse_structured_prompt
from repro.llm.registry import ModelRegistry, default_registry
from repro.tokenizer.cost import Usage
from repro.tokenizer.simple import SimpleTokenizer


def _stable_seed(*parts: object) -> int:
    """Derive a reproducible 64-bit seed from arbitrary string-able parts."""
    digest = hashlib.sha256("||".join(str(part) for part in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SimulatedLLM:
    """Noisy-oracle simulation of a text-completion LLM endpoint.

    Args:
        oracle: ground truth for the experiment's domain.
        registry: model catalogue; defaults to :func:`default_registry`.
        behavior: error-rate configuration; defaults to the paper-calibrated
            :class:`BehaviorConfig`.
        default_model: model used when a call does not name one.
        seed: global seed folded into every per-call seed.
    """

    def __init__(
        self,
        oracle: Oracle,
        *,
        registry: ModelRegistry | None = None,
        behavior: BehaviorConfig | None = None,
        default_model: str = DEFAULT_CHAT_MODEL,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.oracle = oracle
        self.registry = registry or default_registry()
        self.behavior = behavior or BehaviorConfig()
        self.default_model = default_model
        self.seed = seed
        self.tokenizer = SimpleTokenizer()
        self._call_counter = 0
        # complete() may be called from the BatchExecutor's worker threads;
        # the counter increment must not lose updates under that load.
        self._counter_lock = threading.Lock()

    # -- LLMClient protocol --------------------------------------------------

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Run one simulated completion call."""
        model_name = model or self.default_model
        spec = self.registry.get(model_name)
        if spec.kind != "chat":
            raise ResponseParseError(
                f"model {model_name!r} is an embedding model and cannot complete prompts"
            )
        prompt_tokens = self.tokenizer.count(prompt)
        if prompt_tokens > spec.context_length:
            raise ContextLengthExceededError(prompt_tokens, spec.context_length, model_name)

        with self._counter_lock:
            self._call_counter += 1
            sample_index = self._call_counter if temperature > 0 else 0
        rng = random.Random(_stable_seed(self.seed, model_name, prompt, sample_index))

        text, confidence = self._generate(prompt, rng, spec.quality)

        completion_tokens = self.tokenizer.count(text)
        finish_reason = "stop"
        if max_tokens is not None and completion_tokens > max_tokens:
            tokens = self.tokenizer.tokenize(text)[:max_tokens]
            text = " ".join(tokens)
            completion_tokens = max_tokens
            finish_reason = "length"
        if prompt_tokens + completion_tokens > spec.context_length:
            # The completion itself ran into the window; truncate like real APIs.
            allowed = max(0, spec.context_length - prompt_tokens)
            tokens = self.tokenizer.tokenize(text)[:allowed]
            text = " ".join(tokens)
            completion_tokens = allowed
            finish_reason = "length"

        return LLMResponse(
            text=text,
            model=model_name,
            usage=Usage(prompt_tokens=prompt_tokens, completion_tokens=completion_tokens, calls=1),
            finish_reason=finish_reason,
            confidence=confidence,
            metadata={"temperature": temperature},
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Run one simulated completion per prompt, in input order.

        The simulator has no transport to amortise, so the native batch is the
        sequential loop; concurrency across batches comes from the
        :class:`~repro.core.executor.BatchExecutor` calling :meth:`complete`
        from its worker threads.
        """
        return sequential_complete_batch(
            self, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native completion: the simulator is pure compute, no bridge thread.

        A real provider client would await a network round-trip here; the
        simulator answers in well under a millisecond, so running it inline on
        the event loop is both correct and cheaper than hopping threads.
        """
        return self.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native batch: one inline simulated completion per prompt."""
        return self.complete_batch(
            prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )

    # -- internals ------------------------------------------------------------

    def _generate(self, prompt: str, rng: random.Random, quality: float) -> tuple[str, float]:
        """Produce the response text for a structured prompt."""
        try:
            task = parse_structured_prompt(prompt)
        except ResponseParseError:
            # Free-form prompt the simulator has no grounding for: echo a
            # generic acknowledgement, as a weak model would.
            return "I am not sure how to help with that request.", 0.1
        behavior = BEHAVIORS.get(task.task)
        if behavior is None:
            return f"I do not recognise the task '{task.task}'.", 0.1
        return behavior(task, self.oracle, rng, quality, self.behavior)

    def reset(self) -> None:
        """Reset the sampling counter (affects temperature > 0 calls only)."""
        with self._counter_lock:
            self._call_counter = 0
