"""Deterministic text embeddings.

The paper uses OpenAI's ``text-embedding-ada-002`` to find the k nearest
neighbors of each citation (Table 3).  Offline we substitute a character
n-gram hashing embedder: each n-gram is hashed into one of ``dimensions``
buckets and the bucket counts are L2-normalised.  Near-duplicate strings share
most of their n-grams, so they land close together in L2 distance — the only
property the neighbor-augmentation step needs.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.config import DEFAULT_EMBEDDING_MODEL
from repro.exceptions import ConfigurationError
from repro.tokenizer.cost import Usage
from repro.tokenizer.simple import SimpleTokenizer


def _bucket(ngram: str, dimensions: int) -> int:
    """Stable bucket index of an n-gram (independent of PYTHONHASHSEED)."""
    digest = hashlib.md5(ngram.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % dimensions


class HashingEmbedder:
    """Character n-gram hashing embedder with an embedding-API-like surface.

    Args:
        dimensions: embedding dimensionality.
        ngram_sizes: which character n-gram lengths to hash.
        model: model name reported in usage records.
    """

    def __init__(
        self,
        dimensions: int = 256,
        ngram_sizes: tuple[int, ...] = (3, 4),
        model: str = DEFAULT_EMBEDDING_MODEL,
    ) -> None:
        if dimensions <= 0:
            raise ConfigurationError("dimensions must be positive")
        if not ngram_sizes:
            raise ConfigurationError("ngram_sizes must not be empty")
        self.dimensions = dimensions
        self.ngram_sizes = tuple(ngram_sizes)
        self.model = model
        self.tokenizer = SimpleTokenizer()
        self.usage = Usage()
        # Corpora repeat n-grams heavily, and an md5 per occurrence is the
        # embedding hot path's dominant cost; memoising n-gram -> bucket
        # makes batch embedding scale with *distinct* n-grams.  Bounded so a
        # pathological corpus cannot grow it without limit.
        self._bucket_cache: dict[str, int] = {}

    _BUCKET_CACHE_CAP = 1_000_000

    def _bucket_indices(self, text: str) -> list[int]:
        """Bucket index of every n-gram occurrence in ``text``."""
        normalised = " ".join(text.lower().split())
        padded = f" {normalised} "
        cache = self._bucket_cache
        if len(cache) > self._BUCKET_CACHE_CAP:
            cache.clear()
        indices: list[int] = []
        for size in self.ngram_sizes:
            if len(padded) < size:
                continue
            for start in range(len(padded) - size + 1):
                ngram = padded[start : start + size]
                bucket = cache.get(ngram)
                if bucket is None:
                    bucket = _bucket(ngram, self.dimensions)
                    cache[ngram] = bucket
                indices.append(bucket)
        return indices

    def _vector_from_indices(self, indices: list[int]) -> np.ndarray:
        if not indices:
            return np.zeros(self.dimensions, dtype=np.float64)
        vector = np.bincount(indices, minlength=self.dimensions).astype(np.float64)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed(self, text: str) -> np.ndarray:
        """Embed a single string into a unit-norm vector."""
        vector = self._vector_from_indices(self._bucket_indices(text))
        self.usage.add(Usage(prompt_tokens=self.tokenizer.count(text), calls=1))
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a batch of strings; rows follow input order.

        One vectorised pass (bucket counts via ``bincount``, one batched
        usage record) — identical vectors to per-text :meth:`embed`, at a
        fraction of its per-call overhead.
        """
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        matrix = np.zeros((len(texts), self.dimensions), dtype=np.float64)
        for row, text in enumerate(texts):
            matrix[row] = self._vector_from_indices(self._bucket_indices(text))
        self.usage.add(
            Usage(
                prompt_tokens=sum(self.tokenizer.count(text) for text in texts),
                calls=len(texts),
            )
        )
        return matrix

    @staticmethod
    def l2_distance(first: np.ndarray, second: np.ndarray) -> float:
        """Euclidean distance between two embedding vectors."""
        return float(np.linalg.norm(first - second))

    def nearest_neighbors(self, texts: list[str], k: int) -> dict[int, list[int]]:
        """Indices of the ``k`` nearest neighbors (by L2) of every text.

        Returns a mapping from text index to a list of neighbor indices,
        nearest first, excluding the text itself.
        """
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        matrix = self.embed_batch(texts)
        if len(texts) == 0 or k == 0:
            return {index: [] for index in range(len(texts))}
        # Pairwise squared distances via the Gram matrix.
        squared_norms = np.sum(matrix * matrix, axis=1)
        distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
        np.fill_diagonal(distances, np.inf)
        neighbors: dict[int, list[int]] = {}
        for index in range(len(texts)):
            order = np.argsort(distances[index])
            neighbors[index] = [int(j) for j in order[: min(k, len(texts) - 1)]]
        return neighbors
