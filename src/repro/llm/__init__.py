"""Simulated-LLM substrate.

The paper's case studies call commercial LLM APIs (gpt-3.5-turbo, Claude,
Claude 2, text-embedding-ada-002).  This package provides a drop-in simulated
substrate with the same surface: a text-in / text-out client with per-token
pricing, context-length limits, temperature, a model registry, a response
cache, a usage tracker, a cheap-to-expensive cascade router, and a
deterministic embedding model.  The simulator reproduces the *error structure*
the paper documents (comparison mistakes, drops/hallucinations on long
prompts, low-recall duplicate judgments, formatting variants in imputed
values), which is what all of the paper's techniques operate on.
"""

from repro.llm.base import (
    ChatMessage,
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
    sequential_acomplete_batch,
    sequential_complete_batch,
)
from repro.llm.behaviors import BehaviorConfig
from repro.llm.cache import CachedClient, ResponseCache
from repro.llm.embeddings import HashingEmbedder
from repro.llm.oracle import Oracle
from repro.llm.registry import ModelRegistry, ModelSpec, default_registry
from repro.llm.retry import RetryingClient
from repro.llm.router import CascadeRouter, EnsembleClient
from repro.llm.simulated import SimulatedLLM
from repro.llm.tracker import UsageTracker

__all__ = [
    "BehaviorConfig",
    "CachedClient",
    "CascadeRouter",
    "ChatMessage",
    "EnsembleClient",
    "HashingEmbedder",
    "LLMClient",
    "LLMResponse",
    "ModelRegistry",
    "ModelSpec",
    "Oracle",
    "ResponseCache",
    "RetryingClient",
    "SimulatedLLM",
    "UsageTracker",
    "call_acomplete",
    "call_acomplete_batch",
    "call_complete_batch",
    "default_registry",
    "sequential_acomplete_batch",
    "sequential_complete_batch",
]
