"""Retry wrapper: re-ask when a response fails validation.

Section 3.5 notes that the prevailing quality-control practice is to check an
LLM answer against syntactic constraints and retry the query.  The
:class:`RetryingClient` makes that pattern a composable wrapper: the caller
supplies a validator (usually one of the :mod:`repro.llm.parsing` extractors),
failed responses are retried — optionally at a slightly higher temperature so
a deterministic failure is not simply repeated — and the usage of every
attempt is accumulated so cost accounting stays honest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError, ResponseParseError
from repro.llm.base import (
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
)
from repro.tokenizer.cost import Usage


@dataclass
class RetryStats:
    """Counters describing the retry behaviour of one client."""

    attempts: int = 0
    retries: int = 0
    failures: int = 0


class RetryingClient:
    """LLM client wrapper that retries responses rejected by a validator.

    Args:
        client: the wrapped client.
        validator: callable applied to the response text; it must raise
            :class:`ResponseParseError` (or return False) to reject a
            response.  ``None`` disables validation and makes the wrapper a
            pass-through.
        max_retries: additional attempts after the first one.
        retry_temperature: temperature used for retry attempts, so a
            deterministic temperature-0 failure is not repeated verbatim.
    """

    def __init__(
        self,
        client: LLMClient,
        *,
        validator: Callable[[str], Any] | None = None,
        max_retries: int = 2,
        retry_temperature: float = 0.7,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if retry_temperature < 0:
            raise ConfigurationError("retry_temperature must be non-negative")
        self._client = client
        self.validator = validator
        self.max_retries = max_retries
        self.retry_temperature = retry_temperature
        self.stats = RetryStats()
        # Stats are bumped from the BatchExecutor's worker threads too.
        self._stats_lock = threading.Lock()

    def _accepted(self, text: str) -> bool:
        if self.validator is None:
            return True
        try:
            return self.validator(text) is not False
        except ResponseParseError:
            return False

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Call the wrapped client, retrying while the validator rejects the text.

        The returned response is the first accepted one (or the last attempt if
        none was accepted), with the usage of *all* attempts accumulated onto it
        and retry metadata attached.
        """
        return self._retry_loop(
            prompt, None, model=model, temperature=temperature, max_tokens=max_tokens
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Batch the first attempt, then retry each rejected prompt individually.

        The first attempt for every prompt goes to the inner client as one
        batch (so native batch optimisations like cache dedup apply); only the
        prompts whose response the validator rejects fall back to per-prompt
        retry loops.  Per-prompt usage accumulation, retry metadata, and the
        aggregate stats counters match the sequential path.
        """
        first_attempts = call_complete_batch(
            self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )
        return [
            self._retry_loop(
                prompt, first, model=model, temperature=temperature, max_tokens=max_tokens
            )
            for prompt, first in zip(prompts, first_attempts)
        ]

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native :meth:`complete`: same retry loop, awaited attempts."""
        return await self._aretry_loop(
            prompt, None, model=model, temperature=temperature, max_tokens=max_tokens
        )

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native :meth:`complete_batch`: batched first attempt, awaited retries."""
        first_attempts = await call_acomplete_batch(
            self._client, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )
        return [
            await self._aretry_loop(
                prompt, first, model=model, temperature=temperature, max_tokens=max_tokens
            )
            for prompt, first in zip(prompts, first_attempts)
        ]

    def _retry_loop(
        self,
        prompt: str,
        first_response: LLMResponse | None,
        *,
        model: str | None,
        temperature: float,
        max_tokens: int | None,
    ) -> LLMResponse:
        """Run the attempt loop, optionally reusing an already-made first attempt."""
        accumulated = Usage()
        response: LLMResponse | None = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            with self._stats_lock:
                self.stats.attempts += 1
            if attempt == 0 and first_response is not None:
                response = first_response
            else:
                response = self._client.complete(
                    prompt,
                    model=model,
                    temperature=self._attempt_temperature(attempt, temperature),
                    max_tokens=max_tokens,
                )
            if self._settle_attempt(response, accumulated, attempt):
                break
        assert response is not None  # at least one attempt always runs
        return self._finalize(response, accumulated, attempts)

    async def _aretry_loop(
        self,
        prompt: str,
        first_response: LLMResponse | None,
        *,
        model: str | None,
        temperature: float,
        max_tokens: int | None,
    ) -> LLMResponse:
        """The awaited twin of :meth:`_retry_loop` (same accounting helpers)."""
        accumulated = Usage()
        response: LLMResponse | None = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            with self._stats_lock:
                self.stats.attempts += 1
            if attempt == 0 and first_response is not None:
                response = first_response
            else:
                response = await call_acomplete(
                    self._client,
                    prompt,
                    model=model,
                    temperature=self._attempt_temperature(attempt, temperature),
                    max_tokens=max_tokens,
                )
            if self._settle_attempt(response, accumulated, attempt):
                break
        assert response is not None  # at least one attempt always runs
        return self._finalize(response, accumulated, attempts)

    def _attempt_temperature(self, attempt: int, temperature: float) -> float:
        return temperature if attempt == 0 else max(temperature, self.retry_temperature)

    def _settle_attempt(self, response: LLMResponse, accumulated: Usage, attempt: int) -> bool:
        """Account one attempt (usage, stats, trace); True when it was accepted."""
        accumulated.add(response.usage)
        accepted = self._accepted(response.text)
        self._annotate_trace(response, attempt, accepted)
        if not accepted:
            with self._stats_lock:
                if attempt < self.max_retries:
                    self.stats.retries += 1
                else:
                    self.stats.failures += 1
        return accepted

    @staticmethod
    def _finalize(response: LLMResponse, accumulated: Usage, attempts: int) -> LLMResponse:
        response.usage = accumulated
        response.metadata = {**response.metadata, "attempts": attempts}
        return response

    def _annotate_trace(
        self, response: LLMResponse, attempt: int, accepted: bool
    ) -> None:
        """Stamp the attempt index and validator outcome onto the call's trace.

        Duck-typed: a session-bound client exposes ``tracer`` and stamps
        every response with its trace call id; any other wrapped client
        (a bare simulator, a plain cache) makes this a no-op, so the retry
        wrapper keeps working outside sessions without importing the trace
        layer.
        """
        tracer = getattr(self._client, "tracer", None)
        if tracer is None:
            return
        call_id = response.metadata.get("trace_call_id")
        if call_id is None:
            return
        tracer.annotate(call_id, attempt=attempt, parse_ok=accepted)
