"""Routing calls across multiple LLMs.

Two routing policies from the paper's agenda:

* :class:`CascadeRouter` — ask the cheapest model first and only escalate to a
  more expensive model when the cheap answer's confidence is below a
  threshold (Section 3.4 "leveraging LLM and non-LLM approaches"; the same
  pattern FrugalGPT applies across API tiers).
* :class:`EnsembleClient` — ask several models the same unit task and expose
  all responses so a quality-control aggregator (majority vote, Dawid–Skene)
  can combine them (Section 3.5).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.llm.base import (
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
    sequential_acomplete_batch,
    sequential_complete_batch,
)
from repro.tokenizer.cost import Usage


@dataclass
class CascadeTier:
    """One tier of a cascade: a model name and the client that serves it."""

    model: str
    client: LLMClient


class CascadeRouter:
    """Cheap-to-expensive cascade with confidence-based escalation.

    The router asks tiers in order.  The first response whose confidence is at
    least ``confidence_threshold`` is returned; if none qualifies the final
    tier's response is returned.  The usage of every call made along the way is
    accumulated onto the returned response, so trackers see the true total
    cost of the cascade.
    """

    def __init__(self, tiers: list[CascadeTier], *, confidence_threshold: float = 0.8) -> None:
        if not tiers:
            raise ConfigurationError("a cascade needs at least one tier")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be within [0, 1]")
        self.tiers = list(tiers)
        self.confidence_threshold = confidence_threshold
        self.escalations = 0
        self._escalation_lock = threading.Lock()

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Run the cascade for one prompt.

        The ``model`` argument is ignored — the cascade's tiers decide which
        models are called — but kept so the router satisfies the
        :class:`LLMClient` protocol.
        """
        del model
        accumulated = Usage()
        response: LLMResponse | None = None
        used_tiers: list[str] = []
        for position, tier in enumerate(self.tiers):
            response = tier.client.complete(
                prompt, model=tier.model, temperature=temperature, max_tokens=max_tokens
            )
            accumulated.add(response.usage)
            used_tiers.append(tier.model)
            if response.confidence >= self.confidence_threshold:
                break
            if position < len(self.tiers) - 1:
                with self._escalation_lock:
                    self.escalations += 1
        assert response is not None  # guaranteed by the non-empty tier check
        response.usage = accumulated
        response.metadata = {**response.metadata, "cascade_tiers": used_tiers}
        return response

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Run the cascade for a whole batch, escalating tier by tier.

        All prompts are asked at the cheapest tier first (as one inner batch);
        only the prompts whose answer fell below the confidence threshold
        escalate to the next tier's batch.  Per-prompt results — accumulated
        usage, used-tier metadata, escalation counts — match the sequential
        cascade exactly.
        """
        del model
        results: list[LLMResponse | None] = [None] * len(prompts)
        accumulated = [Usage() for _ in prompts]
        used_tiers: list[list[str]] = [[] for _ in prompts]
        active = list(range(len(prompts)))
        for position, tier in enumerate(self.tiers):
            if not active:
                break
            responses = call_complete_batch(
                tier.client,
                [prompts[index] for index in active],
                model=tier.model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
            still_unsettled: list[int] = []
            for index, response in zip(active, responses):
                accumulated[index].add(response.usage)
                used_tiers[index].append(tier.model)
                results[index] = response
                if response.confidence >= self.confidence_threshold:
                    continue
                if position < len(self.tiers) - 1:
                    with self._escalation_lock:
                        self.escalations += 1
                    still_unsettled.append(index)
            active = still_unsettled
        final: list[LLMResponse] = []
        for index, response in enumerate(results):
            assert response is not None  # every prompt settles by the last tier
            response.usage = accumulated[index]
            response.metadata = {**response.metadata, "cascade_tiers": used_tiers[index]}
            final.append(response)
        return final

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native cascade: tiers awaited in order, same escalation rule."""
        del model
        accumulated = Usage()
        response: LLMResponse | None = None
        used_tiers: list[str] = []
        for position, tier in enumerate(self.tiers):
            response = await call_acomplete(
                tier.client, prompt, model=tier.model, temperature=temperature, max_tokens=max_tokens
            )
            accumulated.add(response.usage)
            used_tiers.append(tier.model)
            if response.confidence >= self.confidence_threshold:
                break
            if position < len(self.tiers) - 1:
                with self._escalation_lock:
                    self.escalations += 1
        assert response is not None  # guaranteed by the non-empty tier check
        response.usage = accumulated
        response.metadata = {**response.metadata, "cascade_tiers": used_tiers}
        return response

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native tier-batched cascade, element-wise equal to the sync one."""
        del model
        results: list[LLMResponse | None] = [None] * len(prompts)
        accumulated = [Usage() for _ in prompts]
        used_tiers: list[list[str]] = [[] for _ in prompts]
        active = list(range(len(prompts)))
        for position, tier in enumerate(self.tiers):
            if not active:
                break
            responses = await call_acomplete_batch(
                tier.client,
                [prompts[index] for index in active],
                model=tier.model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
            still_unsettled: list[int] = []
            for index, response in zip(active, responses):
                accumulated[index].add(response.usage)
                used_tiers[index].append(tier.model)
                results[index] = response
                if response.confidence >= self.confidence_threshold:
                    continue
                if position < len(self.tiers) - 1:
                    with self._escalation_lock:
                        self.escalations += 1
                    still_unsettled.append(index)
            active = still_unsettled
        final: list[LLMResponse] = []
        for index, response in enumerate(results):
            assert response is not None  # every prompt settles by the last tier
            response.usage = accumulated[index]
            response.metadata = {**response.metadata, "cascade_tiers": used_tiers[index]}
            final.append(response)
        return final


@dataclass
class EnsembleResponse:
    """All responses from an ensemble call, plus their combined usage."""

    responses: list[LLMResponse]
    usage: Usage = field(default_factory=Usage)

    @property
    def texts(self) -> list[str]:
        return [response.text for response in self.responses]


class EnsembleClient:
    """Fan one prompt out to several (model, client) pairs.

    Unlike the cascade, the ensemble always asks every member; aggregation is
    the caller's job (see :mod:`repro.quality.voting` and
    :mod:`repro.quality.dawid_skene`).
    """

    def __init__(self, members: list[CascadeTier]) -> None:
        if not members:
            raise ConfigurationError("an ensemble needs at least one member")
        self.members = list(members)

    def complete_all(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> EnsembleResponse:
        """Ask every member and return all of their responses."""
        responses = [
            member.client.complete(
                prompt, model=member.model, temperature=temperature, max_tokens=max_tokens
            )
            for member in self.members
        ]
        usage = Usage()
        for response in responses:
            usage.add(response.usage)
        return EnsembleResponse(responses=responses, usage=usage)

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """LLMClient-compatible call returning the first member's response.

        Provided so an ensemble can stand in where a single client is
        expected; callers that want every response use :meth:`complete_all`.
        """
        del model
        return self.complete_all(prompt, temperature=temperature, max_tokens=max_tokens).responses[0]

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """LLMClient-compatible batch call: the first member answers each prompt."""
        return sequential_complete_batch(
            self, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )

    async def acomplete_all(
        self,
        prompt: str,
        *,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> EnsembleResponse:
        """Async-native :meth:`complete_all`: members are awaited concurrently.

        Unlike the cascade, the ensemble always asks every member, so their
        calls are independent and can overlap in wall-clock time; the response
        list still comes back in member order, so at temperature 0 the result
        is element-wise identical to the sequential path.
        """
        responses = list(
            await asyncio.gather(
                *(
                    call_acomplete(
                        member.client,
                        prompt,
                        model=member.model,
                        temperature=temperature,
                        max_tokens=max_tokens,
                    )
                    for member in self.members
                )
            )
        )
        usage = Usage()
        for response in responses:
            usage.add(response.usage)
        return EnsembleResponse(responses=responses, usage=usage)

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Async-native :meth:`complete`: the first member's awaited response."""
        del model
        ensemble = await self.acomplete_all(
            prompt, temperature=temperature, max_tokens=max_tokens
        )
        return ensemble.responses[0]

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Async-native batch: the first member answers each prompt, in order."""
        return await sequential_acomplete_batch(
            self, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )
