"""Extracting structured answers from free-text LLM responses.

The paper (Section 4, "Mitigating Prompt Brittleness") points out that turning
an LLM's free-text response back into a programmatic answer is itself error
prone: the model may preface its answer, bury it mid-sentence, or contradict
itself.  These helpers centralise the extraction logic so operators never
regex over raw responses themselves, and every helper raises
:class:`ResponseParseError` instead of silently guessing when no answer can be
recovered.
"""

from __future__ import annotations

import json
import re
from typing import Sequence

from repro.exceptions import ResponseParseError, SpecError

_YES_RE = re.compile(r"\byes\b", re.IGNORECASE)
_NO_RE = re.compile(r"\bno\b", re.IGNORECASE)
_INT_RE = re.compile(r"-?\d+")
_NUMBERED_ITEM_RE = re.compile(r"^\s*(?:\d+[.)]\s*|[-*]\s*)(?P<text>.+?)\s*$")


def extract_yes_no(text: str) -> bool:
    """Extract a boolean from a Yes/No style response.

    The first occurrence wins, which mirrors the paper's prompt design of
    "Start your response with Yes or No" and avoids the chain-of-thought trap
    where the model ends with the opposite token it started with.
    """
    yes = _YES_RE.search(text)
    no = _NO_RE.search(text)
    if yes is None and no is None:
        raise ResponseParseError("no Yes/No answer found in response", text)
    if yes is None:
        return False
    if no is None:
        return True
    return yes.start() < no.start()


def extract_choice(text: str, options: Sequence[str]) -> str:
    """Extract the first matching option label (e.g. ``"A"`` / ``"B"``)."""
    if not options:
        raise SpecError("options must not be empty")
    pattern = re.compile(
        r"\b(" + "|".join(re.escape(option) for option in options) + r")\b"
    )
    match = pattern.search(text)
    if match is None:
        raise ResponseParseError(
            f"none of the options {list(options)} found in response", text
        )
    return match.group(1)


def extract_integer(text: str, *, minimum: int | None = None, maximum: int | None = None) -> int:
    """Extract the first integer in the response, optionally clamped to a range."""
    match = _INT_RE.search(text)
    if match is None:
        raise ResponseParseError("no integer found in response", text)
    value = int(match.group(0))
    if minimum is not None and value < minimum:
        value = minimum
    if maximum is not None and value > maximum:
        value = maximum
    return value


def extract_ratings(text: str, expected: int) -> list[int]:
    """Extract ``expected`` integer ratings from a (possibly multi-line) response.

    Used by the batched rating strategy where several items are rated in one
    prompt; the response carries one rating per line.  Raises when fewer than
    ``expected`` integers can be found.
    """
    values = [int(match) for match in _INT_RE.findall(text)]
    # Multi-line responses often number their lines ("1. 5"); when exactly twice
    # the expected count is found, assume alternating index/rating pairs.
    if len(values) == expected * 2:
        values = values[1::2]
    if len(values) < expected:
        raise ResponseParseError(
            f"expected {expected} ratings but found {len(values)}", text
        )
    return values[:expected]


def extract_list(text: str) -> list[str]:
    """Extract a numbered or bulleted list of items from the response.

    Lines that do not look like list entries (greetings, explanations) are
    skipped, matching how one would post-process a real model's "Sure! Here is
    the sorted list:" preamble.
    """
    items: list[str] = []
    for line in text.splitlines():
        match = _NUMBERED_ITEM_RE.match(line)
        if match:
            items.append(match.group("text").strip())
    if not items:
        raise ResponseParseError("no list items found in response", text)
    return items


def extract_groups(text: str) -> list[list[int]]:
    """Extract groups of item indices, one comma-separated group per line."""
    groups: list[list[int]] = []
    for line in text.splitlines():
        indices = [int(match) for match in _INT_RE.findall(line)]
        if indices:
            groups.append(indices)
    if not groups:
        raise ResponseParseError("no index groups found in response", text)
    return groups


def extract_value(text: str) -> str:
    """Extract a short free-form value (e.g. an imputed attribute).

    Uses the last non-empty line, stripped of common prefixes such as
    ``"Answer:"`` and surrounding quotes.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ResponseParseError("empty response", text)
    value = lines[-1]
    for prefix in ("answer:", "value:", "the value is", "prediction:"):
        if value.lower().startswith(prefix):
            value = value[len(prefix) :].strip()
    return value.strip().strip('"').strip("'")


def extract_json(text: str) -> dict | list:
    """Extract the first JSON object or array embedded in the response."""
    decoder = json.JSONDecoder()
    for start, char in enumerate(text):
        if char in "{[":
            try:
                value, _ = decoder.raw_decode(text[start:])
            except json.JSONDecodeError:
                continue
            return value
    raise ResponseParseError("no JSON value found in response", text)
