"""Model registry: names, context lengths, prices, and quality tiers.

The registry plays the role of the provider catalogue: operators ask it which
models exist, what their context windows are, and what they cost.  The default
registry contains simulated analogues of the models used in the paper plus a
cheap small model and an expensive high-quality model so that the cascade
router (Section 3.4 / FrugalGPT-style) has a meaningful cost spread to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, UnknownModelError
from repro.tokenizer.cost import CostModel, PriceTable


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a model.

    Attributes:
        name: model identifier used in API calls.
        context_length: maximum prompt + completion tokens.
        prices: per-million-token price table.
        quality: relative answer quality in ``[0, 1]``; the simulator scales
            its error rates by this value so cheaper models are noisier.
        kind: ``"chat"`` or ``"embedding"``.
    """

    name: str
    context_length: int
    prices: PriceTable
    quality: float = 0.8
    kind: str = "chat"

    def __post_init__(self) -> None:
        if self.context_length <= 0:
            raise ConfigurationError("context_length must be positive")
        if not 0.0 <= self.quality <= 1.0:
            raise ConfigurationError("quality must be within [0, 1]")
        if self.kind not in {"chat", "embedding"}:
            raise ConfigurationError(f"unsupported model kind: {self.kind!r}")


class ModelRegistry:
    """Mutable catalogue of :class:`ModelSpec` entries."""

    def __init__(self, specs: list[ModelSpec] | None = None) -> None:
        self._specs: dict[str, ModelSpec] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: ModelSpec) -> None:
        """Add or replace a model spec."""
        self._specs[spec.name] = spec

    def get(self, name: str) -> ModelSpec:
        """Return the spec for ``name`` or raise :class:`UnknownModelError`."""
        try:
            return self._specs[name]
        except KeyError as exc:
            raise UnknownModelError(
                f"unknown model {name!r}; known models: {', '.join(sorted(self._specs))}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self, kind: str | None = None) -> list[str]:
        """Return registered model names, optionally restricted to one kind."""
        return sorted(
            name for name, spec in self._specs.items() if kind is None or spec.kind == kind
        )

    def chat_models_by_cost(self) -> list[ModelSpec]:
        """Chat models sorted from cheapest to most expensive prompt price."""
        chat = [spec for spec in self._specs.values() if spec.kind == "chat"]
        return sorted(chat, key=lambda spec: spec.prices.prompt_price_per_million)

    def cost_model(self) -> CostModel:
        """Build a :class:`CostModel` covering every registered model."""
        return CostModel({name: spec.prices for name, spec in self._specs.items()})


def default_registry() -> ModelRegistry:
    """Registry with simulated analogues of the paper's models.

    Prices follow the mid-2023 public price lists for the corresponding real
    models (per million tokens), which is what the paper's token counts were
    priced against; exact values only matter relative to one another.
    """
    return ModelRegistry(
        [
            ModelSpec(
                name="sim-gpt-3.5-turbo",
                context_length=4_096,
                prices=PriceTable(1.5, 2.0),
                quality=0.80,
            ),
            ModelSpec(
                name="sim-gpt-4",
                context_length=8_192,
                prices=PriceTable(30.0, 60.0),
                quality=0.95,
            ),
            ModelSpec(
                name="sim-claude",
                context_length=9_000,
                prices=PriceTable(11.0, 32.0),
                quality=0.82,
            ),
            ModelSpec(
                name="sim-claude-2",
                context_length=100_000,
                prices=PriceTable(11.0, 32.0),
                quality=0.85,
            ),
            ModelSpec(
                name="sim-small",
                context_length=2_048,
                prices=PriceTable(0.2, 0.4),
                quality=0.55,
            ),
            ModelSpec(
                name="sim-embedding-ada-002",
                context_length=8_191,
                prices=PriceTable(0.1, 0.0),
                quality=0.7,
                kind="embedding",
            ),
        ]
    )
