"""Tenant-isolated views over one shared :class:`~repro.store.Store`.

The multi-tenant service keeps every tenant in one database file — one WAL,
one LRU budget, one operational artifact — but tenants must never observe
each other's state: a cache hit on another tenant's paid-for response is a
cross-tenant information leak, and a checkpoint restore across tenants would
hand one tenant results priced against another's budget.

:class:`StoreNamespace` is the isolation mechanism: a thin view exposing the
exact surface sessions, engines, and tracers consume (``response_cache``,
profile save/apply, checkpoint save/load, trace flush, job rows), with the
namespace prefix mixed into every key before it reaches the shared tables:

* cache keys — the prefix is hashed into the SHA-256 key digest
  (:func:`repro.store.response_cache._key`), so entries are unreachable
  from any other namespace by construction;
* profile names and checkpoint fingerprints — prefixed with ``<ns>::``
  (raw fingerprints are bare hex, so a prefixed key can never collide with
  an unprefixed one);
* trace origins — prefixed the same way, so a tenant's usage summary can
  aggregate exactly its own rows.

A namespaced view is what :class:`~repro.service.tenants.TenantRegistry`
attaches to each tenant's :class:`~repro.core.session.PromptSession`; the
session neither knows nor cares that its "store" is a view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.exceptions import StoreError
from repro.store.jobs import JobRecord
from repro.store.profile import DEFAULT_DECAY, WorkloadProfile
from repro.store.response_cache import PersistentResponseCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.physical import RuntimeStats
    from repro.core.spec import TaskSpec
    from repro.obs.spans import Span
    from repro.operators.base import OperatorResult
    from repro.store.store import Store
    from repro.trace import TraceRecord


class StoreNamespace:
    """One namespace's view of a shared store (see module docstring).

    Args:
        store: the underlying shared store.
        prefix: non-empty namespace id (the service uses the tenant id).
    """

    def __init__(self, store: "Store", prefix: str) -> None:
        if not prefix:
            raise StoreError("a store namespace needs a non-empty prefix")
        if "::" in prefix:
            raise StoreError("a store namespace prefix must not contain '::'")
        self.store = store
        self.prefix = prefix

    def _scoped(self, key: str) -> str:
        return f"{self.prefix}::{key}"

    @property
    def path(self) -> str:
        return self.store.path

    @property
    def db(self):
        return self.store.db

    # -- the session/engine surface ----------------------------------------------

    def response_cache(self) -> PersistentResponseCache:
        """A cache view that can only see this namespace's entries."""
        return self.store.response_cache(namespace=self.prefix)

    def save_profile(
        self,
        stats: "RuntimeStats",
        *,
        name: str = "default",
        merge: bool = False,
        decay: float = DEFAULT_DECAY,
    ) -> None:
        self.store.save_profile(
            stats, name=self._scoped(name), merge=merge, decay=decay
        )

    def load_profile(self, *, name: str = "default") -> WorkloadProfile | None:
        return self.store.load_profile(name=self._scoped(name))

    def apply_profile(
        self,
        stats: "RuntimeStats",
        *,
        name: str = "default",
        decay: float = DEFAULT_DECAY,
    ) -> bool:
        return self.store.apply_profile(stats, name=self._scoped(name), decay=decay)

    def save_checkpoint(
        self, fingerprint: str, spec: "TaskSpec", result: "OperatorResult"
    ) -> None:
        self.store.save_checkpoint(self._scoped(fingerprint), spec, result)

    def load_checkpoint(self, fingerprint: str) -> "OperatorResult | None":
        return self.store.load_checkpoint(self._scoped(fingerprint))

    def embedding_cache(self):
        """The shared embedding cache — deliberately *not* namespaced.

        A stored vector is a pure function of ``(text, embedder config)``
        computed locally at zero dollars: a cross-tenant hit reuses
        arithmetic, not another tenant's paid-for content, and the cache
        exposes no way to enumerate entries — so sharing it is safe and
        makes the whole deployment embed each distinct text once.
        """
        return self.store.embedding_cache()

    def save_vector_index(self, name: str, index) -> None:
        self.store.save_vector_index(self._scoped(name), index)

    def load_vector_index(self, name: str):
        return self.store.load_vector_index(self._scoped(name))

    def delete_vector_index(self, name: str) -> None:
        self.store.delete_vector_index(self._scoped(name))

    def save_trace_records(self, records: "list[TraceRecord]", *, origin: str) -> None:
        self.store.save_trace_records(records, origin=self._scoped(origin))

    def trace_records(self, *, origin: str | None = None) -> "list[TraceRecord]":
        return self.store.trace_records(
            origin=None if origin is None else self._scoped(origin)
        )

    def save_spans(self, spans: "list[Span]", *, origin: str) -> None:
        self.store.save_spans(spans, origin=self._scoped(origin))

    def load_spans(self, *, origin: str | None = None) -> "list[Span]":
        return self.store.load_spans(
            origin=None if origin is None else self._scoped(origin)
        )

    # -- jobs ---------------------------------------------------------------------
    # Job rows are already tenant-scoped by their ``tenant`` column; the view
    # forwards them so a namespaced store is a complete drop-in.

    def save_job(self, job: JobRecord) -> None:
        self.store.save_job(job)

    def load_job(self, job_id: str) -> JobRecord | None:
        return self.store.load_job(job_id)

    def list_jobs(
        self, *, tenant: str | None = None, status: str | None = None
    ) -> list[JobRecord]:
        return self.store.list_jobs(tenant=tenant, status=status)

    def snapshot(self) -> dict[str, Any]:
        return {"namespace": self.prefix, **self.store.snapshot()}


__all__ = ["StoreNamespace"]
