"""The SQLite substrate of the durable store.

One :class:`StoreDB` wraps one database file holding every persistent
artifact of the library — cached LLM responses, workload profiles, and
pipeline checkpoints — so a single ``store.db`` path is the whole durable
state of a deployment.  SQLite is the right substrate here: it ships with
CPython (no new dependency), WAL mode gives concurrent readers alongside a
single writer, and a ``busy_timeout`` makes multi-process access degrade to
short waits instead of errors.

Robustness rules (exercised by ``tests/store/test_db_edge_cases.py``):

* **Empty file** — a zero-byte file is a valid "fresh" SQLite database; it
  is initialised in place.
* **Corrupt file** — garbage that SQLite refuses to open is moved aside to
  ``<path>.corrupt-N`` (never deleted: it may be a user's mis-pathed file)
  and a fresh database is created at the original path.
* **Foreign database** — a *valid* SQLite file that carries someone else's
  schema (wrong ``application_id``) raises :class:`StoreError` instead of
  being clobbered; unlike a corrupt blob, it is clearly live data.
* **Schema versions** — a database written by a *newer* library raises
  :class:`StoreError` (we cannot know how to read it); an *older* schema is
  rebuilt from scratch, which is safe because everything in the store is
  derived data (caches, observations, checkpoints) that a re-run recreates.

All access goes through :meth:`StoreDB.execute` under one re-entrant lock,
so a single :class:`StoreDB` can be shared by every thread of a concurrent
pipeline; cross-process writers are serialised by SQLite itself (WAL +
immediate transactions + busy timeout).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Iterable

from repro.exceptions import StoreError

#: "repro declarative store" marker stamped into the SQLite application_id
#: pragma so a foreign database file is recognised before it is touched.
APPLICATION_ID = 0x5250_5253  # spells "RPRS"

#: Bump whenever the table layout changes.  Older stores are rebuilt (their
#: contents are all derived data); newer stores are refused.
SCHEMA_VERSION = 5

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cache (
    key TEXT PRIMARY KEY,
    model TEXT NOT NULL,
    prompt TEXT NOT NULL,
    payload TEXT NOT NULL,
    size INTEGER NOT NULL,
    access_seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS cache_access ON cache (access_seq);
CREATE TABLE IF NOT EXISTS profiles (
    name TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    updated_seq INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    fingerprint TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    spec_type TEXT NOT NULL,
    strategy TEXT NOT NULL,
    calls INTEGER NOT NULL,
    cost REAL NOT NULL,
    access_seq INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS traces (
    trace_id TEXT PRIMARY KEY,
    origin TEXT NOT NULL,
    call_id INTEGER NOT NULL,
    step TEXT,
    operator TEXT,
    model TEXT NOT NULL,
    temperature REAL NOT NULL,
    prompt TEXT NOT NULL,
    response TEXT,
    prompt_tokens INTEGER NOT NULL,
    completion_tokens INTEGER NOT NULL,
    cost REAL NOT NULL,
    duration_ms REAL NOT NULL,
    cache_hit INTEGER NOT NULL,
    attempt INTEGER NOT NULL,
    parse_ok INTEGER,
    error TEXT,
    finish_reason TEXT,
    confidence REAL,
    span_id INTEGER
);
CREATE INDEX IF NOT EXISTS traces_origin ON traces (origin, call_id);
CREATE TABLE IF NOT EXISTS spans (
    row_id TEXT PRIMARY KEY,
    origin TEXT NOT NULL,
    span_id INTEGER NOT NULL,
    parent_id INTEGER,
    kind TEXT NOT NULL,
    label TEXT NOT NULL,
    start_time REAL NOT NULL,
    end_time REAL,
    status TEXT NOT NULL,
    attributes TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS spans_origin ON spans (origin, span_id);
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    tenant TEXT NOT NULL,
    status TEXT NOT NULL,
    pipeline TEXT NOT NULL,
    quote TEXT,
    report TEXT,
    error TEXT,
    resumable INTEGER NOT NULL DEFAULT 0,
    submitted_seq INTEGER NOT NULL,
    updated_seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs (tenant, submitted_seq);
CREATE TABLE IF NOT EXISTS embeddings (
    fingerprint TEXT PRIMARY KEY,
    model TEXT NOT NULL,
    dimensions INTEGER NOT NULL,
    vector BLOB NOT NULL,
    access_seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS embeddings_access ON embeddings (access_seq);
CREATE TABLE IF NOT EXISTS vector_indexes (
    name TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    dimensions INTEGER NOT NULL,
    size INTEGER NOT NULL,
    payload BLOB NOT NULL,
    updated_seq INTEGER NOT NULL
);
"""

#: Tables dropped when an older schema is rebuilt.
_TABLES = (
    "meta",
    "cache",
    "profiles",
    "checkpoints",
    "traces",
    "spans",
    "jobs",
    "embeddings",
    "vector_indexes",
)


class StoreDB:
    """A thread-safe handle on one store database file.

    Args:
        path: database file path; ``":memory:"`` gives an ephemeral store
            (useful in tests — it behaves identically minus durability).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._lock = threading.RLock()
        self._conn = self._open()

    # -- connection management ---------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        # autocommit mode: transactions are explicit (BEGIN IMMEDIATE), so a
        # multi-statement update is atomic and takes the write lock up front.
        conn = sqlite3.connect(self.path, check_same_thread=False, isolation_level=None)
        conn.execute("PRAGMA busy_timeout = 10000")
        return conn

    def _open(self) -> sqlite3.Connection:
        conn: sqlite3.Connection | None = None
        try:
            conn = self._connect()
            application_id = conn.execute("PRAGMA application_id").fetchone()[0]
        except sqlite3.DatabaseError:
            # Not a SQLite file at all: move the blob aside (never delete —
            # it might be a mis-pathed user file) and start fresh.  The
            # failed connection must be closed first — renaming a file a
            # handle is still open on fails on Windows.
            if conn is not None:
                conn.close()
            self._move_corrupt_aside()
            conn = self._connect()
            application_id = 0
        if application_id not in (0, APPLICATION_ID):
            conn.close()
            raise StoreError(
                f"{self.path!r} is a SQLite database belonging to another "
                f"application (application_id {application_id:#x}); refusing to "
                "overwrite it — point the store at its own file"
            )
        if application_id == 0 and self._has_foreign_tables(conn):
            conn.close()
            raise StoreError(
                f"{self.path!r} is a SQLite database with an unrecognised "
                "schema; refusing to overwrite it — point the store at its "
                "own file"
            )
        version = self._read_schema_version(conn)
        if version is not None and version > SCHEMA_VERSION:
            conn.close()
            raise StoreError(
                f"store {self.path!r} uses schema version {version}, newer than "
                f"this library's {SCHEMA_VERSION}; upgrade the library (the "
                "store is not forward-compatible)"
            )
        if version is not None and version < SCHEMA_VERSION:
            # Everything in the store is derived data; a layout change simply
            # invalidates it.  Rebuild rather than attempt a migration.
            for table in _TABLES:
                conn.execute(f"DROP TABLE IF EXISTS {table}")
        self._initialize(conn)
        return conn

    def _move_corrupt_aside(self) -> None:
        suffix = 0
        while True:
            candidate = f"{self.path}.corrupt-{suffix}"
            if not os.path.exists(candidate):
                break
            suffix += 1
        os.replace(self.path, candidate)

    @staticmethod
    def _has_foreign_tables(conn: sqlite3.Connection) -> bool:
        names = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        return bool(names - set(_TABLES))

    @staticmethod
    def _read_schema_version(conn: sqlite3.Connection) -> int | None:
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "meta" not in tables:
            return None
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else None

    def _initialize(self, conn: sqlite3.Connection) -> None:
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        conn.execute("BEGIN IMMEDIATE")
        try:
            # executescript() would implicitly COMMIT the open transaction,
            # so the schema runs statement by statement.
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    conn.execute(statement)
            conn.execute(f"PRAGMA application_id = {APPLICATION_ID}")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    # -- access -------------------------------------------------------------------

    def execute(self, sql: str, parameters: Iterable[Any] = ()) -> list[tuple]:
        """Run one statement under the store lock and return its rows."""
        with self._lock:
            return self._conn.execute(sql, tuple(parameters)).fetchall()

    def transaction(self, statements: Iterable[tuple[str, Iterable[Any]]]) -> None:
        """Run several statements atomically (one immediate transaction)."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for sql, parameters in statements:
                    self._conn.execute(sql, tuple(parameters))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def next_seq(self) -> int:
        """A monotonically increasing ordinal (LRU ordering without clocks).

        Sequence numbers order cache/checkpoint recency deterministically —
        wall-clock timestamps would make eviction order depend on timer
        resolution and clock adjustments.  The counter lives in ``meta`` so
        it survives reopening and is shared across processes.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'seq'"
                ).fetchone()
                value = int(row[0]) + 1 if row is not None else 1
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('seq', ?)",
                    (str(value),),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            return value

    @property
    def lock(self) -> threading.RLock:
        """The store-wide lock (for callers composing multi-step operations)."""
        return self._lock

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "StoreDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
