"""Workload profiles: durable :class:`~repro.core.physical.RuntimeStats`.

The adaptive planner gets sharper the more it has observed — filter
selectivities, dedup survivor ratios, blocked-pair rates, per-strategy call
ratios — but those observations historically died with the process.  A
:class:`WorkloadProfile` is the serialised form of a session's
``RuntimeStats``: saved after a run, loaded into the next session's fresh
stats store, so the *first* quote of a warm-started session is priced from
the previous run's observations.

Loading merges with **decay weighting**: the saved counts are scaled by
``decay`` (default 0.5) before being added, so a profile carried across
many sessions fades geometrically — each generation's observations count
half as much as the next, and a drifted workload re-converges on fresh
evidence instead of being anchored to stale history.  Because the scaling
multiplies numerator and denominator alike, the *ratios* a loaded profile
reports are exactly the ratios that were saved: a cold session that loads a
profile quotes identically to the warm session that wrote it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exceptions import StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.physical import RuntimeStats

#: Bump when the exported state layout changes.
PROFILE_VERSION = 1

#: Default weight applied to saved observations when merging into a fresh
#: session, chosen so two generations of history weigh less than one fresh
#: run of comparable size.
DEFAULT_DECAY = 0.5


@dataclass
class WorkloadProfile:
    """A saved snapshot of one session's observed execution statistics."""

    state: dict[str, Any] = field(default_factory=dict)
    version: int = PROFILE_VERSION

    @classmethod
    def from_stats(cls, stats: "RuntimeStats") -> "WorkloadProfile":
        """Snapshot a live stats store."""
        return cls(state=stats.export_state())

    def apply_to(self, stats: "RuntimeStats", *, decay: float = DEFAULT_DECAY) -> None:
        """Merge this profile into ``stats``, scaling saved counts by ``decay``."""
        if not 0.0 < decay <= 1.0:
            raise StoreError("profile decay must be in (0, 1]")
        stats.merge_state(self.state, weight=decay)

    def to_json(self) -> str:
        return json.dumps(
            {"version": self.version, "state": self.state}, sort_keys=True
        )

    @classmethod
    def from_json(cls, payload: str) -> "WorkloadProfile":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed workload profile payload: {exc}") from exc
        version = int(data.get("version", 0))
        if version > PROFILE_VERSION:
            raise StoreError(
                f"workload profile version {version} is newer than this "
                f"library's {PROFILE_VERSION}"
            )
        return cls(state=dict(data.get("state", {})), version=version)
