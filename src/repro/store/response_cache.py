"""A durable, LRU-evicting response cache backed by the store database.

:class:`PersistentResponseCache` is a drop-in replacement for the in-memory
:class:`~repro.llm.cache.ResponseCache` behind
:class:`~repro.llm.cache.CachedClient`: it implements the same
``get``/``put``/``__len__``/``clear`` surface and the same hit/miss
accounting, but entries live in SQLite, so identical temperature-0 prompts
are answered for free *across process lifetimes* — the cheapest possible way
to serve heavy repeat traffic.

Differences from the in-memory cache, by design:

* Keys are SHA-256 of ``(model, prompt)`` rather than the raw strings, so
  arbitrarily long prompts index a fixed-width primary key.
* Eviction is LRU by both **entry count** (``max_entries``) and **payload
  bytes** (``max_bytes``): recency is a monotonic sequence number from the
  store (deterministic — no wall clocks), and a ``get`` refreshes it.
* ``stats`` counts this instance's hits/misses (matching the in-memory
  semantics of a fresh cache); the entries themselves are shared with every
  other instance on the same file.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.llm.base import LLMResponse
from repro.llm.cache import CacheStats
from repro.store.db import StoreDB
from repro.tokenizer.cost import Usage


def _key(model: str, prompt: str, namespace: str = "") -> str:
    digest = hashlib.sha256()
    if namespace:
        # A namespaced key can never collide with a default-namespace key
        # for any (model, prompt): the prefix is length-delimited.
        digest.update(f"ns:{len(namespace)}:{namespace}".encode("utf-8"))
        digest.update(b"\x00")
    digest.update(model.encode("utf-8", "surrogatepass"))
    digest.update(b"\x00")
    digest.update(prompt.encode("utf-8", "surrogatepass"))
    return digest.hexdigest()


def encode_response(response: LLMResponse) -> str:
    """Serialise a response to the JSON payload stored on disk."""
    return json.dumps(
        {
            "text": response.text,
            "model": response.model,
            "finish_reason": response.finish_reason,
            "confidence": response.confidence,
            "metadata": response.metadata,
            "usage": {
                "prompt_tokens": response.usage.prompt_tokens,
                "completion_tokens": response.usage.completion_tokens,
                "calls": response.usage.calls,
            },
        },
        sort_keys=True,
        default=str,  # non-JSON metadata values degrade to strings, not errors
    )


def decode_response(payload: str) -> LLMResponse:
    """Rebuild a response from its stored JSON payload."""
    data = json.loads(payload)
    usage = data.get("usage", {})
    return LLMResponse(
        text=data["text"],
        model=data["model"],
        usage=Usage(
            prompt_tokens=int(usage.get("prompt_tokens", 0)),
            completion_tokens=int(usage.get("completion_tokens", 0)),
            calls=int(usage.get("calls", 0)),
        ),
        finish_reason=data.get("finish_reason", "stop"),
        confidence=float(data.get("confidence", 1.0)),
        metadata=dict(data.get("metadata", {})),
    )


class PersistentResponseCache:
    """Durable LRU cache of LLM responses keyed by (model, prompt).

    Args:
        db: the store database entries live in.
        max_entries: entry-count cap; least-recently-used rows are evicted.
        max_bytes: optional cap on total stored payload bytes (prompt +
            response); ``None`` leaves size unbounded.
        namespace: optional isolation prefix mixed into every key digest.
            Views with different namespaces share the file (and its LRU
            budget) but can never see each other's entries — the unit of
            tenant isolation in the multi-tenant service.
    """

    def __init__(
        self,
        db: StoreDB,
        *,
        max_entries: int = 100_000,
        max_bytes: int | None = None,
        namespace: str = "",
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when set")
        self._db = db
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.namespace = namespace
        self.stats = CacheStats()
        # Eviction needs COUNT/SUM scans; amortize them on large
        # entry-capped caches (the overshoot between checks is bounded by
        # the interval) while staying exact — every put checks — for small
        # caps and whenever a byte cap is set (one oversized payload could
        # blow far past a byte budget within an amortization window).
        if max_bytes is not None:
            self._evict_interval = 1
        else:
            self._evict_interval = max(1, min(64, max_entries // 100))
        self._puts_since_evict = 0

    #: One-statement LRU ordinal: the next sequence is one past the table's
    #: current maximum, so a hit's touch and a put's insert are each a
    #: single autocommit statement on the per-LLM-call hot path (no
    #: separate counter transaction).  Cross-process ties are harmless —
    #: only the relative eviction order matters.
    _NEXT_SEQ = "(SELECT COALESCE(MAX(access_seq), 0) + 1 FROM cache)"

    def get(self, model: str, prompt: str) -> LLMResponse | None:
        key = _key(model, prompt, self.namespace)
        with self._db.lock:
            rows = self._db.execute("SELECT payload FROM cache WHERE key = ?", (key,))
            if not rows:
                self.stats.misses += 1
                return None
            # LRU touch: a hit becomes the most recently used entry.
            self._db.execute(
                f"UPDATE cache SET access_seq = {self._NEXT_SEQ} WHERE key = ?",
                (key,),
            )
            self.stats.hits += 1
            return decode_response(rows[0][0])

    def contains(self, model: str, prompt: str) -> bool:
        """Whether a response is stored, without counting or touching it.

        The quote path uses this to pre-probe statically-known prompts: a
        quote must not perturb this instance's hit/miss accounting nor the
        entries' LRU recency — quoting a workload is not serving it.
        """
        key = _key(model, prompt, self.namespace)
        return bool(self._db.execute("SELECT 1 FROM cache WHERE key = ?", (key,)))

    def put(self, model: str, prompt: str, response: LLMResponse) -> None:
        payload = encode_response(response)
        size = len(payload.encode("utf-8")) + len(prompt.encode("utf-8", "surrogatepass"))
        with self._db.lock:
            self._db.execute(
                "INSERT OR REPLACE INTO cache "
                "(key, model, prompt, payload, size, access_seq) "
                f"VALUES (?, ?, ?, ?, ?, {self._NEXT_SEQ})",
                (_key(model, prompt, self.namespace), model, prompt, payload, size),
            )
            self._puts_since_evict += 1
            if self._puts_since_evict >= self._evict_interval:
                self._puts_since_evict = 0
                self._evict()

    def _evict(self) -> None:
        """Delete least-recently-used rows until both caps are satisfied."""
        rows = self._db.execute("SELECT COUNT(*), COALESCE(SUM(size), 0) FROM cache")
        count, total_bytes = rows[0]
        over_entries = max(0, count - self.max_entries)
        if over_entries:
            self._db.execute(
                "DELETE FROM cache WHERE key IN "
                "(SELECT key FROM cache ORDER BY access_seq ASC LIMIT ?)",
                (over_entries,),
            )
        if self.max_bytes is None:
            return
        rows = self._db.execute("SELECT COUNT(*), COALESCE(SUM(size), 0) FROM cache")
        count, total_bytes = rows[0]
        while total_bytes > self.max_bytes and count > 1:
            # Evict one LRU victim at a time; sizes vary per row, so the
            # count to delete is not computable up front.  At least one
            # entry is always kept — a single oversized response must not
            # leave the cache permanently empty and thrashing.
            victim = self._db.execute(
                "SELECT key, size FROM cache ORDER BY access_seq ASC LIMIT 1"
            )
            self._db.execute("DELETE FROM cache WHERE key = ?", (victim[0][0],))
            count -= 1
            total_bytes -= victim[0][1]

    def __len__(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM cache")[0][0])

    def total_bytes(self) -> int:
        """Total stored payload bytes (what ``max_bytes`` is enforced over)."""
        return int(self._db.execute("SELECT COALESCE(SUM(size), 0) FROM cache")[0][0])

    def clear(self) -> None:
        self._db.execute("DELETE FROM cache")
        self.stats = CacheStats()

    def snapshot(self) -> dict[str, Any]:
        """Debug view: entry count, byte total, and this instance's hit rate."""
        return {
            "entries": len(self),
            "bytes": self.total_bytes(),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
        }
