"""Durable embedding vectors: the cache that makes re-runs embed nothing.

:class:`EmbeddingCache` stores one unit-norm vector per content
fingerprint (SHA-256 over the text *and* the embedder configuration — see
:func:`~repro.store.fingerprint.fingerprint_embedding`), so a vector is
reused only when both the text and the embedding function are unchanged.
Vectors are raw little-endian float64 blobs — bit-exact round trips, no
JSON inflation — and eviction is LRU by the store's monotonic sequence
numbers, exactly like the response cache (no wall clocks anywhere).

``stats`` counts this *instance's* hits and misses, which is how the
acceptance test pins "a second run over an unchanged corpus recomputes
zero embeddings": open a fresh cache view, run again, assert
``stats.misses == 0``.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

import numpy as np

from repro.llm.cache import CacheStats
from repro.store.db import StoreDB

#: SQLite's default variable limit is 999; batch IN-clauses safely below it.
_SELECT_BATCH = 500


def encode_vector(vector: np.ndarray) -> bytes:
    """Pack a vector into the stored blob (little-endian float64)."""
    dense = np.ascontiguousarray(vector, dtype=np.float64).reshape(-1)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        dense = dense.astype("<f8")
    return dense.tobytes()


def decode_vector(blob: bytes) -> np.ndarray:
    """Unpack a stored blob back into a float64 vector."""
    return np.frombuffer(blob, dtype="<f8").astype(np.float64, copy=True)


class EmbeddingCache:
    """Durable LRU cache of embedding vectors keyed by content fingerprint.

    Args:
        db: the store database vectors live in.
        max_entries: LRU entry cap (vectors are small; the default allows
            half a million 256-dim float64 vectors in ~1 GB).
    """

    def __init__(self, db: StoreDB, *, max_entries: int = 500_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._db = db
        self.max_entries = max_entries
        self.stats = CacheStats()

    #: Same one-statement LRU ordinal trick as the response cache.
    _NEXT_SEQ = "(SELECT COALESCE(MAX(access_seq), 0) + 1 FROM embeddings)"

    def get(self, fingerprint: str) -> np.ndarray | None:
        """The cached vector, or ``None`` (counts one hit or miss)."""
        return self.get_many([fingerprint]).get(fingerprint)

    def get_many(self, fingerprints: Iterable[str]) -> dict[str, np.ndarray]:
        """Cached vectors for ``fingerprints``; absent keys are misses.

        Hit/miss accounting counts each *requested* fingerprint once
        (duplicates in the request count once per occurrence — they would
        each have been an embed call without the cache).
        """
        wanted = list(fingerprints)
        if not wanted:
            return {}
        found: dict[str, np.ndarray] = {}
        unique = sorted(set(wanted))
        with self._db.lock:
            for start in range(0, len(unique), _SELECT_BATCH):
                batch = unique[start : start + _SELECT_BATCH]
                placeholders = ",".join("?" for _ in batch)
                rows = self._db.execute(
                    f"SELECT fingerprint, vector FROM embeddings "
                    f"WHERE fingerprint IN ({placeholders})",
                    batch,
                )
                for fingerprint, blob in rows:
                    found[fingerprint] = decode_vector(blob)
                if rows:
                    # LRU touch: every hit batch becomes most recently used.
                    hit_keys = [row[0] for row in rows]
                    hit_placeholders = ",".join("?" for _ in hit_keys)
                    self._db.execute(
                        f"UPDATE embeddings SET access_seq = {self._NEXT_SEQ} "
                        f"WHERE fingerprint IN ({hit_placeholders})",
                        hit_keys,
                    )
        for fingerprint in wanted:
            if fingerprint in found:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        return found

    def put(self, fingerprint: str, vector: np.ndarray, *, model: str, dimensions: int) -> None:
        self.put_many({fingerprint: vector}, model=model, dimensions=dimensions)

    def put_many(
        self, vectors: dict[str, np.ndarray], *, model: str, dimensions: int
    ) -> None:
        """Store vectors under their fingerprints, then enforce the LRU cap."""
        if not vectors:
            return
        with self._db.lock:
            for fingerprint, vector in vectors.items():
                self._db.execute(
                    "INSERT OR REPLACE INTO embeddings "
                    "(fingerprint, model, dimensions, vector, access_seq) "
                    f"VALUES (?, ?, ?, ?, {self._NEXT_SEQ})",
                    (fingerprint, model, dimensions, encode_vector(vector)),
                )
            self._evict()

    def _evict(self) -> None:
        rows = self._db.execute("SELECT COUNT(*) FROM embeddings")
        over = max(0, int(rows[0][0]) - self.max_entries)
        if over:
            self._db.execute(
                "DELETE FROM embeddings WHERE fingerprint IN "
                "(SELECT fingerprint FROM embeddings ORDER BY access_seq ASC LIMIT ?)",
                (over,),
            )

    def __len__(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM embeddings")[0][0])

    def clear(self) -> None:
        self._db.execute("DELETE FROM embeddings")
        self.stats = CacheStats()

    def snapshot(self) -> dict[str, Any]:
        """Debug view: entry count plus this instance's hit/miss counters."""
        return {
            "entries": len(self),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
        }
