"""The :class:`Store` facade: one file, all of the library's durable state.

A store bundles the three persistence concerns behind one handle:

* **Response cache** — :meth:`Store.response_cache` returns the durable
  drop-in for the in-memory cache (see
  :mod:`repro.store.response_cache`); a
  :class:`~repro.core.session.PromptSession` built with ``store=`` uses it
  automatically.
* **Workload profiles** — :meth:`Store.save_profile` /
  :meth:`Store.apply_profile` persist a session's
  :class:`~repro.core.physical.RuntimeStats` and merge them (decay-weighted)
  into the next session's fresh stats.
* **Pipeline checkpoints** — :meth:`Store.save_checkpoint` /
  :meth:`Store.load_checkpoint` keyed by the content fingerprints of
  :mod:`repro.store.fingerprint`; ``engine.run_pipeline(..., store=...)``
  uses them to skip any step whose concrete spec already ran.

Everything shares one SQLite file (see :mod:`repro.store.db` for the
corruption/versioning rules), so "make this deployment durable" is a single
``Store("repro-store.db")`` handed to the session or the engine.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

from repro.core.spec import TaskSpec
from repro.obs.spans import Span
from repro.operators.base import OperatorResult
from repro.store.checkpoint import decode_result, encode_result
from repro.store.db import StoreDB
from repro.store.jobs import (
    JobRecord,
    job_from_row,
    job_quote_payload,
    job_report_payload,
    validate_status,
)
from repro.store.profile import DEFAULT_DECAY, WorkloadProfile
from repro.store.response_cache import PersistentResponseCache
from repro.store.vectors import EmbeddingCache
from repro.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.physical import RuntimeStats
    from repro.index.base import VectorIndex
    from repro.store.namespace import StoreNamespace


class Store:
    """A durable store shared by sessions, engines, and queries.

    Args:
        path: SQLite file backing the store (``":memory:"`` for ephemeral).
        max_cache_entries: LRU entry cap of the response cache.
        max_cache_bytes: optional LRU byte cap of the response cache.
        max_checkpoints: LRU cap on retained step checkpoints.
        max_trace_records: FIFO cap on retained call-trace rows.
        max_span_records: FIFO cap on retained span rows.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        max_cache_entries: int = 100_000,
        max_cache_bytes: int | None = None,
        max_checkpoints: int = 10_000,
        max_trace_records: int = 50_000,
        max_span_records: int = 50_000,
        max_embedding_entries: int = 500_000,
    ) -> None:
        if max_checkpoints <= 0:
            raise ValueError("max_checkpoints must be positive")
        if max_trace_records <= 0:
            raise ValueError("max_trace_records must be positive")
        if max_span_records <= 0:
            raise ValueError("max_span_records must be positive")
        if max_embedding_entries <= 0:
            raise ValueError("max_embedding_entries must be positive")
        self.db = StoreDB(path)
        self.max_checkpoints = max_checkpoints
        self.max_trace_records = max_trace_records
        self.max_span_records = max_span_records
        self.max_cache_entries = max_cache_entries
        self.max_cache_bytes = max_cache_bytes
        self.max_embedding_entries = max_embedding_entries
        self._cache = self.response_cache()

    @property
    def path(self) -> str:
        return self.db.path

    # -- response cache -----------------------------------------------------------

    def response_cache(self, *, namespace: str = "") -> PersistentResponseCache:
        """A durable response cache view (drop-in for ``ResponseCache``).

        Every call returns a *new* instance: the entries are shared (they
        live in the database), but hit/miss counters are per instance, so
        each :class:`~repro.core.session.PromptSession` built on this store
        reports its own hit rate — matching the semantics of handing every
        session a fresh in-memory cache.  A non-empty ``namespace`` is mixed
        into every key digest, so the view shares the file but can never
        read or collide with another namespace's entries (tenant isolation).
        """
        return PersistentResponseCache(
            self.db,
            max_entries=self.max_cache_entries,
            max_bytes=self.max_cache_bytes,
            namespace=namespace,
        )

    def namespace(self, prefix: str) -> "StoreNamespace":
        """A tenant-isolated view of this store (see :class:`StoreNamespace`)."""
        from repro.store.namespace import StoreNamespace  # breaks import cycle

        return StoreNamespace(self, prefix)

    # -- embedding vectors --------------------------------------------------------

    def embedding_cache(self) -> EmbeddingCache:
        """A durable embedding-vector cache view (fresh hit/miss counters).

        Like :meth:`response_cache`, every call returns a new instance over
        the shared rows, so each consumer (a
        :class:`~repro.index.CachedEmbedder`, a test pinning zero
        recomputation) reads its own hit rate.
        """
        return EmbeddingCache(self.db, max_entries=self.max_embedding_entries)

    def embedding_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM embeddings")[0][0])

    # -- vector indexes -----------------------------------------------------------

    def save_vector_index(self, name: str, index: "VectorIndex") -> None:
        """Persist a built index under ``name`` (replacing any previous one)."""
        self.db.execute(
            "INSERT OR REPLACE INTO vector_indexes "
            "(name, kind, dimensions, size, payload, updated_seq) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                name,
                index.kind,
                index.dimensions,
                len(index),
                index.to_payload(),
                self.db.next_seq(),
            ),
        )

    def load_vector_index(self, name: str) -> "VectorIndex | None":
        """Rebuild the stored index, or ``None`` when absent or unreadable.

        An unreadable payload (an index kind this library version does not
        know, a mangled row) reports a miss — rebuilding an index is always
        correct, exactly like a failed checkpoint load.
        """
        rows = self.db.execute(
            "SELECT kind, payload FROM vector_indexes WHERE name = ?", (name,)
        )
        if not rows:
            return None
        from repro.index import index_from_payload  # breaks import cycle

        try:
            return index_from_payload(rows[0][0], rows[0][1])
        except Exception:
            return None

    def delete_vector_index(self, name: str) -> None:
        self.db.execute("DELETE FROM vector_indexes WHERE name = ?", (name,))

    def list_vector_indexes(self) -> list[dict[str, Any]]:
        """Stored index summaries (name, kind, dimensions, size)."""
        return [
            {
                "name": row[0],
                "kind": row[1],
                "dimensions": int(row[2]),
                "size": int(row[3]),
            }
            for row in self.db.execute(
                "SELECT name, kind, dimensions, size FROM vector_indexes ORDER BY name"
            )
        ]

    def vector_index_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM vector_indexes")[0][0])

    # -- workload profiles --------------------------------------------------------

    def save_profile(
        self,
        stats: "RuntimeStats",
        *,
        name: str = "default",
        merge: bool = False,
        decay: float = DEFAULT_DECAY,
    ) -> None:
        """Persist a snapshot of ``stats`` under ``name``.

        By default the saved profile is *replaced* — correct for a session
        that loaded this store's profile at construction, whose stats
        therefore already contain the decayed history.  Pass ``merge=True``
        when ``stats`` did **not** start from this store's profile (an
        explicit ``store=`` argument on a session built without one): the
        existing saved history is decay-merged underneath first, exactly as
        a seeded session would have carried it, instead of being silently
        overwritten by one run's observations.
        """
        if merge:
            from repro.core.physical import RuntimeStats

            combined = RuntimeStats()
            self.apply_profile(combined, name=name, decay=decay)
            combined.merge_state(stats.export_state())
            stats = combined
        profile = WorkloadProfile.from_stats(stats)
        self.db.execute(
            "INSERT OR REPLACE INTO profiles (name, payload, updated_seq) "
            "VALUES (?, ?, ?)",
            (name, profile.to_json(), self.db.next_seq()),
        )

    def load_profile(self, *, name: str = "default") -> WorkloadProfile | None:
        """The saved profile, or ``None`` when none exists yet."""
        rows = self.db.execute("SELECT payload FROM profiles WHERE name = ?", (name,))
        if not rows:
            return None
        return WorkloadProfile.from_json(rows[0][0])

    def apply_profile(
        self,
        stats: "RuntimeStats",
        *,
        name: str = "default",
        decay: float = DEFAULT_DECAY,
    ) -> bool:
        """Merge the saved profile into ``stats`` (decay-weighted).

        Returns whether a profile existed.  Sessions built with ``store=``
        call this on construction, so their first quote is priced from the
        previous run's observations.
        """
        profile = self.load_profile(name=name)
        if profile is None:
            return False
        profile.apply_to(stats, decay=decay)
        return True

    # -- pipeline checkpoints -----------------------------------------------------

    def save_checkpoint(
        self, fingerprint: str, spec: TaskSpec, result: OperatorResult
    ) -> None:
        """Persist one completed step's result under its content fingerprint.

        The strategy that actually executed is recorded for observability
        (it is deliberately *not* part of the fingerprint — see
        :mod:`repro.store.fingerprint`).
        """
        payload = encode_result(result)
        self.db.execute(
            "INSERT OR REPLACE INTO checkpoints "
            "(fingerprint, payload, spec_type, strategy, calls, cost, access_seq) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                payload,
                type(spec).__name__,
                result.strategy,
                result.usage.calls,
                result.cost,
                self.db.next_seq(),
            ),
        )
        self._evict_checkpoints()

    def load_checkpoint(self, fingerprint: str) -> OperatorResult | None:
        """The stored result for ``fingerprint``, or ``None`` (a miss)."""
        with self.db.lock:
            rows = self.db.execute(
                "SELECT payload FROM checkpoints WHERE fingerprint = ?", (fingerprint,)
            )
            if not rows:
                return None
            result = decode_result(rows[0][0])
            if result is None:
                # Unreadable (newer version / unknown type): drop the row so
                # the slot is reclaimed, and report a miss.
                self.db.execute(
                    "DELETE FROM checkpoints WHERE fingerprint = ?", (fingerprint,)
                )
                return None
            self.db.execute(
                "UPDATE checkpoints SET access_seq = ? WHERE fingerprint = ?",
                (self.db.next_seq(), fingerprint),
            )
            result.metadata["checkpoint_hit"] = True
            return result

    def _evict_checkpoints(self) -> None:
        rows = self.db.execute("SELECT COUNT(*) FROM checkpoints")
        over = max(0, int(rows[0][0]) - self.max_checkpoints)
        if over:
            self.db.execute(
                "DELETE FROM checkpoints WHERE fingerprint IN "
                "(SELECT fingerprint FROM checkpoints ORDER BY access_seq ASC LIMIT ?)",
                (over,),
            )

    def checkpoint_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM checkpoints")[0][0])

    def clear_checkpoints(self) -> None:
        self.db.execute("DELETE FROM checkpoints")

    # -- call traces --------------------------------------------------------------

    def save_trace_records(
        self, records: list[TraceRecord], *, origin: str
    ) -> None:
        """Upsert a tracer's records atomically, keyed by ``origin:call_id``.

        The tracer re-sends amended records (retry annotations arrive after
        the initial write), so rows are replaced, not duplicated.  Oldest
        rows beyond ``max_trace_records`` are evicted FIFO by insertion
        order.
        """
        if not records:
            return
        statements: list[tuple[str, tuple]] = [
            (
                "INSERT OR REPLACE INTO traces "
                "(trace_id, origin, call_id, step, operator, model, temperature, "
                "prompt, response, prompt_tokens, completion_tokens, cost, "
                "duration_ms, cache_hit, attempt, parse_ok, error, "
                "finish_reason, confidence, span_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    f"{origin}:{record.call_id}",
                    origin,
                    record.call_id,
                    record.step,
                    record.operator,
                    record.model,
                    record.temperature,
                    record.prompt,
                    record.response_text,
                    record.prompt_tokens,
                    record.completion_tokens,
                    record.cost,
                    record.duration_ms,
                    int(record.cache_hit),
                    record.attempt,
                    None if record.parse_ok is None else int(record.parse_ok),
                    record.error,
                    record.finish_reason,
                    record.confidence,
                    record.span_id,
                ),
            )
            for record in records
        ]
        self.db.transaction(statements)
        self._evict_traces()

    def trace_records(self, *, origin: str | None = None) -> list[TraceRecord]:
        """Stored trace records (optionally one session's), oldest first."""
        sql = (
            "SELECT call_id, step, operator, model, temperature, prompt, "
            "response, prompt_tokens, completion_tokens, cost, duration_ms, "
            "cache_hit, attempt, parse_ok, error, finish_reason, confidence, "
            "span_id FROM traces"
        )
        parameters: tuple = ()
        if origin is not None:
            sql += " WHERE origin = ?"
            parameters = (origin,)
        sql += " ORDER BY origin, call_id"
        return [
            TraceRecord(
                call_id=int(row[0]),
                step=row[1],
                operator=row[2],
                model=row[3],
                temperature=float(row[4]),
                prompt=row[5],
                response_text=row[6],
                prompt_tokens=int(row[7]),
                completion_tokens=int(row[8]),
                cost=float(row[9]),
                duration_ms=float(row[10]),
                cache_hit=bool(row[11]),
                attempt=int(row[12]),
                parse_ok=None if row[13] is None else bool(row[13]),
                error=row[14],
                finish_reason=row[15],
                confidence=float(row[16]),
                span_id=None if row[17] is None else int(row[17]),
            )
            for row in self.db.execute(sql, parameters)
        ]

    def trace_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM traces")[0][0])

    def clear_traces(self) -> None:
        self.db.execute("DELETE FROM traces")

    def _evict_traces(self) -> None:
        rows = self.db.execute("SELECT COUNT(*) FROM traces")
        over = max(0, int(rows[0][0]) - self.max_trace_records)
        if over:
            self.db.execute(
                "DELETE FROM traces WHERE rowid IN "
                "(SELECT rowid FROM traces ORDER BY rowid ASC LIMIT ?)",
                (over,),
            )

    # -- spans --------------------------------------------------------------------

    def save_spans(self, spans: list[Span], *, origin: str) -> None:
        """Upsert a tracker's spans atomically, keyed by ``origin:span_id``.

        The tracker re-sends spans whose status or attributes changed
        after the first flush (a span closes, an observer error is
        annotated), so rows are replaced, not duplicated.  Oldest rows
        beyond ``max_span_records`` are evicted FIFO.
        """
        if not spans:
            return
        statements: list[tuple[str, tuple]] = [
            (
                "INSERT OR REPLACE INTO spans "
                "(row_id, origin, span_id, parent_id, kind, label, "
                "start_time, end_time, status, attributes) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    f"{origin}:{span.span_id}",
                    origin,
                    span.span_id,
                    span.parent_id,
                    span.kind,
                    span.label,
                    span.start,
                    span.end,
                    span.status,
                    json.dumps(span.attributes, sort_keys=True),
                ),
            )
            for span in spans
        ]
        self.db.transaction(statements)
        self._evict_spans()

    def load_spans(self, *, origin: str | None = None) -> list[Span]:
        """Stored spans (optionally one tracker's), in creation order."""
        sql = (
            "SELECT span_id, parent_id, kind, label, start_time, end_time, "
            "status, attributes FROM spans"
        )
        parameters: tuple = ()
        if origin is not None:
            sql += " WHERE origin = ?"
            parameters = (origin,)
        sql += " ORDER BY origin, span_id"
        return [
            Span(
                span_id=int(row[0]),
                parent_id=None if row[1] is None else int(row[1]),
                kind=row[2],
                label=row[3],
                start=float(row[4]),
                end=None if row[5] is None else float(row[5]),
                status=row[6],
                attributes=json.loads(row[7]),
            )
            for row in self.db.execute(sql, parameters)
        ]

    def span_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM spans")[0][0])

    def clear_spans(self) -> None:
        self.db.execute("DELETE FROM spans")

    def _evict_spans(self) -> None:
        rows = self.db.execute("SELECT COUNT(*) FROM spans")
        over = max(0, int(rows[0][0]) - self.max_span_records)
        if over:
            self.db.execute(
                "DELETE FROM spans WHERE rowid IN "
                "(SELECT rowid FROM spans ORDER BY rowid ASC LIMIT ?)",
                (over,),
            )

    # -- jobs ---------------------------------------------------------------------

    _JOB_COLUMNS = (
        "job_id, tenant, status, pipeline, quote, report, error, resumable, "
        "submitted_seq, updated_seq"
    )

    def save_job(self, job: JobRecord) -> None:
        """Upsert one job row atomically (the service persists every
        transition: accepted, started, each streamed step, and the outcome).

        ``submitted_seq`` is assigned on first save and preserved on
        updates; ``updated_seq`` advances every save, so "most recently
        touched" is queryable without wall clocks.
        """
        validate_status(job.status)
        with self.db.lock:
            if job.submitted_seq == 0:
                rows = self.db.execute(
                    "SELECT submitted_seq FROM jobs WHERE job_id = ?", (job.job_id,)
                )
                job.submitted_seq = (
                    int(rows[0][0]) if rows else self.db.next_seq()
                )
            job.updated_seq = self.db.next_seq()
            self.db.execute(
                f"INSERT OR REPLACE INTO jobs ({self._JOB_COLUMNS}) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job.job_id,
                    job.tenant,
                    job.status,
                    job.pipeline_json,
                    job_quote_payload(job),
                    job_report_payload(job),
                    job.error,
                    int(job.resumable),
                    job.submitted_seq,
                    job.updated_seq,
                ),
            )

    def load_job(self, job_id: str) -> JobRecord | None:
        """The stored job row, or ``None`` when no such job exists."""
        rows = self.db.execute(
            f"SELECT {self._JOB_COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
        )
        return job_from_row(rows[0]) if rows else None

    def list_jobs(
        self, *, tenant: str | None = None, status: str | None = None
    ) -> list[JobRecord]:
        """Stored jobs in submission order, optionally filtered."""
        sql = f"SELECT {self._JOB_COLUMNS} FROM jobs"
        clauses: list[str] = []
        parameters: list[Any] = []
        if tenant is not None:
            clauses.append("tenant = ?")
            parameters.append(tenant)
        if status is not None:
            clauses.append("status = ?")
            parameters.append(validate_status(status))
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY submitted_seq ASC"
        return [job_from_row(row) for row in self.db.execute(sql, parameters)]

    def job_count(self) -> int:
        return int(self.db.execute("SELECT COUNT(*) FROM jobs")[0][0])

    # -- lifecycle ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Debug view of the store's contents."""
        profiles = [row[0] for row in self.db.execute("SELECT name FROM profiles")]
        return {
            "path": self.path,
            "cache": self._cache.snapshot(),
            "profiles": sorted(profiles),
            "checkpoints": self.checkpoint_count(),
            "traces": self.trace_count(),
            "spans": self.span_count(),
            "jobs": self.job_count(),
            "embeddings": self.embedding_count(),
            "vector_indexes": self.vector_index_count(),
        }

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
