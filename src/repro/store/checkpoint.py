"""Serialisation of operator results for pipeline checkpoints.

A checkpointed step's result must round-trip through the store byte-exactly
enough that downstream steps (spec factories materialising their inputs
from upstream results) and the query layer's output extraction behave
identically whether the result was computed this run or restored from disk.
Every :class:`~repro.operators.base.OperatorResult` subclass the engine can
produce has an explicit codec entry here — an unknown result type refuses
to encode (the step simply is not checkpointed) rather than pickling
arbitrary objects into the store.

JSON is the wire format: human-inspectable with the ``sqlite3`` CLI, no
arbitrary-code-execution surface on load (a store file may be shared), and
every result field in the library is JSON-shaped already apart from tuples
(restored from lists) and :class:`~repro.tokenizer.cost.Usage`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import StoreError
from repro.operators.base import OperatorResult
from repro.operators.categorize import CategorizeResult
from repro.operators.cluster import ClusterResult
from repro.operators.count import CountResult
from repro.operators.filter import FilterResult
from repro.operators.impute import ImputeResult
from repro.operators.join import JoinResult
from repro.operators.resolve import PairJudgment, PairJudgmentResult, ResolveResult
from repro.operators.sort import SortResult
from repro.operators.top_k import TopKResult
from repro.tokenizer.cost import Usage

#: Result payload version; bump on layout changes (old rows are re-run).
CHECKPOINT_VERSION = 1

_RESULT_TYPES: dict[str, type[OperatorResult]] = {
    cls.__name__: cls
    for cls in (
        CategorizeResult,
        ClusterResult,
        CountResult,
        FilterResult,
        ImputeResult,
        JoinResult,
        PairJudgmentResult,
        ResolveResult,
        SortResult,
        TopKResult,
    )
}


def _encode_usage(usage: Usage) -> dict[str, int]:
    return {
        "prompt_tokens": usage.prompt_tokens,
        "completion_tokens": usage.completion_tokens,
        "calls": usage.calls,
    }


def _decode_usage(data: dict[str, Any]) -> Usage:
    return Usage(
        prompt_tokens=int(data.get("prompt_tokens", 0)),
        completion_tokens=int(data.get("completion_tokens", 0)),
        calls=int(data.get("calls", 0)),
    )


def encode_result(result: OperatorResult) -> str:
    """Serialise a result to the JSON payload stored in a checkpoint row.

    Raises :class:`StoreError` for result types without a codec — callers
    treat that as "do not checkpoint this step".
    """
    type_name = type(result).__name__
    if type_name not in _RESULT_TYPES:
        raise StoreError(f"no checkpoint codec for result type {type_name}")
    fields: dict[str, Any] = {
        "strategy": result.strategy,
        "usage": _encode_usage(result.usage),
        "cost": result.cost,
        "metadata": result.metadata,
    }
    if isinstance(result, SortResult):
        fields.update(
            order=result.order,
            missing=result.missing,
            hallucinated=result.hallucinated,
            scores=result.scores,
        )
    elif isinstance(result, FilterResult):
        fields.update(
            kept=result.kept, decisions=result.decisions, votes_used=result.votes_used
        )
    elif isinstance(result, CategorizeResult):
        fields.update(assignments=result.assignments, votes_used=result.votes_used)
    elif isinstance(result, PairJudgmentResult):
        fields["judgments"] = [
            {
                "left": judgment.left,
                "right": judgment.right,
                "is_duplicate": judgment.is_duplicate,
                "source": judgment.source,
            }
            for judgment in result.judgments
        ]
    elif isinstance(result, (ResolveResult, ClusterResult)):
        fields["clusters"] = result.clusters
    elif isinstance(result, ImputeResult):
        fields.update(
            predictions=result.predictions,
            llm_queries=result.llm_queries,
            proxy_queries=result.proxy_queries,
        )
    elif isinstance(result, JoinResult):
        fields.update(
            matches=[list(pair) for pair in result.matches],
            candidate_pairs=result.candidate_pairs,
            llm_pairs=result.llm_pairs,
        )
    elif isinstance(result, TopKResult):
        fields.update(
            top_items=result.top_items,
            ratings=result.ratings,
            finalists=result.finalists,
        )
    elif isinstance(result, CountResult):
        fields.update(count=result.count, per_item=getattr(result, "per_item", None))
    try:
        payload = json.dumps(
            {"type": type_name, "version": CHECKPOINT_VERSION, "fields": fields},
            sort_keys=True,
            default=str,
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"result of type {type_name} is not serialisable: {exc}") from exc
    return payload


def decode_result(payload: str) -> OperatorResult | None:
    """Rebuild a result from its checkpoint payload.

    Returns ``None`` for unknown types or newer payload versions — the
    caller treats either as a checkpoint miss and re-runs the step, which
    is always safe.
    """
    data = json.loads(payload)
    type_name = data.get("type")
    if type_name not in _RESULT_TYPES or int(data.get("version", 0)) > CHECKPOINT_VERSION:
        return None
    fields = dict(data["fields"])
    usage = _decode_usage(fields.pop("usage", {}))
    metadata = dict(fields.pop("metadata", {}))
    if type_name == "PairJudgmentResult":
        fields["judgments"] = [
            PairJudgment(
                left=judgment["left"],
                right=judgment["right"],
                is_duplicate=bool(judgment["is_duplicate"]),
                source=judgment.get("source", "llm"),
            )
            for judgment in fields.get("judgments", [])
        ]
    elif type_name == "JoinResult":
        fields["matches"] = [tuple(pair) for pair in fields.get("matches", [])]
    elif type_name in ("ResolveResult", "ClusterResult"):
        fields["clusters"] = [list(cluster) for cluster in fields.get("clusters", [])]
    elif type_name == "FilterResult":
        fields["decisions"] = {
            item: bool(flag) for item, flag in fields.get("decisions", {}).items()
        }
    elif type_name == "CountResult":
        if fields.get("per_item") is None:
            fields.pop("per_item", None)
    result = _RESULT_TYPES[type_name](**fields)
    result.usage = usage
    result.metadata = metadata
    return result
