"""Deterministic content fingerprints for declarative task specs.

A pipeline checkpoint is only reusable if "the same step" can be recognised
across processes, machines, and library restarts, so the fingerprint is a
SHA-256 over a *canonical JSON* rendering of the concrete spec the step is
about to execute:

* By the time a step is fingerprinted, any spec factory has already been
  applied, so the spec's item lists **are** the step's resolved inputs —
  content-addressing the concrete spec addresses the step's full input
  lineage without chaining upstream hashes.  Two steps (or two runs) whose
  concrete specs are byte-identical are interchangeable by construction,
  which is exactly what makes incremental re-execution work: change one
  branch of a query and only the steps whose resolved inputs changed get
  new fingerprints.
* ``budget_dollars`` is excluded: a budget shapes *whether and how cheaply*
  a step runs, never what the correct answer is, and a resumed run under a
  different remaining budget should reuse paid-for work rather than
  re-spend.  The strategy that actually executed is stored alongside the
  checkpoint for observability (see :mod:`repro.store.checkpoint`).
* Everything else — operator type, items, predicates, criteria, explicit
  strategy and options, accuracy targets, validation samples — is included,
  so changing any semantic knob invalidates the checkpoint.

Values that cannot be canonicalised (arbitrary objects in
``strategy_options``) raise :class:`FingerprintError`; the engine treats
such steps as uncacheable and simply re-runs them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.core.spec import TaskSpec
from repro.data.products import ImputationDataset
from repro.data.record import Dataset, Record
from repro.exceptions import StoreError

#: Bump to invalidate every existing fingerprint (serialisation change).
FINGERPRINT_VERSION = 1

#: Spec fields that never change the *result* of a step, only its funding.
_EXCLUDED_FIELDS = frozenset({"budget_dollars"})


class FingerprintError(StoreError):
    """A spec contains a value with no canonical serialisation."""


def canonical(value: Any) -> Any:
    """Map ``value`` onto the JSON-stable subset used for hashing.

    Mappings become sorted ``[key, value]`` pair lists (dict key order and
    non-string keys both stop mattering), sequences become lists, sets are
    sorted, and the record/dataset types serialise field-by-field.  Anything
    unrecognised raises :class:`FingerprintError` rather than falling back
    to ``repr`` — a memory address in the hash would silently defeat
    cross-process stability.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly and is stable across platforms.
        return {"float": repr(value)}
    if isinstance(value, dict):
        return {"map": sorted(([canonical(k), canonical(v)] for k, v in value.items()), key=json_key)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"set": sorted((canonical(item) for item in value), key=json_key)}
    if isinstance(value, Record):
        return {
            "record": value.record_id,
            "attributes": canonical(dict(value.attributes)),
        }
    if isinstance(value, Dataset):
        return {"dataset": value.name, "records": [canonical(r) for r in value.records]}
    if isinstance(value, ImputationDataset):
        return {
            "imputation": value.name,
            "target": value.target_attribute,
            "queries": canonical(value.queries),
            "reference": canonical(value.reference),
            "ground_truth": canonical(dict(value.ground_truth)),
        }
    if isinstance(value, TaskSpec):
        return spec_payload(value)
    raise FingerprintError(
        f"cannot fingerprint a value of type {type(value).__name__}: {value!r:.80}"
    )


def json_key(value: Any) -> str:
    """A total order over canonical values (sorting mixed-type collections)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def spec_payload(spec: TaskSpec) -> dict[str, Any]:
    """The canonical dict a spec hashes to."""
    if not dataclasses.is_dataclass(spec):
        raise FingerprintError(
            f"cannot fingerprint non-dataclass spec {type(spec).__name__}"
        )
    fields = {
        field.name: canonical(getattr(spec, field.name))
        for field in dataclasses.fields(spec)
        if field.name not in _EXCLUDED_FIELDS
    }
    return {"spec": type(spec).__name__, "version": FINGERPRINT_VERSION, "fields": fields}


def fingerprint_spec(spec: TaskSpec) -> str:
    """SHA-256 hex digest identifying a concrete spec's content."""
    payload = json.dumps(
        spec_payload(spec), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_embedding(
    text: str, *, model: str, dimensions: int, ngram_sizes: tuple[int, ...] = ()
) -> str:
    """Content fingerprint of one embedding: the text *and* the function.

    The embedder configuration is part of the key so a cached vector is
    only ever reused when the same text would embed to the same vector —
    change the model, the dimensionality, or the n-gram mix and every
    fingerprint changes with it.
    """
    payload = json.dumps(
        {
            "embedding": FINGERPRINT_VERSION,
            "text": text,
            "model": model,
            "dimensions": dimensions,
            "ngram_sizes": list(ngram_sizes),
        },
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
