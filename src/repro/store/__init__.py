"""Durable persistence: response cache, workload profiles, checkpoints.

This package turns the engine from a one-shot library into a system whose
repeated and resumed workloads get cheaper over time.  One SQLite-backed
:class:`Store` file holds three kinds of derived state:

* a :class:`PersistentResponseCache` (drop-in for the in-memory
  :class:`~repro.llm.cache.ResponseCache`) so identical temperature-0
  calls are free across process lifetimes;
* :class:`WorkloadProfile` snapshots of a session's observed runtime
  statistics, merged decay-weighted into the next session so warm-start
  quotes are priced from history;
* content-addressed pipeline checkpoints
  (:func:`fingerprint_spec` + the engine's ``run_pipeline(store=...)``)
  giving crash-resume and incremental re-execution.

See ``docs/api.md`` ("The store subsystem") for the user-facing tour and
``examples/resumable_pipeline.py`` for a runnable walkthrough.
"""

from repro.store.checkpoint import CHECKPOINT_VERSION, decode_result, encode_result
from repro.store.db import APPLICATION_ID, SCHEMA_VERSION, StoreDB
from repro.store.fingerprint import (
    FingerprintError,
    fingerprint_embedding,
    fingerprint_spec,
)
from repro.store.jobs import JOB_STATUSES, TERMINAL_STATUSES, JobRecord
from repro.store.namespace import StoreNamespace
from repro.store.profile import DEFAULT_DECAY, PROFILE_VERSION, WorkloadProfile
from repro.store.response_cache import PersistentResponseCache
from repro.store.store import Store
from repro.store.vectors import EmbeddingCache

__all__ = [
    "APPLICATION_ID",
    "CHECKPOINT_VERSION",
    "DEFAULT_DECAY",
    "EmbeddingCache",
    "FingerprintError",
    "JOB_STATUSES",
    "JobRecord",
    "PROFILE_VERSION",
    "PersistentResponseCache",
    "SCHEMA_VERSION",
    "Store",
    "StoreDB",
    "StoreNamespace",
    "TERMINAL_STATUSES",
    "WorkloadProfile",
    "decode_result",
    "encode_result",
    "fingerprint_embedding",
    "fingerprint_spec",
]
