"""Durable job rows: the service layer's submitted-pipeline ledger.

A :class:`JobRecord` is one submitted pipeline's lifecycle, persisted in the
store's ``jobs`` table so a killed service process can account for — and
resume — every job it had accepted.  The record holds the *wire forms* only
(the pipeline's JSON, the quote's dict, the report's dict): jobs must be
readable by an operator with ``sqlite3`` and re-runnable by a process that
shares none of the original's memory.

States (see :class:`~repro.service.jobs.JobManager` for the transitions):

``queued``
    accepted by admission, waiting for a worker slot.
``running``
    executing on the scheduler.
``succeeded`` / ``failed``
    terminal; ``report`` (or ``error``) carries the outcome.
``stopped``
    did not finish, but *cleanly*: a drained shutdown or a budget stop.
    ``resumable`` distinguishes "re-submit me and my checkpoints finish the
    work" (shutdown/kill) from "the tenant's money ran out" (not resumable
    until the budget grows).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Every state a job row may carry.
JOB_STATUSES = ("queued", "running", "succeeded", "failed", "stopped")

#: States with nothing left to run.
TERMINAL_STATUSES = ("succeeded", "failed")


@dataclass
class JobRecord:
    """One submitted pipeline's durable lifecycle row.

    Attributes:
        job_id: opaque unique id (the service mints a UUID hex).
        tenant: owning tenant id — every job query is tenant-scoped.
        status: one of :data:`JOB_STATUSES`.
        pipeline_json: the submitted pipeline's JSON wire form (see
            :func:`~repro.core.spec_codec.pipeline_to_json`) — what a
            resume re-parses and re-runs.
        quote: the admission-time quote dict, when one was computed.
        report: the finished run's report dict
            (:meth:`~repro.core.workflow.WorkflowReport.to_dict`).
        error: exception text for ``failed`` jobs.
        resumable: a ``stopped`` job that a restart should re-enqueue.
        submitted_seq / updated_seq: store sequence ordinals (deterministic
            ordering without wall clocks, like every other table).
    """

    job_id: str
    tenant: str
    status: str = "queued"
    pipeline_json: str = ""
    quote: dict[str, Any] | None = None
    report: dict[str, Any] | None = None
    error: str | None = None
    resumable: bool = False
    submitted_seq: int = 0
    updated_seq: int = 0
    #: Settled step reports streamed so far (name -> StepReport dict);
    #: persisted with the row so a restart reports partial progress.
    steps: dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> dict[str, Any]:
        """The JSON-shaped view the service's job endpoints return."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "status": self.status,
            "quote": self.quote,
            "report": self.report,
            "error": self.error,
            "resumable": self.resumable,
            "steps": dict(self.steps),
            "submitted_seq": self.submitted_seq,
            "updated_seq": self.updated_seq,
        }


def _loads(payload: Any) -> dict[str, Any] | None:
    if payload is None:
        return None
    data = json.loads(payload)
    return data if isinstance(data, dict) else None


def job_from_row(row: tuple) -> JobRecord:
    """Rebuild a record from a ``jobs`` table row (column order fixed)."""
    report_data = _loads(row[5]) or {}
    return JobRecord(
        job_id=str(row[0]),
        tenant=str(row[1]),
        status=str(row[2]),
        pipeline_json=str(row[3]),
        quote=_loads(row[4]),
        report=report_data.get("report"),
        steps=dict(report_data.get("steps", {})),
        error=row[6],
        resumable=bool(row[7]),
        submitted_seq=int(row[8]),
        updated_seq=int(row[9]),
    )


def job_report_payload(job: JobRecord) -> str:
    """The ``report`` column's JSON: final report plus streamed steps."""
    return json.dumps({"report": job.report, "steps": job.steps}, sort_keys=True)


def job_quote_payload(job: JobRecord) -> str | None:
    return None if job.quote is None else json.dumps(job.quote, sort_keys=True)


def validate_status(status: str) -> str:
    if status not in JOB_STATUSES:
        raise ValueError(f"unknown job status {status!r} (expected one of {JOB_STATUSES})")
    return status


__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "JobRecord",
    "job_from_row",
    "job_report_payload",
    "job_quote_payload",
    "validate_status",
]
