"""Structured call tracing and deterministic trace replay.

See :mod:`repro.trace.tracer` for the ring-buffer :class:`Tracer` every
:class:`~repro.core.session.PromptSession` carries, and
:mod:`repro.trace.replay` for rebuilding a recorded run as a zero-live-call
fixture.
"""

from repro.trace.replay import ReplayLLM, replay_trace
from repro.trace.tracer import (
    DEFAULT_CAPACITY,
    DEFAULT_FLUSH_EVERY,
    TraceLabels,
    TraceRecord,
    Tracer,
    current_labels,
    summarize_records,
    trace_label,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_FLUSH_EVERY",
    "ReplayLLM",
    "TraceLabels",
    "TraceRecord",
    "Tracer",
    "current_labels",
    "replay_trace",
    "summarize_records",
    "trace_label",
]
