"""Trace replay: turn a recorded run into a deterministic LLM fixture.

:func:`replay_trace` builds a :class:`ReplayLLM` from a sequence of
:class:`~repro.trace.tracer.TraceRecord` objects.  The fixture implements
the :class:`~repro.llm.base.LLMClient` protocol — ``complete``,
``complete_batch``, ``default_model`` — so it drops in anywhere a
:class:`~repro.llm.simulated.SimulatedLLM` does: hand it to a fresh
:class:`~repro.core.session.PromptSession` and re-run the recorded
pipeline, and every call is answered from the trace with **zero live LLM
calls**.  A prompt the trace never answered raises
:class:`~repro.exceptions.TraceError` instead of silently inventing an
answer, which is exactly the property that turns a captured incident into
a regression test: if the replayed code path diverges from the recorded
one, the replay fails loudly at the first unrecorded call.

Repeated calls of the same ``(model, prompt)`` key replay in recorded
order (retry attempts at temperature > 0 produce distinct responses), and
the last recorded response is then repeated for any surplus lookups — a
replayed run whose caching behaves *better* than the recorded one (e.g. a
pre-warmed store) must not fail on the missing repetition.  Calls that
were recorded as raising re-raise the same exception class from the
:class:`~repro.exceptions.ReproError` taxonomy.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Sequence

from repro import exceptions
from repro.exceptions import ContextLengthExceededError, ReproError, TraceError
from repro.llm.base import LLMResponse, sequential_complete_batch
from repro.tokenizer.cost import Usage
from repro.trace.tracer import TraceRecord


def _raise_recorded(record: TraceRecord) -> None:
    """Re-raise the exception class a recorded call raised."""
    name = record.error or "ReproError"
    if name == "ContextLengthExceededError":
        raise ContextLengthExceededError(
            record.prompt_tokens, record.prompt_tokens, record.model
        )
    cls = getattr(exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            raise cls(f"replayed {name} for call {record.call_id}")
        except TypeError:  # constructors with required structured arguments
            raise ReproError(f"replayed {name} for call {record.call_id}") from None
    raise TraceError(
        f"recorded call {record.call_id} raised non-taxonomy error {name!r}"
    )


class ReplayLLM:
    """An LLM client that answers every call from a recorded trace.

    Attributes:
        default_model: carried from the recorded calls (the session default
            resolution and the cache's key derivation both read it).
        served: how many calls have been answered from the trace so far.
    """

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        self._responses: dict[tuple[str, str], deque[TraceRecord]] = {}
        self._lock = threading.Lock()
        self.served = 0
        self.default_model = records[0].model if records else "default"
        for record in records:
            self._responses.setdefault((record.model, record.prompt), deque()).append(
                record
            )

    @property
    def recorded_calls(self) -> int:
        """How many records the fixture was built from."""
        return sum(len(queue) for queue in self._responses.values())

    # -- LLMClient protocol --------------------------------------------------

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        model_name = model or self.default_model
        with self._lock:
            queue = self._responses.get((model_name, prompt))
            if not queue:
                raise TraceError(
                    f"no recorded response for model {model_name!r} and prompt "
                    f"{prompt[:80]!r}...; the replayed run diverged from the "
                    "recorded one (this would have been a live LLM call)"
                )
            # Replay repeated identical calls in recorded order, but keep the
            # final response available forever: a replayed run may look a
            # prompt up more often than the recorded one did.
            record = queue.popleft() if len(queue) > 1 else queue[0]
            self.served += 1
        if record.error is not None:
            _raise_recorded(record)
        return LLMResponse(
            text=record.response_text or "",
            model=record.model,
            usage=Usage(
                prompt_tokens=record.prompt_tokens,
                completion_tokens=record.completion_tokens,
                calls=1,
            ),
            finish_reason=record.finish_reason,
            confidence=record.confidence,
            metadata={"temperature": temperature, "replayed_call_id": record.call_id},
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        return sequential_complete_batch(
            self, prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )


def replay_trace(records: Iterable[TraceRecord]) -> ReplayLLM:
    """Build a replay fixture from recorded trace records.

    Cache-hit records are included: the recorded response text is the same
    whether the recorded call hit the cache or the model, and a replayed
    run with a cold cache needs the answer either way.
    """
    materialized = [record for record in records if record is not None]
    if not materialized:
        raise TraceError("cannot build a replay fixture from an empty trace")
    return ReplayLLM(sorted(materialized, key=lambda record: record.call_id))
