"""Structured per-call tracing: the audit log of every LLM "worker response".

The paper's declarative-crowdsourcing framing treats each LLM call as one
crowd worker's answer; this module is the corresponding audit trail.  A
:class:`Tracer` hangs off a :class:`~repro.core.session.PromptSession` and
records one :class:`TraceRecord` per call issued through the session —
whoever triggered it (an operator's unit task, a retry attempt, a
validation-sample probe) and whatever happened to it (cache hit, parse
failure, taxonomy exception).

Records live in a bounded, thread-safe ring buffer, so tracing is always on
without ever growing without bound, and are flushed best-effort into the
durable :class:`~repro.store.Store` (``traces`` table) when the session has
one — a store failure can never sink the call that was being traced.

Attribution works through a :mod:`contextvars` label: the engine wraps each
operator run in :func:`trace_label` (``operator="sort:pairwise"``) and each
pipeline step in ``step=<name>``, and the :class:`~repro.core.executor.
BatchExecutor` propagates the ambient context into its worker threads, so a
record knows which step and strategy it served no matter which thread issued
the call.
"""

from __future__ import annotations

import contextvars
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Iterator, Sequence
from uuid import uuid4

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import Store

#: Default ring-buffer capacity: enough for every call of a large pipeline
#: run while bounding memory (records carry full prompt/response text so
#: traces stay replayable).
DEFAULT_CAPACITY = 4096

#: How many unflushed records accumulate before a best-effort store flush.
DEFAULT_FLUSH_EVERY = 32


@dataclass(frozen=True)
class TraceLabels:
    """The ambient attribution labels a call is recorded under."""

    step: str | None = None
    operator: str | None = None


_LABELS: contextvars.ContextVar[TraceLabels] = contextvars.ContextVar(
    "repro_trace_labels", default=TraceLabels()
)


def current_labels() -> TraceLabels:
    """The labels calls issued from this context are attributed to."""
    return _LABELS.get()


@contextmanager
def trace_label(
    *, step: str | None = None, operator: str | None = None
) -> Iterator[TraceLabels]:
    """Attribute calls made inside the block to ``step``/``operator``.

    Unset fields inherit the enclosing label, so a pipeline step label set
    by the scheduler survives the engine nesting an operator label inside.
    """
    current = _LABELS.get()
    merged = TraceLabels(
        step=step if step is not None else current.step,
        operator=operator if operator is not None else current.operator,
    )
    token = _LABELS.set(merged)
    try:
        yield merged
    finally:
        _LABELS.reset(token)


@dataclass
class TraceRecord:
    """One structured record of one LLM call issued through a session.

    Attributes:
        call_id: monotonically increasing id within the tracer.
        step: pipeline step name the call served, when known.
        operator: ``"<operation>:<strategy>"`` label of the operator run the
            call served, when known (the same label the planner's call
            ratios and latency percentiles are keyed by).
        model: model the call was issued against.
        temperature: sampling temperature of the call.
        prompt: the full prompt text (what makes traces replayable).
        response_text: the full response text; ``None`` when the call raised.
        prompt_tokens / completion_tokens: token counts of the call.
        cost: dollars charged for the call under the session's cost model.
        duration_ms: wall-clock duration via ``time.perf_counter`` (batch
            dispatches record the per-response share of the batch duration).
        cache_hit: whether the response came from the response cache.
        attempt: retry attempt index (0 = first try); annotated post-hoc by
            the retry wrapper.
        parse_ok: validator/parse outcome when one applied (``None`` = no
            validator saw the response).
        error: exception class name (the :class:`~repro.exceptions.ReproError`
            taxonomy, normally) when the call raised; ``None`` on success.
        finish_reason / confidence: carried from the response for replay
            fidelity (confidence drives ensemble voting).
        span_id: id of the call's span in the session's span tree, linking
            the flat trace log into the pipeline→wave→step hierarchy.
    """

    call_id: int
    step: str | None = None
    operator: str | None = None
    model: str = ""
    temperature: float = 0.0
    prompt: str = ""
    response_text: str | None = None
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost: float = 0.0
    duration_ms: float = 0.0
    cache_hit: bool = False
    attempt: int = 0
    parse_ok: bool | None = None
    error: str | None = None
    finish_reason: str = "stop"
    confidence: float = 1.0
    span_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict view (JSON-shaped; what the store persists)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


class Tracer:
    """A thread-safe ring buffer of :class:`TraceRecord` objects.

    Args:
        capacity: maximum records retained; older records are evicted FIFO.
        store: optional durable :class:`~repro.store.Store`; records are
            flushed into its ``traces`` table best-effort (failures are
            swallowed — tracing must never sink the traced call).
        flush_every: how many unflushed records trigger an automatic flush.
        on_drop: optional callback invoked with the eviction count each time
            the ring evicts records (the session wires this to the
            ``trace_records_dropped_total`` counter); called outside the
            tracer lock, and its failures are swallowed.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        store: "Store | None" = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        on_drop: Any | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if flush_every <= 0:
            raise ConfigurationError("flush_every must be positive")
        self.capacity = capacity
        self.store = store
        self.flush_every = flush_every
        self.on_drop = on_drop
        #: Distinguishes this tracer's rows from other sessions sharing the
        #: same store file.
        self.origin = uuid4().hex
        self._lock = threading.Lock()
        self._records: OrderedDict[int, TraceRecord] = OrderedDict()
        self._next_id = 0
        self._dirty: set[int] = set()
        self._dropped = 0

    # -- recording ----------------------------------------------------------------

    def record(self, **traced: Any) -> TraceRecord:
        """Append one record; labels default from the ambient trace context."""
        labels = current_labels()
        traced.setdefault("step", labels.step)
        traced.setdefault("operator", labels.operator)
        with self._lock:
            call_id = self._next_id
            self._next_id += 1
            record = TraceRecord(call_id=call_id, **traced)
            self._records[call_id] = record
            self._dirty.add(call_id)
            evictions = 0
            while len(self._records) > self.capacity:
                evicted_id, _ = self._records.popitem(last=False)
                self._dirty.discard(evicted_id)
                self._dropped += 1
                evictions += 1
            should_flush = len(self._dirty) >= self.flush_every
        if evictions and self.on_drop is not None:
            try:
                self.on_drop(evictions)
            except Exception:
                pass
        if should_flush:
            self.flush()
        return record

    def annotate(self, call_id: int, **updates: Any) -> bool:
        """Amend a record post-hoc (retry attempt index, parse outcome).

        Returns whether the record was still in the buffer.  Amended records
        are re-flushed on the next :meth:`flush` (the store upserts by id).
        """
        with self._lock:
            record = self._records.get(call_id)
            if record is None:
                return False
            for key, value in updates.items():
                setattr(record, key, value)
            self._dirty.add(call_id)
            return True

    # -- inspection ---------------------------------------------------------------

    def records(self) -> list[TraceRecord]:
        """A snapshot (copies) of the buffered records, oldest first."""
        with self._lock:
            return [replace(record) for record in self._records.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def dropped(self) -> int:
        """How many records the ring has evicted so far."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Drop every buffered record (the store's rows are untouched)."""
        with self._lock:
            self._records.clear()
            self._dirty.clear()

    def summarize_records(self) -> dict[str, Any]:
        """A lock-consistent aggregate of the buffered records.

        Computed in one pass while holding the tracer's lock — no record
        copies, no torn reads — so a concurrent request handler (the
        service's usage endpoint) can call this while worker threads keep
        recording.  The shape matches the module-level
        :func:`summarize_records`, plus the ring's ``dropped`` count so an
        aggregate over an overflowing buffer is recognisable as partial.
        """
        with self._lock:
            summary = _aggregate(self._records.values())
            summary["dropped"] = self._dropped
        return summary

    # -- persistence --------------------------------------------------------------

    def flush(self) -> int:
        """Best-effort write of unflushed records to the store.

        Returns how many records were written; 0 when there is no store or
        the write failed (the records stay marked dirty for the next try —
        a locked database or full disk must never sink the traced call).
        """
        if self.store is None:
            return 0
        with self._lock:
            pending = [replace(self._records[i]) for i in sorted(self._dirty)]
            if not pending:
                return 0
        try:
            self.store.save_trace_records(pending, origin=self.origin)
        except Exception:
            return 0
        with self._lock:
            self._dirty.difference_update(record.call_id for record in pending)
        return len(pending)


def _aggregate(records: Any) -> dict[str, Any]:
    """Single-pass aggregation over an iterable of records."""
    total = 0
    hits = 0
    errors = 0
    cost = 0.0
    duration_ms = 0.0
    for record in records:
        total += 1
        if record.cache_hit:
            hits += 1
        if record.error is not None:
            errors += 1
        cost += record.cost
        duration_ms += record.duration_ms
    return {
        "calls": total,
        "cache_hits": hits,
        "cache_hit_rate": hits / total if total else 0.0,
        "errors": errors,
        "cost": cost,
        "duration_ms": duration_ms,
    }


def summarize_records(records: Sequence[TraceRecord]) -> dict[str, Any]:
    """Aggregate view of a batch of records (used by docs/examples/tests)."""
    return _aggregate(records)
