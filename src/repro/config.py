"""Global configuration defaults for the repro package.

The defaults live in a small frozen dataclass so that callers can construct a
modified copy (``dataclasses.replace``) instead of mutating global state.  The
values are intentionally conservative: temperature 0 (as used for every case
study in the paper), a fixed random seed so experiments are repeatable, and
the default model names that mirror the ones used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


DEFAULT_SEED = 20240308
DEFAULT_TEMPERATURE = 0.0

# Model-name analogues of the models used in the paper's case studies.
DEFAULT_CHAT_MODEL = "sim-gpt-3.5-turbo"
DEFAULT_LONG_CONTEXT_MODEL = "sim-claude-2"
DEFAULT_CHEAP_MODEL = "sim-small"
DEFAULT_EMBEDDING_MODEL = "sim-embedding-ada-002"


@dataclass(frozen=True)
class ReproConfig:
    """Bundle of defaults used when an explicit value is not supplied.

    Attributes:
        seed: Random seed used by simulated LLM behaviours and data generators.
        temperature: Sampling temperature; the paper sets 0 for all case studies.
        chat_model: Default chat model for unit tasks.
        long_context_model: Default model for long single-prompt tasks.
        cheap_model: Default low-cost model used by cascades.
        embedding_model: Default embedding model for blocking / k-NN neighbors.
        max_retries: How often a failed/ill-formed response is retried.
        extras: Free-form per-experiment overrides.
    """

    seed: int = DEFAULT_SEED
    temperature: float = DEFAULT_TEMPERATURE
    chat_model: str = DEFAULT_CHAT_MODEL
    long_context_model: str = DEFAULT_LONG_CONTEXT_MODEL
    cheap_model: str = DEFAULT_CHEAP_MODEL
    embedding_model: str = DEFAULT_EMBEDDING_MODEL
    max_retries: int = 2
    extras: dict[str, Any] = field(default_factory=dict)

    def with_overrides(self, **kwargs: Any) -> "ReproConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


#: Module-level default configuration.  Treat as read-only; derive copies with
#: :meth:`ReproConfig.with_overrides` when an experiment needs different values.
DEFAULT_CONFIG = ReproConfig()
