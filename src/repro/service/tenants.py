"""Tenants: one API key, one isolated execution universe.

The service multiplexes many callers over one process and one store file,
but the paper's economics are *per customer*: each tenant pays for its own
LLM calls, benefits from its own cache hits, and is throttled by its own
rate envelope.  A :class:`Tenant` therefore owns a full
:class:`~repro.core.session.PromptSession` — its own
:class:`~repro.core.budget.Budget`, its own
:class:`~repro.core.governor.ConcurrencyGovernor`, its own store namespace
(:class:`~repro.store.StoreNamespace`), its own tracer and runtime stats —
and a :class:`~repro.core.engine.DeclarativeEngine` running over it.
Nothing observable crosses tenants except the shared database file and the
shared LLM client underneath.

:class:`TenantRegistry` maps API keys to tenants, constructing each tenant's
universe lazily on first authentication and caching it for the process
lifetime (a tenant's budget is process-lifetime state: re-building the
session per request would forget the spend).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.governor import ConcurrencyGovernor
from repro.core.session import PromptSession
from repro.exceptions import ConfigurationError
from repro.llm.base import LLMClient
from repro.obs import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.registry import ModelRegistry
    from repro.store import Store


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's declared envelope.

    Attributes:
        tenant_id: stable identifier; the store namespace and job owner.
        api_key: the secret presented in the ``x-api-key`` header.
        budget_dollars: lifetime spend cap; ``None`` means unlimited.
        rpm / tpm / max_in_flight: this tenant's governor envelope; all
            ``None`` means no governor (unthrottled).
        max_concurrency: scheduler width for this tenant's pipelines.
        max_queue_depth: admission cap on queued-plus-running jobs.
        default_model: model the tenant's engine plans against.
    """

    tenant_id: str
    api_key: str
    budget_dollars: float | None = None
    rpm: float | None = None
    tpm: float | None = None
    max_in_flight: int | None = None
    max_concurrency: int = 4
    max_queue_depth: int = 16
    default_model: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if not self.api_key:
            raise ConfigurationError(f"tenant {self.tenant_id!r} needs an api_key")
        if self.max_queue_depth <= 0:
            raise ConfigurationError("max_queue_depth must be positive")
        if self.max_concurrency <= 0:
            raise ConfigurationError("max_concurrency must be positive")


class Tenant:
    """One tenant's live execution universe (session + engine + governor)."""

    def __init__(
        self,
        config: TenantConfig,
        *,
        client: LLMClient,
        store: "Store | None",
        registry: "ModelRegistry | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        governor: ConcurrencyGovernor | None = None
        if (
            config.rpm is not None
            or config.tpm is not None
            or config.max_in_flight is not None
        ):
            governor = ConcurrencyGovernor(
                rpm=config.rpm, tpm=config.tpm, max_in_flight=config.max_in_flight
            )
        self.governor = governor
        namespaced = store.namespace(config.tenant_id) if store is not None else None
        self.session = PromptSession(
            client,
            registry=registry,
            budget=Budget(limit=config.budget_dollars),
            max_concurrency=config.max_concurrency,
            governor=governor,
            store=namespaced,
            metrics=metrics,
            tenant_label=config.tenant_id,
        )
        self.engine = DeclarativeEngine.from_session(
            self.session, default_model=config.default_model
        )

    @property
    def tenant_id(self) -> str:
        return self.config.tenant_id

    def usage_snapshot(self) -> dict[str, Any]:
        """The tenant's usage view: spend, governor stats, trace summary.

        Every component read here is a lock-consistent snapshot
        (:meth:`ConcurrencyGovernor.stats_snapshot`,
        :meth:`~repro.trace.Tracer.summarize_records`), so concurrent
        request handlers can poll usage while the tenant's pipelines run.
        """
        budget = self.session.budget
        cache_stats = getattr(self.session.cache, "stats", None)
        return {
            "tenant": self.tenant_id,
            "budget": {
                "limit": budget.limit,
                "spent": budget.spent,
                "remaining": None if budget.unlimited else budget.remaining,
                "unlimited": budget.unlimited,
            },
            "governor": (
                None if self.governor is None else self.governor.stats_snapshot().to_dict()
            ),
            "traces": self.session.tracer.summarize_records(),
            "cache": (
                None
                if cache_stats is None
                else {"hits": cache_stats.hits, "misses": cache_stats.misses}
            ),
        }


class TenantRegistry:
    """API-key authentication and lazy tenant construction.

    Args:
        client: the shared LLM client every tenant's session wraps (each
            tenant adds its own cache/budget/governor around it).
        configs: the declared tenants.
        store: optional shared durable store; each tenant gets its own
            namespace view of it.
        registry: optional shared model registry.
    """

    def __init__(
        self,
        client: LLMClient,
        configs: Iterable[TenantConfig],
        *,
        store: "Store | None" = None,
        registry: "ModelRegistry | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._client = client
        self._store = store
        self._registry = registry
        #: One registry across every tenant: series are kept apart by the
        #: ``tenant`` label, and ``GET /metrics`` renders them all at once.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._configs: dict[str, TenantConfig] = {}
        self._by_key: dict[str, str] = {}
        for config in configs:
            if config.tenant_id in self._configs:
                raise ConfigurationError(f"duplicate tenant id {config.tenant_id!r}")
            if config.api_key in self._by_key:
                raise ConfigurationError(
                    f"api key of tenant {config.tenant_id!r} collides with "
                    f"tenant {self._by_key[config.api_key]!r}"
                )
            self._configs[config.tenant_id] = config
            self._by_key[config.api_key] = config.tenant_id
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    @property
    def store(self) -> "Store | None":
        return self._store

    def tenant_ids(self) -> list[str]:
        return sorted(self._configs)

    def authenticate(self, api_key: str | None) -> Tenant | None:
        """The tenant owning ``api_key``, or ``None`` (reject the request)."""
        if not api_key:
            return None
        tenant_id = self._by_key.get(api_key)
        return None if tenant_id is None else self.get(tenant_id)

    def get(self, tenant_id: str) -> Tenant | None:
        """The tenant by id, constructing its universe on first use."""
        if tenant_id not in self._configs:
            return None
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                tenant = Tenant(
                    self._configs[tenant_id],
                    client=self._client,
                    store=self._store,
                    registry=self._registry,
                    metrics=self.metrics,
                )
                self._tenants[tenant_id] = tenant
            return tenant


__all__ = ["Tenant", "TenantConfig", "TenantRegistry"]
