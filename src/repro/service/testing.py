"""An in-process ASGI test client (no sockets, no server, no extras).

:class:`ServiceClient` speaks the ASGI protocol directly at a
:class:`~repro.service.app.ServiceApp` (or any ASGI callable): it builds the
``scope``, feeds the request body through ``receive``, and collects what the
app ``send``s.  That keeps the tier-1 service tests fully in-process — the
whole submit/poll/stream lifecycle runs inside one ``asyncio.run`` — while
exercising exactly the protocol surface a real ASGI server would.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ClientResponse:
    """One collected HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> Any:
        return json.loads(self.text)

    def sse_events(self) -> list[Any]:
        """Parse a ``text/event-stream`` body into its ``data:`` payloads."""
        events: list[Any] = []
        for line in self.text.splitlines():
            if line.startswith("data: "):
                events.append(json.loads(line[len("data: ") :]))
        return events


class ServiceClient:
    """Drives an ASGI app in-process (see module docstring).

    Args:
        app: the ASGI callable under test.
        api_key: default ``x-api-key`` attached to every request; override
            per call (or pass ``api_key=None``) to impersonate nobody.
    """

    def __init__(self, app: Any, *, api_key: str | None = None) -> None:
        self.app = app
        self.api_key = api_key

    async def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Any = None,
        api_key: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        """Run one full request/response cycle through the app."""
        body = b"" if json_body is None else json.dumps(json_body).encode("utf-8")
        header_list: list[tuple[bytes, bytes]] = []
        key = api_key if api_key is not None else self.api_key
        if key:
            header_list.append((b"x-api-key", key.encode("latin-1")))
        if json_body is not None:
            header_list.append((b"content-type", b"application/json"))
        for name, value in (headers or {}).items():
            header_list.append((name.encode("latin-1"), value.encode("latin-1")))
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": b"",
            "headers": header_list,
            "client": ("testclient", 0),
            "server": ("testserver", 80),
        }
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False}
        ]

        async def receive() -> dict[str, Any]:
            if request_messages:
                return request_messages.pop(0)
            return {"type": "http.disconnect"}

        response = ClientResponse(status=0)
        chunks: list[bytes] = []

        async def send(message: dict[str, Any]) -> None:
            if message["type"] == "http.response.start":
                response.status = message["status"]
                response.headers = {
                    name.decode("latin-1"): value.decode("latin-1")
                    for name, value in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        response.body = b"".join(chunks)
        return response

    async def get(self, path: str, **kwargs: Any) -> ClientResponse:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, **kwargs: Any) -> ClientResponse:
        return await self.request("POST", path, **kwargs)

    # -- lifespan -----------------------------------------------------------------

    async def lifespan_startup(self) -> None:
        """Drive the app's lifespan startup (returns once it completes)."""
        await self._lifespan_event("lifespan.startup")

    async def lifespan_shutdown(self) -> None:
        """Drive the app's lifespan shutdown (returns once it completes)."""
        await self._lifespan_event("lifespan.shutdown")

    async def _lifespan_event(self, event: str) -> None:
        messages = [{"type": event}]
        completions: list[dict[str, Any]] = []

        async def receive() -> dict[str, Any]:
            if messages:
                return messages.pop(0)
            # One event per drive; the app's lifespan loop would otherwise
            # wait forever for the next message.
            raise _LifespanDone()

        async def send(message: dict[str, Any]) -> None:
            completions.append(message)

        try:
            await self.app({"type": "lifespan", "asgi": {"version": "3.0"}}, receive, send)
        except _LifespanDone:
            pass
        failed = [m for m in completions if m["type"].endswith(".failed")]
        if failed:
            raise RuntimeError(f"lifespan {event} failed: {failed[0].get('message')}")


class _LifespanDone(Exception):
    """Internal: unwinds the app's lifespan loop after a single event."""


__all__ = ["ClientResponse", "ServiceClient"]
