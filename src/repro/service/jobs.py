"""The job manager: accepted pipelines as durable, observable jobs.

Submission returns immediately with a job id; execution happens on the
asyncio scheduler (:meth:`~repro.core.engine.DeclarativeEngine.
run_pipeline_async`), bounded by a service-wide slot semaphore so a burst of
submissions queues instead of oversubscribing the process.  Every lifecycle
transition — accepted, started, each settled step, the outcome — is
persisted to the store's ``jobs`` table *as it happens*, which is what makes
the service crash-honest:

* a killed process leaves its in-flight jobs marked ``stopped`` +
  ``resumable`` (the cancellation handler persists before the loop dies),
  or at worst ``running`` — never silently lost;
* :meth:`JobManager.recover` (called at startup) re-enqueues every
  non-terminal job from the table, and the engine's content-addressed
  checkpoints guarantee the re-run restores finished steps instead of
  re-paying for them — kill/restart costs zero doubled LLM calls.

Step events reach pollers through a per-job event list plus an
``asyncio.Event`` pulse (replaced on every notify), so any number of
streaming readers can wait without polling loops; the engine's ``on_step``
callback crosses from worker threads onto the loop via
``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, AsyncIterator
from uuid import uuid4

from repro.core.planner import PipelineQuote
from repro.core.spec import PipelineSpec
from repro.core.spec_codec import pipeline_from_json, pipeline_to_json
from repro.store.jobs import JobRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workflow import StepReport
    from repro.service.tenants import Tenant, TenantRegistry


@dataclass
class _LiveJob:
    """In-memory state of a job this process is (or was) running."""

    record: JobRecord
    events: list[dict[str, Any]] = field(default_factory=list)
    signal: asyncio.Event = field(default_factory=asyncio.Event)
    done: bool = False


class JobManager:
    """Runs accepted pipelines as jobs (see module docstring).

    Args:
        registry: the tenant registry; supplies each job's engine and the
            shared store the job table lives in.
        max_active: service-wide cap on concurrently *executing* jobs
            (additional accepted jobs wait in ``queued``).
    """

    def __init__(self, registry: "TenantRegistry", *, max_active: int = 4) -> None:
        if max_active <= 0:
            raise ValueError("max_active must be positive")
        self.registry = registry
        self.store = registry.store
        self._slots = asyncio.Semaphore(max_active)
        self._jobs: dict[str, _LiveJob] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._draining = False

    # -- submission ---------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (new submissions must be refused)."""
        return self._draining

    def submit(
        self,
        tenant: "Tenant",
        pipeline: PipelineSpec,
        *,
        quote: PipelineQuote | None = None,
    ) -> JobRecord:
        """Accept one pipeline as a new job; returns the queued record.

        Admission has already happened — the manager never refuses work
        except while draining (callers check :attr:`draining` first).
        """
        if self._draining:
            raise RuntimeError("job manager is draining; not accepting submissions")
        record = JobRecord(
            job_id=uuid4().hex,
            tenant=tenant.tenant_id,
            status="queued",
            pipeline_json=pipeline_to_json(pipeline),
            quote=None if quote is None else quote.to_dict(),
        )
        self._enqueue(record, tenant, pipeline, quote)
        return record

    def _enqueue(
        self,
        record: JobRecord,
        tenant: "Tenant",
        pipeline: PipelineSpec,
        quote: PipelineQuote | None,
    ) -> None:
        live = _LiveJob(record=record)
        self._jobs[record.job_id] = live
        self._persist(record)
        self._note_transition(tenant, "queued")
        self._notify(live, {"event": "status", "status": record.status})
        task = asyncio.get_running_loop().create_task(
            self._run(live, tenant, pipeline, quote), name=f"job-{record.job_id}"
        )
        self._tasks[record.job_id] = task
        task.add_done_callback(lambda _t: self._tasks.pop(record.job_id, None))

    # -- execution ----------------------------------------------------------------

    async def _run(
        self,
        live: _LiveJob,
        tenant: "Tenant",
        pipeline: PipelineSpec,
        quote: PipelineQuote | None,
    ) -> None:
        record = live.record
        started = False
        try:
            async with self._slots:
                record.status = "running"
                self._persist(record)
                self._note_transition(tenant, "running")
                self._note_active(tenant, +1)
                started = True
                self._notify(live, {"event": "status", "status": "running"})
                loop = asyncio.get_running_loop()

                def on_step(step_report: "StepReport") -> None:
                    # Fired from the scheduler.  On the loop thread, note the
                    # step synchronously — a deferred call_soon would let the
                    # final wave's step events land *after* the "done" event.
                    # From a worker thread, cross over threadsafely.
                    payload = step_report.to_dict()
                    try:
                        running = asyncio.get_running_loop()
                    except RuntimeError:
                        running = None
                    if running is loop:
                        self._note_step(live, payload)
                    else:
                        loop.call_soon_threadsafe(self._note_step, live, payload)

                report = await tenant.engine.run_pipeline_async(
                    pipeline,
                    quote=quote,
                    max_concurrency=tenant.config.max_concurrency,
                    on_step=on_step,
                )
                record.report = report.to_dict()
                for name, step in record.report["step_reports"].items():
                    record.steps[name] = step
                if report.stopped_early:
                    # A clean budget stop: completed results are kept, the
                    # reason is on the report.  Not resumable — re-running
                    # cannot help until the tenant's budget grows.
                    record.status = "stopped"
                    record.resumable = False
                    record.error = report.stop_reason
                else:
                    record.status = "succeeded"
        except asyncio.CancelledError:
            # Shutdown (or a dying event loop) cancelled us mid-run.  Every
            # completed step is already checkpointed; say so durably.
            record.status = "stopped"
            record.resumable = True
            record.error = "service stopped mid-run; checkpoints preserved"
            self._persist(record)
            self._settle(tenant, record.status, started)
            self._finish(live)
            raise
        except Exception as exc:  # noqa: BLE001 - the job row carries the error
            record.status = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
        self._persist(record)
        self._settle(tenant, record.status, started)
        self._finish(live)

    def _note_transition(self, tenant: "Tenant", status: str) -> None:
        """Count a lifecycle transition in the tenant's metrics (best effort)."""
        instruments = getattr(tenant.session, "instruments", None)
        if instruments is not None:
            instruments.note_job(status)

    def _note_active(self, tenant: "Tenant", delta: int) -> None:
        instruments = getattr(tenant.session, "instruments", None)
        if instruments is None:
            return
        if delta > 0:
            instruments.note_job_started()
        else:
            instruments.note_job_finished()

    def _settle(self, tenant: "Tenant", status: str, started: bool) -> None:
        """Record a job's terminal transition and release the active gauge."""
        self._note_transition(tenant, status)
        if started:
            self._note_active(tenant, -1)

    def _note_step(self, live: _LiveJob, step: dict[str, Any]) -> None:
        live.record.steps[str(step.get("name"))] = step
        self._persist(live.record)
        self._notify(live, {"event": "step", "step": step})

    def _notify(self, live: _LiveJob, event: dict[str, Any]) -> None:
        live.events.append(event)
        signal = live.signal
        live.signal = asyncio.Event()
        signal.set()

    def _finish(self, live: _LiveJob) -> None:
        live.done = True
        self._notify(live, _done_event(live.record))

    def _persist(self, record: JobRecord) -> None:
        if self.store is None:
            return
        try:
            self.store.save_job(record)
        except Exception:
            # Persistence is the crash story, not the request path; a
            # locked database must not fail the job that is running fine.
            pass

    # -- observation --------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """The job's current record: live memory first, then the store."""
        live = self._jobs.get(job_id)
        if live is not None:
            return live.record
        return None if self.store is None else self.store.load_job(job_id)

    def active_count(self, tenant_id: str) -> int:
        """Queued-plus-running jobs of one tenant (the admission input)."""
        return sum(
            1
            for live in self._jobs.values()
            if live.record.tenant == tenant_id
            and live.record.status in ("queued", "running")
        )

    async def stream_events(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Yield a job's events from the beginning until it settles.

        For a job finished in a previous process (store row only), yields
        its persisted steps and a final ``done`` event.
        """
        live = self._jobs.get(job_id)
        if live is None:
            record = None if self.store is None else self.store.load_job(job_id)
            if record is None:
                return
            for step in record.steps.values():
                yield {"event": "step", "step": step}
            yield _done_event(record)
            return
        index = 0
        while True:
            signal = live.signal
            if index < len(live.events):
                event = live.events[index]
                index += 1
                yield event
                if event.get("event") == "done":
                    return
                continue
            if live.done:
                return
            await signal.wait()

    # -- lifecycle ----------------------------------------------------------------

    def recover(self) -> list[str]:
        """Re-enqueue every resumable job left behind by a previous process.

        Anything ``queued``/``running`` (the process died without even a
        cancellation handler) or ``stopped`` + ``resumable`` (a graceful
        drain marked it) is re-submitted under its original job id; the
        tenant's checkpoints restore finished steps with zero LLM calls.
        Budget-stopped and terminal jobs stay as they are.  Returns the
        re-enqueued job ids.
        """
        if self.store is None:
            return []
        resumed: list[str] = []
        for record in self.store.list_jobs():
            if record.job_id in self._jobs or record.terminal:
                continue
            if record.status == "stopped" and not record.resumable:
                continue
            tenant = self.registry.get(record.tenant)
            if tenant is None:
                record.status = "failed"
                record.error = f"tenant {record.tenant!r} is no longer configured"
                self._persist(record)
                continue
            try:
                pipeline = pipeline_from_json(record.pipeline_json)
                pipeline.validate()
            except Exception as exc:  # noqa: BLE001 - recorded on the job row
                record.status = "failed"
                record.error = f"stored pipeline unreadable: {exc}"
                self._persist(record)
                continue
            record.status = "queued"
            record.resumable = False
            record.error = None
            self._enqueue(record, tenant, pipeline, None)
            resumed.append(record.job_id)
        return resumed

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting work; finish or cleanly stop what is in flight.

        With ``drain=True`` (the default) in-flight jobs run to completion.
        Without it they are cancelled, which routes each through the
        ``stopped`` + ``resumable`` persistence path — the fast shutdown
        loses no work, only defers it to the next process's recover().
        """
        self._draining = True
        tasks = list(self._tasks.values())
        if not drain:
            for task in tasks:
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def _done_event(record: JobRecord) -> dict[str, Any]:
    """The terminal SSE event, with the run's root span as correlation id.

    ``span_id`` lets a client join the job's outcome against the persisted
    ``spans`` table (and any step events it collected, which carry their
    own ``span_id``); ``notes`` surfaces the report's operational warnings.
    """
    report = record.report or {}
    return {
        "event": "done",
        "status": record.status,
        "resumable": record.resumable,
        "error": record.error,
        "span_id": report.get("span_id"),
        "notes": list(report.get("notes", ())),
    }


__all__ = ["JobManager"]
