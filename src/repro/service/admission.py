"""Admission control: price the work before any of it is paid for.

The declarative-crowdsourcing framing makes this possible: because a
submitted pipeline is *data* (specs, not code), the
:class:`~repro.core.planner.CostPlanner` can quote its whole cost a priori —
and the service can therefore refuse work that cannot finish under the
tenant's remaining budget **before a single LLM call is spent on it**.
That is the admission controller's contract, and the test suite holds it to
"zero calls on rejection".

Two gates, in order:

1. **Queue depth** — a tenant with ``max_queue_depth`` jobs already queued
   or running gets ``429`` (retry later); queue pressure is checked first
   because it is free to evaluate.
2. **Budget** — the pipeline's quote (computed here if the caller has not
   already) is compared against the tenant's remaining dollars, tightened
   by the pipeline's own ``budget_dollars`` cap when that is smaller.  An
   unpayable quote gets ``402`` with the full quote attached, so the caller
   sees exactly what the work would have cost.

Quotes are estimates, not guarantees: an admitted pipeline can still stop
early if execution proves costlier than planned — the per-step budget
leases of :mod:`repro.core.workflow` handle that containment at run time.
Admission only promises the *cheap, certain* rejections happen up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.planner import PipelineQuote
from repro.core.spec import PipelineSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.tenants import Tenant


@dataclass
class AdmissionDecision:
    """The outcome of reviewing one submission.

    Attributes:
        admitted: whether the job may be enqueued.
        status_code: HTTP status the service should answer with (``202``
            accepted, ``402`` over budget, ``429`` queue full).
        reason: human-readable explanation (error body on rejection).
        quote: the priced quote's dict — always attached when a quote was
            computed, so even a rejected caller learns the price.
    """

    admitted: bool
    status_code: int = 202
    reason: str = ""
    quote: dict[str, Any] | None = field(default=None)


class AdmissionController:
    """Reviews pipeline submissions against tenant envelopes (see module doc)."""

    def review(
        self,
        tenant: "Tenant",
        pipeline: PipelineSpec,
        *,
        active_jobs: int,
        quote: PipelineQuote | None = None,
    ) -> tuple[AdmissionDecision, PipelineQuote]:
        """Review one submission; returns the decision and the quote.

        The quote is returned even on rejection (and on queue-full, where
        it is still computed — the caller paid an HTTP round trip and
        deserves the price).  Quoting itself makes no LLM calls.
        """
        if quote is None:
            quote = tenant.engine.quote_pipeline(pipeline)
        quote_dict = quote.to_dict()
        config = tenant.config
        if active_jobs >= config.max_queue_depth:
            return (
                AdmissionDecision(
                    admitted=False,
                    status_code=429,
                    reason=(
                        f"tenant {tenant.tenant_id!r} already has {active_jobs} "
                        f"active job(s); queue depth is {config.max_queue_depth}"
                    ),
                    quote=quote_dict,
                ),
                quote,
            )
        budget = tenant.session.budget
        available = None if budget.unlimited else budget.remaining
        if pipeline.budget_dollars is not None:
            available = (
                pipeline.budget_dollars
                if available is None
                else min(available, pipeline.budget_dollars)
            )
        if available is not None and quote.total_dollars > available:
            return (
                AdmissionDecision(
                    admitted=False,
                    status_code=402,
                    reason=(
                        f"pipeline {pipeline.name!r} quotes "
                        f"${quote.total_dollars:.6f} but only ${available:.6f} "
                        f"is available to tenant {tenant.tenant_id!r}"
                    ),
                    quote=quote_dict,
                ),
                quote,
            )
        return AdmissionDecision(admitted=True, quote=quote_dict), quote


__all__ = ["AdmissionController", "AdmissionDecision"]
