"""The ASGI application: the engine's versioned HTTP surface.

Stdlib-only by design — the app is a plain callable implementing the ASGI
protocol (``scope``/``receive``/``send``), so the tier-1 test suite drives
it fully in-process through :class:`~repro.service.testing.ServiceClient`,
and production deployments point any ASGI server at it
(:mod:`repro.service.runner` wires uvicorn when that extra is installed).

Endpoints (all JSON; authentication is the ``x-api-key`` header):

========  =============================  ==========================================
method    path                           semantics
========  =============================  ==========================================
POST      ``/v1/pipelines``              submit a pipeline (JSON wire form) as a
                                         job; admission-checked, returns ``202``
                                         with the job id and the quote
POST      ``/v1/pipelines/quote``        price a pipeline without running it
GET       ``/v1/jobs/{id}``              the job's status, settled steps, report
GET       ``/v1/jobs/{id}/events``       SSE stream of lifecycle + step events
GET       ``/v1/tenants/{id}/usage``     the tenant's spend / governor / traces
GET       ``/metrics``                   Prometheus text exposition of every
                                         tenant's operational series
                                         (unauthenticated: scrapers carry no
                                         tenant key, and the exposition holds
                                         counts, never payloads)
========  =============================  ==========================================

Tenancy rules: a job is visible only to the tenant that submitted it (other
tenants get ``404``, not ``403`` — existence is not leaked), and a tenant
may read only its own usage.  Admission answers ``402`` (over budget, quote
attached) or ``429`` (queue full) before any LLM call is made; a draining
app answers ``503``.
"""

from __future__ import annotations

import json
from typing import Any, Awaitable, Callable

from repro.core.spec_codec import pipeline_from_dict
from repro.exceptions import ReproError, SpecError
from repro.service.admission import AdmissionController
from repro.service.jobs import JobManager
from repro.service.tenants import Tenant, TenantRegistry

Scope = dict[str, Any]
Receive = Callable[[], Awaitable[dict[str, Any]]]
Send = Callable[[dict[str, Any]], Awaitable[None]]

_JSON_HEADERS = [(b"content-type", b"application/json")]
_SSE_HEADERS = [
    (b"content-type", b"text/event-stream"),
    (b"cache-control", b"no-cache"),
]
_METRICS_HEADERS = [
    (b"content-type", b"text/plain; version=0.0.4; charset=utf-8"),
]


class ServiceApp:
    """The multi-tenant pipeline service as one ASGI callable.

    Args:
        registry: the tenant registry (authentication + per-tenant engines).
        max_active_jobs: service-wide cap on concurrently executing jobs.
        admission: override the admission controller (tests inject one).
    """

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        max_active_jobs: int = 4,
        admission: AdmissionController | None = None,
    ) -> None:
        self.registry = registry
        self.admission = admission or AdmissionController()
        self.jobs = JobManager(registry, max_active=max_active_jobs)

    # -- lifecycle ----------------------------------------------------------------

    def startup(self) -> list[str]:
        """Recover jobs a previous process left unfinished (see JobManager).

        Called by the lifespan handler; in-process harnesses that skip the
        lifespan protocol call it directly.  Requires a running event loop.
        """
        return self.jobs.recover()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Graceful stop: refuse new work, then drain (or cleanly cancel)."""
        await self.jobs.shutdown(drain=drain)

    # -- ASGI entry ---------------------------------------------------------------

    async def __call__(self, scope: Scope, receive: Receive, send: Send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")
        await self._http(scope, receive, send)

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    self.startup()
                except Exception as exc:  # noqa: BLE001 - reported to the server
                    await send(
                        {"type": "lifespan.startup.failed", "message": str(exc)}
                    )
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- http ---------------------------------------------------------------------

    async def _http(self, scope: Scope, receive: Receive, send: Send) -> None:
        method = scope["method"].upper()
        path = scope["path"]
        headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in scope.get("headers", [])
        }
        # Prometheus scrapers carry no tenant credential; the exposition
        # is operational (counts and durations, no payloads), so /metrics
        # is matched before authentication.
        if method == "GET" and path == "/metrics":
            await self._metrics(send)
            return

        tenant = self.registry.authenticate(headers.get("x-api-key"))
        if tenant is None:
            await _respond(
                send, 401, _error("unauthorized", "missing or unknown x-api-key")
            )
            return

        if method == "POST" and path == "/v1/pipelines":
            await self._submit(tenant, receive, send)
        elif method == "POST" and path == "/v1/pipelines/quote":
            await self._quote(tenant, receive, send)
        elif method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/events"):
                await self._events(tenant, rest[: -len("/events")], send)
            else:
                await self._job_status(tenant, rest, send)
        elif method == "GET" and path.startswith("/v1/tenants/") and path.endswith(
            "/usage"
        ):
            tenant_id = path[len("/v1/tenants/") : -len("/usage")]
            await self._usage(tenant, tenant_id, send)
        else:
            await _respond(send, 404, _error("not_found", f"no route for {method} {path}"))

    async def _submit(self, tenant: Tenant, receive: Receive, send: Send) -> None:
        pipeline = await self._parse_pipeline(receive, send)
        if pipeline is None:
            return
        if self.jobs.draining:
            await _respond(
                send, 503, _error("draining", "service is shutting down; retry later")
            )
            return
        try:
            decision, quote = self.admission.review(
                tenant,
                pipeline,
                active_jobs=self.jobs.active_count(tenant.tenant_id),
            )
        except ReproError as exc:
            await _respond(send, 400, _error("unquotable", str(exc)))
            return
        if not decision.admitted:
            body = _error("rejected", decision.reason)
            body["quote"] = decision.quote
            await _respond(send, decision.status_code, body)
            return
        record = self.jobs.submit(tenant, pipeline, quote=quote)
        await _respond(
            send,
            202,
            {"job_id": record.job_id, "status": record.status, "quote": decision.quote},
        )

    async def _quote(self, tenant: Tenant, receive: Receive, send: Send) -> None:
        pipeline = await self._parse_pipeline(receive, send)
        if pipeline is None:
            return
        try:
            quote = tenant.engine.quote_pipeline(pipeline)
        except ReproError as exc:
            await _respond(send, 400, _error("unquotable", str(exc)))
            return
        await _respond(send, 200, {"pipeline": pipeline.name, "quote": quote.to_dict()})

    async def _job_status(self, tenant: Tenant, job_id: str, send: Send) -> None:
        record = self.jobs.get(job_id)
        if record is None or record.tenant != tenant.tenant_id:
            # The same 404 for "does not exist" and "not yours": job ids
            # must not be probeable across tenants.
            await _respond(send, 404, _error("not_found", f"no job {job_id!r}"))
            return
        await _respond(send, 200, record.to_dict())

    async def _events(self, tenant: Tenant, job_id: str, send: Send) -> None:
        record = self.jobs.get(job_id)
        if record is None or record.tenant != tenant.tenant_id:
            await _respond(send, 404, _error("not_found", f"no job {job_id!r}"))
            return
        await send(
            {"type": "http.response.start", "status": 200, "headers": _SSE_HEADERS}
        )
        async for event in self.jobs.stream_events(job_id):
            payload = f"data: {json.dumps(event, sort_keys=True)}\n\n"
            await send(
                {
                    "type": "http.response.body",
                    "body": payload.encode("utf-8"),
                    "more_body": True,
                }
            )
        await send({"type": "http.response.body", "body": b"", "more_body": False})

    async def _usage(self, tenant: Tenant, tenant_id: str, send: Send) -> None:
        if tenant_id != tenant.tenant_id:
            await _respond(
                send,
                403,
                _error("forbidden", "a tenant may only read its own usage"),
            )
            return
        snapshot = tenant.usage_snapshot()
        snapshot["jobs"] = {"active": self.jobs.active_count(tenant.tenant_id)}
        await _respond(send, 200, snapshot)

    async def _metrics(self, send: Send) -> None:
        """Prometheus text exposition of the shared metrics registry."""
        body = self.registry.metrics.render().encode("utf-8")
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": _METRICS_HEADERS,
            }
        )
        await send({"type": "http.response.body", "body": body, "more_body": False})

    async def _parse_pipeline(self, receive: Receive, send: Send):
        body = await _read_body(receive)
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await _respond(send, 400, _error("malformed_json", str(exc)))
            return None
        try:
            pipeline = pipeline_from_dict(data)
            pipeline.validate()
        except SpecError as exc:
            await _respond(send, 400, _error("invalid_pipeline", str(exc)))
            return None
        return pipeline


def _error(code: str, message: str) -> dict[str, Any]:
    return {"error": {"code": code, "message": message}}


async def _read_body(receive: Receive) -> bytes:
    chunks: list[bytes] = []
    while True:
        message = await receive()
        if message["type"] != "http.request":
            continue
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            return b"".join(chunks)


async def _respond(send: Send, status: int, body: dict[str, Any]) -> None:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    await send(
        {"type": "http.response.start", "status": status, "headers": _JSON_HEADERS}
    )
    await send({"type": "http.response.body", "body": payload, "more_body": False})


__all__ = ["ServiceApp"]
