"""The multi-tenant HTTP service layer: sessions and pipelines as jobs.

This package puts the whole declarative engine behind a versioned HTTP API
without adding a single hard dependency: :class:`ServiceApp` is a plain
ASGI callable (stdlib only), :class:`~repro.service.testing.ServiceClient`
drives it fully in-process for tests and examples, and
:func:`~repro.service.runner.serve` wires up uvicorn when the optional
``serve`` extra is installed.

The moving parts, bottom-up:

* :class:`TenantConfig` / :class:`TenantRegistry` — one API key, one
  isolated universe: own budget, own governor envelope, own store
  namespace, own cache/tracer/stats (:mod:`repro.service.tenants`).
* :class:`AdmissionController` — prices submissions with the cost planner
  and rejects over-budget or over-queue work *before any LLM call*
  (:mod:`repro.service.admission`).
* :class:`JobManager` — runs accepted pipelines on the asyncio scheduler,
  persists every lifecycle transition to the store's job table, streams
  step events, drains gracefully, and resumes interrupted jobs from
  checkpoints at startup (:mod:`repro.service.jobs`).
* :class:`ServiceApp` — the ASGI routing/auth/serialisation shell over all
  of the above (:mod:`repro.service.app`).

See ``docs/api.md`` ("The HTTP service layer") and
``examples/serve_pipelines.py`` for the guided tour.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.app import ServiceApp
from repro.service.jobs import JobManager
from repro.service.runner import serve
from repro.service.tenants import Tenant, TenantConfig, TenantRegistry
from repro.service.testing import ClientResponse, ServiceClient

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ClientResponse",
    "JobManager",
    "ServiceApp",
    "ServiceClient",
    "Tenant",
    "TenantConfig",
    "TenantRegistry",
    "serve",
]
