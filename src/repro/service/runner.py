"""Run the service under uvicorn — the only optional-dependency corner.

The library's hard rule is "stdlib only"; serving real sockets is the one
place that genuinely wants a production ASGI server.  ``pip install
repro[serve]`` pulls uvicorn in; without it, :func:`serve` raises a
:class:`~repro.exceptions.ConfigurationError` naming the extra, and nothing
else in :mod:`repro.service` (the app, the job manager, the in-process test
client) ever imports it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import ServiceApp


def serve(app: "ServiceApp", *, host: str = "127.0.0.1", port: int = 8351) -> None:
    """Serve ``app`` over real sockets (blocks until interrupted).

    Requires the ``serve`` extra (``pip install repro[serve]``).
    """
    try:
        import uvicorn
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ConfigurationError(
            "serving over sockets needs uvicorn; install the 'serve' extra "
            "(pip install repro[serve]) or drive the app in-process with "
            "repro.service.testing.ServiceClient"
        ) from exc
    uvicorn.run(app, host=host, port=port, lifespan="on")  # pragma: no cover


__all__ = ["serve"]
