"""A small deterministic tokenizer used for token accounting.

Real LLM providers charge per BPE token.  We approximate BPE with a rule that
is close in aggregate: words are split into chunks of at most four characters,
and punctuation/whitespace boundaries start new tokens.  The resulting counts
track the usual "one token is roughly four characters of English" heuristic,
which is all the cost model needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_WORD_RE = re.compile(r"\w+|[^\w\s]", re.UNICODE)

#: Maximum number of characters folded into a single token chunk.
_CHUNK_SIZE = 4


def _split_word(word: str) -> list[str]:
    """Split a single word into chunks of at most ``_CHUNK_SIZE`` characters."""
    return [word[i : i + _CHUNK_SIZE] for i in range(0, len(word), _CHUNK_SIZE)]


@dataclass
class SimpleTokenizer:
    """Deterministic whitespace + chunking tokenizer.

    Attributes:
        chunk_size: maximum characters per token chunk for long words.
    """

    chunk_size: int = _CHUNK_SIZE
    _cache: dict[str, int] = field(default_factory=dict, repr=False)

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens for ``text``."""
        tokens: list[str] = []
        for piece in _WORD_RE.findall(text):
            if len(piece) <= self.chunk_size:
                tokens.append(piece)
            else:
                tokens.extend(
                    piece[i : i + self.chunk_size]
                    for i in range(0, len(piece), self.chunk_size)
                )
        return tokens

    def count(self, text: str) -> int:
        """Return the number of tokens in ``text`` (memoized)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        n = len(self.tokenize(text))
        # Bound the memo so pathological callers cannot grow it without limit.
        if len(self._cache) < 65536:
            self._cache[text] = n
        return n


_DEFAULT_TOKENIZER = SimpleTokenizer()


def count_tokens(text: str) -> int:
    """Count tokens in ``text`` using the module-level default tokenizer."""
    return _DEFAULT_TOKENIZER.count(text)
