"""Tokenization and pricing utilities.

LLM pricing is per-token, so every simulated call needs a deterministic way to
count prompt and completion tokens and convert them into dollars.  The
tokenizer here is a lightweight approximation of a BPE tokenizer: it is *not*
intended to match any provider's exact counts, only to be stable, monotone in
text length, and cheap.
"""

from repro.tokenizer.cost import CostModel, PriceTable, Usage
from repro.tokenizer.simple import SimpleTokenizer, count_tokens

__all__ = [
    "CostModel",
    "PriceTable",
    "SimpleTokenizer",
    "Usage",
    "count_tokens",
]
