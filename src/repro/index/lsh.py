"""Multi-table random-hyperplane LSH: approximate kNN with tunable recall.

Each of ``n_tables`` hash tables signs every vector against ``n_bits``
random hyperplanes (sign of the dot product, packed into an integer
signature).  Vectors sharing a signature in *any* table are candidate
neighbors; candidates are then ranked by true L2 distance, so the only
approximation is which vectors make the candidate set.  Recall is tuned by
three knobs:

* ``n_tables`` — more tables, more chances for a true neighbor to collide;
* ``n_bits`` — fewer bits, bigger buckets (higher recall, more ranking work);
* ``probe_floor`` — single-query searches that find fewer candidates than
  this floor widen out to Hamming-distance-1 buckets (multi-probe), which
  bounds how badly an unlucky hash can hurt a single lookup.

Two details matter for real text embeddings:

* **Centering.**  Embeddings of related texts share a large common
  component (hashing embeddings are non-negative; learned embeddings have
  a mean direction).  Hyperplanes through the origin see mostly that
  component, so most bits come out constant and the corpus collapses into
  a few giant buckets — O(n²) again.  Signing therefore happens *after*
  subtracting the corpus center (estimated from the first ``add`` batch
  and serialised with the index), which restores per-bit entropy without
  changing any distance.
* **Batched bucket ranking.**  :meth:`knn_graph` (what blocking uses)
  groups each table's buckets by size and ranks all same-sized buckets in
  one batched matrix product — no per-bucket Python loop — then merges
  per-row results across tables with a single ``lexsort``.  Work scales
  with Σ bucket², a small multiple of n for balanced buckets, which is
  where the >100x win over the O(n²) scan at 50k records comes from.

Hyperplanes are derived deterministically from ``seed``, and the seed and
center are serialised with the index, so a saved index reloads to
bit-identical behaviour in a later process (the store is clock- and
randomness-free).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.index.base import (
    Neighbor,
    check_vectors,
    decode_matrix,
    dump_payload,
    encode_matrix,
    load_payload,
)

#: Default number of hash tables (recall ~0.99 on near-duplicate corpora).
DEFAULT_TABLES = 16

#: Default signature width in bits (buckets of ~n/2^bits vectors).
DEFAULT_BITS = 8

#: Target mean bucket occupancy used by :meth:`LSHIndex.for_corpus`.
_TARGET_BUCKET = 32

#: Buckets larger than this rank their rows in chunks (bounds the size of
#: any one distance block to roughly _HUGE_BUCKET² floats).
_HUGE_BUCKET = 2048


class LSHIndex:
    """Approximate nearest-neighbor index (random-hyperplane LSH)."""

    kind = "lsh"

    def __init__(
        self,
        dimensions: int,
        *,
        n_tables: int = DEFAULT_TABLES,
        n_bits: int = DEFAULT_BITS,
        seed: int = 0,
        probe_floor: int | None = None,
    ) -> None:
        if dimensions <= 0:
            raise ConfigurationError("dimensions must be positive")
        if n_tables <= 0:
            raise ConfigurationError("n_tables must be positive")
        if not 0 < n_bits <= 60:
            raise ConfigurationError("n_bits must be between 1 and 60")
        if probe_floor is not None and probe_floor < 0:
            raise ConfigurationError("probe_floor must be non-negative")
        self.dimensions = dimensions
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.seed = seed
        self.probe_floor = probe_floor
        rng = np.random.default_rng(seed)
        #: (tables, bits, dim) hyperplane normals — fully determined by seed.
        self._planes = rng.standard_normal((n_tables, n_bits, dimensions))
        self._bit_values = (1 << np.arange(n_bits, dtype=np.int64))
        self._vectors = np.zeros((0, dimensions), dtype=np.float64)
        self._ids: list[int] = []
        self._id_rows: dict[int, int] = {}
        #: Corpus center subtracted before signing (see module docstring);
        #: estimated from the first ``add`` batch, then frozen.
        self._center: np.ndarray | None = None
        #: (tables, n) packed signatures of the indexed vectors.
        self._signatures = np.zeros((n_tables, 0), dtype=np.int64)
        #: Per table: signature -> row positions (built lazily for search).
        self._buckets: list[dict[int, np.ndarray]] | None = None
        #: Probe instrumentation: lookups run and candidates distance-ranked
        #: across them, for ``RuntimeStats.record_probe_candidates``.  The
        #: candidate count is the *approximation* work actually done — a tiny
        #: fraction of the corpus when the hash spreads well.  Not persisted.
        self.probes = 0
        self.candidates_examined = 0

    @classmethod
    def for_corpus(
        cls,
        dimensions: int,
        expected_size: int,
        *,
        n_tables: int = DEFAULT_TABLES,
        seed: int = 0,
    ) -> "LSHIndex":
        """An index whose bucket width suits a corpus of ``expected_size``.

        Picks ``n_bits`` so mean bucket occupancy lands near
        ``_TARGET_BUCKET`` vectors: buckets stay small enough that
        within-bucket ranking is cheap, and numerous enough that a probe
        reads a tiny fraction of the corpus.
        """
        if expected_size < 1:
            raise ConfigurationError("expected_size must be positive")
        bits = int(np.ceil(np.log2(max(2, expected_size / _TARGET_BUCKET))))
        return cls(
            dimensions,
            n_tables=n_tables,
            n_bits=max(2, min(24, bits)),
            seed=seed,
        )

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> list[int]:
        return list(self._ids)

    def _shifted(self, vectors: np.ndarray) -> np.ndarray:
        return vectors if self._center is None else vectors - self._center

    def _sign(self, vectors: np.ndarray) -> np.ndarray:
        """Packed signatures of ``vectors`` per table: (tables, len(vectors))."""
        # One BLAS call over all tables at once: (tables*bits, dim) @ (dim, n).
        flat = self._planes.reshape(self.n_tables * self.n_bits, self.dimensions)
        projections = (flat @ self._shifted(vectors).T).reshape(
            self.n_tables, self.n_bits, -1
        )
        bits = projections > 0.0
        return np.einsum("tbn,b->tn", bits.astype(np.int64), self._bit_values)

    def add(self, vectors: np.ndarray, ids: Iterable[int] | None = None) -> list[int]:
        dense = check_vectors(vectors, self.dimensions)
        if ids is None:
            start = max(self._ids, default=-1) + 1
            assigned = list(range(start, start + len(dense)))
        else:
            assigned = [int(value) for value in ids]
            if len(assigned) != len(dense):
                raise ConfigurationError("ids and vectors must have equal length")
        for row_id in assigned:
            if row_id in self._id_rows:
                raise ConfigurationError(f"id {row_id} is already indexed")
        if self._center is None and len(dense):
            self._center = dense.mean(axis=0)
        base = len(self._ids)
        signatures = self._sign(dense)
        self._vectors = np.vstack([self._vectors, dense]) if base else dense.copy()
        self._signatures = (
            np.hstack([self._signatures, signatures]) if base else signatures
        )
        self._ids.extend(assigned)
        for offset, row_id in enumerate(assigned):
            self._id_rows[row_id] = base + offset
        self._buckets = None  # rebuilt lazily on the next search
        return assigned

    def vector(self, row_id: int) -> np.ndarray:
        try:
            return self._vectors[self._id_rows[row_id]].copy()
        except KeyError:
            raise ConfigurationError(f"id {row_id} is not indexed") from None

    # -- search -------------------------------------------------------------------

    def _bucket_maps(self) -> list[dict[int, np.ndarray]]:
        """Per-table signature -> rows maps, grouped in one sort per table."""
        if self._buckets is None:
            maps: list[dict[int, np.ndarray]] = []
            for table in range(self.n_tables):
                signatures = self._signatures[table]
                order = np.argsort(signatures, kind="stable")
                ordered = signatures[order]
                starts = np.flatnonzero(np.r_[True, ordered[1:] != ordered[:-1]])
                bounds = np.r_[starts, len(ordered)]
                maps.append(
                    {
                        int(ordered[bounds[i]]): order[bounds[i] : bounds[i + 1]]
                        for i in range(len(starts))
                    }
                )
            self._buckets = maps
        return self._buckets

    def _candidate_rows(self, query: np.ndarray, k: int) -> list[int]:
        """Candidate row positions for ``query``, multi-probing up to the floor."""
        buckets = self._bucket_maps()
        projections = np.einsum("tbd,d->tb", self._planes, self._shifted(query))
        signatures = ((projections > 0.0).astype(np.int64) * self._bit_values).sum(axis=1)
        candidates: set[int] = set()
        for table in range(self.n_tables):
            candidates.update(buckets[table].get(int(signatures[table]), ()))
        floor = self.probe_floor if self.probe_floor is not None else max(16, 4 * k)
        if len(candidates) < min(floor, len(self._ids)):
            # Multi-probe: widen to Hamming-distance-1 buckets, flipping the
            # bits whose hyperplane margin is smallest first (those are the
            # likeliest misassignments for a borderline vector).
            for table in range(self.n_tables):
                flip_order = np.argsort(np.abs(projections[table]))
                for bit in flip_order:
                    neighbor_sig = int(signatures[table]) ^ int(self._bit_values[int(bit)])
                    candidates.update(buckets[table].get(neighbor_sig, ()))
                    if len(candidates) >= floor:
                        break
                if len(candidates) >= floor:
                    break
        return sorted(int(row) for row in candidates)

    def search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """The ~``k`` nearest indexed vectors (approximate), nearest first."""
        if k <= 0 or not self._ids:
            return []
        dense = np.asarray(query, dtype=np.float64).reshape(-1)
        if dense.shape[0] != self.dimensions:
            raise ConfigurationError(
                f"expected a query of dimension {self.dimensions}, got {dense.shape[0]}"
            )
        rows = self._candidate_rows(dense, k)
        self.probes += 1
        self.candidates_examined += len(rows)
        if not rows:
            return []
        subset = self._vectors[rows]
        deltas = subset - dense[None, :]
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        row_ids = np.asarray([self._ids[row] for row in rows])
        order = np.lexsort((row_ids, distances))[: min(k, len(rows))]
        return [(int(row_ids[int(i)]), float(distances[int(i)])) for i in order]

    def _rank_buckets(
        self,
        matrix: np.ndarray,
        members: np.ndarray,
        limit: int,
        squared_norms: np.ndarray,
        query_parts: list[np.ndarray],
        candidate_parts: list[np.ndarray],
        distance_parts: list[np.ndarray],
    ) -> None:
        """Top-``limit`` neighbors within each same-sized bucket, batched.

        ``members`` is (buckets, size): every bucket in the batch ranks in
        one batched matrix product instead of a Python-level loop.
        """
        block = matrix[members]  # (G, s, d)
        norms = squared_norms[members]  # (G, s)
        grams = block @ block.transpose(0, 2, 1)
        distances = norms[:, :, None] + norms[:, None, :] - 2.0 * grams
        size = members.shape[1]
        diagonal = np.arange(size)
        distances[:, diagonal, diagonal] = np.inf
        top = np.argpartition(distances, limit - 1, axis=2)[:, :, :limit]
        group_index = np.arange(members.shape[0])[:, None, None]
        query_parts.append(
            np.broadcast_to(members[:, :, None], top.shape).ravel()
        )
        candidate_parts.append(members[group_index, top].ravel())
        distance_parts.append(np.take_along_axis(distances, top, axis=2).ravel())

    def _rank_huge_bucket(
        self,
        matrix: np.ndarray,
        rows: np.ndarray,
        limit: int,
        squared_norms: np.ndarray,
        query_parts: list[np.ndarray],
        candidate_parts: list[np.ndarray],
        distance_parts: list[np.ndarray],
    ) -> None:
        """Chunked ranking for one oversized bucket (bounds peak memory)."""
        block = matrix[rows]
        norms = squared_norms[rows]
        size = len(rows)
        for start in range(0, size, _HUGE_BUCKET):
            chunk = slice(start, min(start + _HUGE_BUCKET, size))
            distances = (
                norms[chunk, None] + norms[None, :] - 2.0 * (block[chunk] @ block.T)
            )
            span = np.arange(chunk.start, chunk.stop)
            distances[span - chunk.start, span] = np.inf
            top = np.argpartition(distances, limit - 1, axis=1)[:, :limit]
            query_parts.append(np.repeat(rows[chunk], limit))
            candidate_parts.append(rows[top].ravel())
            distance_parts.append(np.take_along_axis(distances, top, axis=1).ravel())

    def knn_graph(self, k: int) -> dict[int, list[int]]:
        """Approximate per-id kNN among the indexed vectors (self excluded).

        Bucket-batched: each table's buckets are grouped by size, every
        same-sized group ranks in one batched matrix product, and rows
        merge across tables with a single lexsort — no per-bucket Python
        loop — so total work scales with Σ bucket², not n².
        """
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        count = len(self._ids)
        if count == 0 or k == 0:
            return {row_id: [] for row_id in self._ids}
        self.probes += count
        # Rank in float32: within-bucket distance *ordering* is what matters
        # (the graph is approximate by construction) and halving the memory
        # traffic roughly halves the ranking wall-clock at 50k records.
        matrix = self._vectors.astype(np.float32)
        squared_norms = np.einsum("ij,ij->i", matrix, matrix)
        query_parts: list[np.ndarray] = []
        candidate_parts: list[np.ndarray] = []
        distance_parts: list[np.ndarray] = []
        for table in range(self.n_tables):
            signatures = self._signatures[table]
            order = np.argsort(signatures, kind="stable")
            ordered = signatures[order]
            starts = np.flatnonzero(np.r_[True, ordered[1:] != ordered[:-1]])
            ends = np.r_[starts[1:], len(ordered)]
            sizes = ends - starts
            for size in np.unique(sizes):
                if size < 2:
                    continue
                limit = min(k, int(size) - 1)
                group = np.flatnonzero(sizes == size)
                if size > _HUGE_BUCKET:
                    for bucket in group:
                        self._rank_huge_bucket(
                            matrix,
                            order[starts[bucket] : ends[bucket]],
                            limit,
                            squared_norms,
                            query_parts,
                            candidate_parts,
                            distance_parts,
                        )
                    continue
                members = order[
                    starts[group][:, None] + np.arange(int(size))[None, :]
                ]
                self._rank_buckets(
                    matrix,
                    members,
                    limit,
                    squared_norms,
                    query_parts,
                    candidate_parts,
                    distance_parts,
                )
        neighbors: dict[int, list[int]] = {row_id: [] for row_id in self._ids}
        if not query_parts:
            return neighbors
        queries = np.concatenate(query_parts)
        candidates = np.concatenate(candidate_parts)
        distances = np.concatenate(distance_parts)
        # Dedup (query, candidate) pairs on an integer composite key *before*
        # the distance sort: a pair found by several tables has the same
        # distance everywhere, and integer unique is much cheaper than
        # dragging the duplicates through a float lexsort.
        composite = queries.astype(np.int64) * count + candidates
        unique_pairs, first = np.unique(composite, return_index=True)
        queries = unique_pairs // count
        candidates = unique_pairs % count
        distances = distances[first]
        self.candidates_examined += len(queries)
        # Sort by (query, distance) on one packed integer key — the raw bits
        # of a non-negative float32 order like the float — which sorts
        # several times faster than a float lexsort.  Pairs leave ``unique``
        # candidate-ascending, so the stable sort breaks distance ties on
        # candidate id and the result is deterministic across table orders.
        distance_bits = (
            np.maximum(distances, 0.0).astype(np.float32).view(np.uint32)
        )
        key = (queries.astype(np.uint64) << np.uint64(32)) | distance_bits.astype(np.uint64)
        order = np.argsort(key, kind="stable")
        queries = queries[order]
        candidates = candidates[order]
        # Rank within each query run; keep the first k.
        starts = np.flatnonzero(np.r_[True, queries[1:] != queries[:-1]])
        ranks = np.arange(len(queries)) - np.repeat(starts, np.diff(np.r_[starts, len(queries)]))
        selected = ranks < k
        queries = queries[selected]
        candidates = candidates[selected]
        ids_array = np.asarray(self._ids)
        run_starts = np.flatnonzero(np.r_[True, queries[1:] != queries[:-1]])
        # One bulk tolist + list slicing: much cheaper than materialising a
        # small ndarray per query.
        flat = ids_array[candidates].tolist()
        bounds = np.r_[run_starts, len(queries)].tolist()
        run_queries = ids_array[queries[run_starts]].tolist()
        for position, query_id in enumerate(run_queries):
            neighbors[query_id] = flat[bounds[position] : bounds[position + 1]]
        return neighbors

    # -- persistence --------------------------------------------------------------

    def to_payload(self) -> bytes:
        return dump_payload(
            {
                "kind": self.kind,
                "dimensions": self.dimensions,
                "n_tables": self.n_tables,
                "n_bits": self.n_bits,
                "seed": self.seed,
                "probe_floor": self.probe_floor,
                "ids": list(self._ids),
                "vectors": encode_matrix(self._vectors),
                "center": (
                    None
                    if self._center is None
                    else encode_matrix(self._center.reshape(1, -1))
                ),
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "LSHIndex":
        fields: dict[str, Any] = load_payload(payload)
        index = cls(
            int(fields["dimensions"]),
            n_tables=int(fields["n_tables"]),
            n_bits=int(fields["n_bits"]),
            seed=int(fields["seed"]),
            probe_floor=(
                None if fields.get("probe_floor") is None else int(fields["probe_floor"])
            ),
        )
        if fields.get("center") is not None:
            # Restored *before* add so signatures recompute against the same
            # center the saved index signed with (bit-identical buckets).
            index._center = decode_matrix(fields["center"]).reshape(-1)
        vectors = decode_matrix(fields["vectors"])
        ids = [int(value) for value in fields["ids"]]
        if len(ids):
            # Signatures are recomputed from the seeded hyperplanes — the
            # payload needs no bucket state to round-trip exactly.
            index.add(vectors, ids)
        return index
