"""Brute-force exact vector index: the correctness reference.

:class:`ExactIndex` ranks every indexed vector against every query — O(n)
per search, O(n²) for the full :meth:`knn_graph` — using the same
Gram-matrix arithmetic as the legacy ``HashingEmbedder.nearest_neighbors``
scan, so an index-backed blocker produces *identical* candidate pairs to
the scan it replaces (pinned by ``tests/index/test_blocker_index.py``).
It is the ground truth the LSH index's recall is measured against, and the
right choice for small corpora where approximation buys nothing.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.index.base import (
    Neighbor,
    check_vectors,
    decode_matrix,
    dump_payload,
    encode_matrix,
    load_payload,
)


class ExactIndex:
    """Exact (brute-force) nearest-neighbor index over L2 distance."""

    kind = "exact"

    def __init__(self, dimensions: int) -> None:
        if dimensions <= 0:
            raise ConfigurationError("dimensions must be positive")
        self.dimensions = dimensions
        self._vectors = np.zeros((0, dimensions), dtype=np.float64)
        self._ids: list[int] = []
        self._id_rows: dict[int, int] = {}
        #: Probe instrumentation: how many lookups ran and how many stored
        #: vectors they distance-ranked in total.  Consumers feed these into
        #: ``RuntimeStats.record_probe_candidates`` so the planner learns the
        #: observed candidates-per-probe rate.  Not persisted.
        self.probes = 0
        self.candidates_examined = 0

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> list[int]:
        """The indexed ids, in insertion order."""
        return list(self._ids)

    def add(self, vectors: np.ndarray, ids: Iterable[int] | None = None) -> list[int]:
        """Index ``vectors``; ids default to consecutive integers."""
        dense = check_vectors(vectors, self.dimensions)
        if ids is None:
            start = max(self._ids, default=-1) + 1
            assigned = list(range(start, start + len(dense)))
        else:
            assigned = [int(value) for value in ids]
            if len(assigned) != len(dense):
                raise ConfigurationError("ids and vectors must have equal length")
        for row_id in assigned:
            if row_id in self._id_rows:
                raise ConfigurationError(f"id {row_id} is already indexed")
        base = len(self._ids)
        self._vectors = np.vstack([self._vectors, dense]) if base else dense.copy()
        self._ids.extend(assigned)
        for offset, row_id in enumerate(assigned):
            self._id_rows[row_id] = base + offset
        return assigned

    def vector(self, row_id: int) -> np.ndarray:
        """The stored vector for ``row_id``."""
        try:
            return self._vectors[self._id_rows[row_id]].copy()
        except KeyError:
            raise ConfigurationError(f"id {row_id} is not indexed") from None

    def search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """The ``k`` nearest indexed vectors to ``query``, nearest first."""
        if k <= 0 or not self._ids:
            return []
        dense = np.asarray(query, dtype=np.float64).reshape(-1)
        if dense.shape[0] != self.dimensions:
            raise ConfigurationError(
                f"expected a query of dimension {self.dimensions}, got {dense.shape[0]}"
            )
        self.probes += 1
        self.candidates_examined += len(self._ids)
        deltas = self._vectors - dense[None, :]
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        order = np.lexsort((np.asarray(self._ids), distances))[: min(k, len(self._ids))]
        return [(self._ids[int(row)], float(distances[int(row)])) for row in order]

    def knn_graph(self, k: int) -> dict[int, list[int]]:
        """Per-id k nearest neighbors among the indexed vectors.

        This reproduces the legacy scan's arithmetic exactly (same Gram
        expansion, same ``argsort`` tie behaviour), so blocking through the
        index is candidate-for-candidate equal to blocking without one.
        """
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        count = len(self._ids)
        if count == 0 or k == 0:
            return {row_id: [] for row_id in self._ids}
        self.probes += count
        self.candidates_examined += count * (count - 1)
        matrix = self._vectors
        squared_norms = np.sum(matrix * matrix, axis=1)
        distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
        np.fill_diagonal(distances, np.inf)
        limit = min(k, count - 1)
        neighbors: dict[int, list[int]] = {}
        for row in range(count):
            order = np.argsort(distances[row])
            neighbors[self._ids[row]] = [self._ids[int(col)] for col in order[:limit]]
        return neighbors

    # -- persistence --------------------------------------------------------------

    def to_payload(self) -> bytes:
        return dump_payload(
            {
                "kind": self.kind,
                "dimensions": self.dimensions,
                "ids": list(self._ids),
                "vectors": encode_matrix(self._vectors),
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "ExactIndex":
        fields: dict[str, Any] = load_payload(payload)
        index = cls(int(fields["dimensions"]))
        vectors = decode_matrix(fields["vectors"])
        ids = [int(value) for value in fields["ids"]]
        if len(ids):
            index.add(vectors, ids)
        return index
