"""The :class:`VectorIndex` protocol and payload (de)serialisation helpers.

A vector index holds unit-norm embedding vectors under integer ids and
answers k-nearest-neighbor queries.  Two implementations ship with the
library: :class:`~repro.index.exact.ExactIndex`, a brute-force reference
whose answers are exact (and bit-identical to the legacy
``HashingEmbedder.nearest_neighbors`` scan), and
:class:`~repro.index.lsh.LSHIndex`, a multi-table random-hyperplane LSH
approximation whose recall is tunable through its table/bit/probe
parameters.  Both serialise to a self-contained JSON payload (vectors as
base64-packed float64) so the :class:`~repro.store.Store` can persist an
index and a later process can reload it without re-embedding a single text.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError

#: A search hit: ``(id, distance)`` with L2 distance, nearest first.
Neighbor = tuple[int, float]


@runtime_checkable
class VectorIndex(Protocol):
    """What every vector index implementation provides.

    The protocol is structural: anything with these methods (``kind``,
    ``dimensions``, ``add``, ``search``, ``knn_graph``, ``to_payload``) can
    back the :class:`~repro.proxies.blocking.EmbeddingBlocker`, the
    :class:`~repro.proxies.knn.KNNImputer`, and ``Dataset.search``.
    """

    #: Registry key of the implementation ("exact", "lsh").
    kind: str
    #: Embedding dimensionality every added vector must match.
    dimensions: int

    def __len__(self) -> int:
        """Number of vectors currently indexed."""
        ...

    def add(self, vectors: np.ndarray, ids: Iterable[int] | None = None) -> list[int]:
        """Index ``vectors`` (rows); returns the assigned ids."""
        ...

    def search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """The ``k`` nearest indexed vectors to ``query``, nearest first."""
        ...

    def knn_graph(self, k: int) -> dict[int, list[int]]:
        """Per-id nearest-neighbor ids among the indexed vectors (self excluded)."""
        ...

    def to_payload(self) -> bytes:
        """Self-contained serialisation (see :func:`payload_from_index`)."""
        ...


def encode_matrix(matrix: np.ndarray) -> dict[str, Any]:
    """JSON-safe encoding of a 2-D float array (bit-exact round trip)."""
    dense = np.ascontiguousarray(matrix, dtype=np.float64)
    return {
        "shape": list(dense.shape),
        "data": base64.b64encode(dense.tobytes()).decode("ascii"),
    }


def decode_matrix(payload: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_matrix`."""
    shape = tuple(int(value) for value in payload["shape"])
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.float64).reshape(shape).copy()


def dump_payload(fields: dict[str, Any]) -> bytes:
    """Serialise an index's field dict to the stored payload bytes."""
    return json.dumps(fields, sort_keys=True).encode("utf-8")


def load_payload(payload: bytes) -> dict[str, Any]:
    """Parse stored payload bytes back into the field dict."""
    try:
        fields = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"unreadable vector-index payload: {exc}") from exc
    if not isinstance(fields, dict):
        raise ConfigurationError("vector-index payload is not an object")
    return fields


def check_vectors(vectors: np.ndarray, dimensions: int) -> np.ndarray:
    """Validate and normalise the shape of a batch of vectors to add."""
    dense = np.asarray(vectors, dtype=np.float64)
    if dense.ndim == 1:
        dense = dense.reshape(1, -1)
    if dense.ndim != 2 or dense.shape[1] != dimensions:
        raise ConfigurationError(
            f"expected vectors of dimension {dimensions}, got shape {dense.shape}"
        )
    return dense
