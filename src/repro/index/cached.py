"""A store-backed embedder: never embed the same text twice, across runs.

:class:`CachedEmbedder` wraps a :class:`~repro.llm.embeddings.HashingEmbedder`
(or anything with its surface) and consults a durable
:class:`~repro.store.vectors.EmbeddingCache` before computing: each text's
vector is keyed by a content fingerprint of ``(text, model, dimensions,
ngram_sizes)``, so a re-run or a resumed job over an unchanged corpus
performs **zero** embed recomputation — the cache's hit counter is the
proof (pinned by ``tests/index/test_persistence.py``).  Only the misses
reach the wrapped embedder, so its usage accounting keeps meaning "texts
actually embedded".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.embeddings import HashingEmbedder
    from repro.store.vectors import EmbeddingCache


class Embedder(Protocol):
    """The embedding surface consumers rely on (structural)."""

    dimensions: int

    def embed(self, text: str) -> np.ndarray: ...

    def embed_batch(self, texts: list[str]) -> np.ndarray: ...

    def nearest_neighbors(self, texts: list[str], k: int) -> dict[int, list[int]]: ...


class CachedEmbedder:
    """Durable read-through cache in front of an embedder.

    Args:
        embedder: the wrapped embedder; computes only cache misses.
        cache: the store-backed vector cache (``store.embedding_cache()``).
    """

    def __init__(self, embedder: "HashingEmbedder", cache: "EmbeddingCache") -> None:
        self.embedder = embedder
        self.cache = cache

    # Consumers read these off whichever embedder they were handed.
    @property
    def dimensions(self) -> int:
        return self.embedder.dimensions

    @property
    def ngram_sizes(self) -> tuple[int, ...]:
        return self.embedder.ngram_sizes

    @property
    def model(self) -> str:
        return self.embedder.model

    @property
    def usage(self):
        return self.embedder.usage

    def _fingerprints(self, texts: list[str]) -> list[str]:
        from repro.store.fingerprint import fingerprint_embedding

        return [
            fingerprint_embedding(
                text,
                model=self.embedder.model,
                dimensions=self.embedder.dimensions,
                ngram_sizes=self.embedder.ngram_sizes,
            )
            for text in texts
        ]

    def embed(self, text: str) -> np.ndarray:
        return self.embed_batch([text])[0]

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed ``texts``, computing only the fingerprints the cache lacks."""
        if not texts:
            return np.zeros((0, self.embedder.dimensions), dtype=np.float64)
        fingerprints = self._fingerprints(texts)
        cached = self.cache.get_many(fingerprints)
        matrix = np.zeros((len(texts), self.embedder.dimensions), dtype=np.float64)
        miss_rows: list[int] = []
        seen_misses: dict[str, int] = {}
        for row, fingerprint in enumerate(fingerprints):
            vector = cached.get(fingerprint)
            if vector is not None:
                if vector.shape[0] != self.embedder.dimensions:
                    raise ConfigurationError(
                        "cached embedding dimensionality "
                        f"{vector.shape[0]} does not match embedder "
                        f"dimensions {self.embedder.dimensions}"
                    )
                matrix[row] = vector
            elif fingerprint in seen_misses:
                # Duplicate text within the batch: embed once, reuse the row.
                miss_rows.append(row)
            else:
                seen_misses[fingerprint] = row
                miss_rows.append(row)
        if seen_misses:
            unique_rows = sorted(seen_misses.values())
            computed = self.embedder.embed_batch([texts[row] for row in unique_rows])
            by_fingerprint = {
                fingerprints[row]: computed[position]
                for position, row in enumerate(unique_rows)
            }
            for row in miss_rows:
                matrix[row] = by_fingerprint[fingerprints[row]]
            self.cache.put_many(
                by_fingerprint, model=self.embedder.model, dimensions=self.embedder.dimensions
            )
        return matrix

    def nearest_neighbors(self, texts: list[str], k: int) -> dict[int, list[int]]:
        """Exact mutual-kNN over cached embeddings (same math as the embedder)."""
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        matrix = self.embed_batch(texts)
        if len(texts) == 0 or k == 0:
            return {index: [] for index in range(len(texts))}
        squared_norms = np.sum(matrix * matrix, axis=1)
        distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
        np.fill_diagonal(distances, np.inf)
        neighbors: dict[int, list[int]] = {}
        for index in range(len(texts)):
            order = np.argsort(distances[index])
            neighbors[index] = [int(j) for j in order[: min(k, len(texts) - 1)]]
        return neighbors
