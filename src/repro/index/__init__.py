"""Pluggable vector indexes: exact and LSH, persisted in the store.

The package behind blocking at scale (ROADMAP: "ANN-indexed proxies and
retrieval operators"): a common :class:`~repro.index.base.VectorIndex`
protocol, a brute-force :class:`~repro.index.exact.ExactIndex` reference,
and a multi-table random-hyperplane :class:`~repro.index.lsh.LSHIndex`
whose recall is tunable.  :func:`build_index` is the one-stop constructor
consumers use: it embeds through the store's durable embedding cache when
a store is available (never re-embedding unchanged texts), picks exact vs
LSH by corpus size, and can persist the built index under a name so a
later process loads it instead of rebuilding.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.index.base import Neighbor, VectorIndex
from repro.index.cached import CachedEmbedder
from repro.index.exact import ExactIndex
from repro.index.lsh import LSHIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.embeddings import HashingEmbedder
    from repro.store import Store

#: Registry of index implementations by ``kind`` (what the store's
#: ``vector_indexes.kind`` column refers to).
INDEX_KINDS: dict[str, type] = {
    ExactIndex.kind: ExactIndex,
    LSHIndex.kind: LSHIndex,
}

#: Corpora at or above this size default to the LSH index ("auto" kind);
#: below it the exact index is both faster and, well, exact.
AUTO_LSH_THRESHOLD = 2048


def index_from_payload(kind: str, payload: bytes) -> VectorIndex:
    """Rebuild a persisted index from its stored ``(kind, payload)`` row."""
    implementation = INDEX_KINDS.get(kind)
    if implementation is None:
        raise ConfigurationError(
            f"unknown vector-index kind {kind!r} (known: {sorted(INDEX_KINDS)})"
        )
    return implementation.from_payload(payload)


def create_index(kind: str, dimensions: int, *, expected_size: int | None = None, seed: int = 0) -> VectorIndex:
    """Construct an empty index of ``kind`` ("exact", "lsh", or "auto")."""
    if kind == "auto":
        kind = (
            LSHIndex.kind
            if expected_size is not None and expected_size >= AUTO_LSH_THRESHOLD
            else ExactIndex.kind
        )
    if kind == ExactIndex.kind:
        return ExactIndex(dimensions)
    if kind == LSHIndex.kind:
        return LSHIndex.for_corpus(dimensions, max(1, expected_size or 1), seed=seed)
    raise ConfigurationError(
        f"unknown vector-index kind {kind!r} (known: {sorted(INDEX_KINDS)} or 'auto')"
    )


def resolve_embedder(
    embedder: "HashingEmbedder | CachedEmbedder | None" = None,
    *,
    store: "Store | None" = None,
):
    """The embedder consumers should use: store-cached when a store exists."""
    from repro.llm.embeddings import HashingEmbedder

    if embedder is None:
        embedder = HashingEmbedder()
    if store is not None and not isinstance(embedder, CachedEmbedder):
        embedder = CachedEmbedder(embedder, store.embedding_cache())
    return embedder


def corpus_index_name(texts: list[str], embedder, *, prefix: str = "corpus") -> str:
    """A store name for an index, content-addressed by corpus and embedder.

    The name hashes the text list *and* the embedding function, so a stored
    index is only ever reused for the exact corpus it was built from — a
    same-sized but different text list hashes to a different name instead
    of silently reusing stale vectors.
    """
    payload = json.dumps(
        [
            str(getattr(embedder, "model", "")),
            int(embedder.dimensions),
            list(texts),
        ],
        ensure_ascii=True,
        separators=(",", ":"),
    )
    return f"{prefix}:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def build_index(
    texts: list[str],
    *,
    embedder: "HashingEmbedder | CachedEmbedder | None" = None,
    kind: str = "auto",
    store: "Store | None" = None,
    name: str | None = None,
    seed: int = 0,
) -> VectorIndex:
    """Embed ``texts`` and index them under ids ``0..len(texts)-1``.

    With a ``store``, embeddings go through the durable embedding cache
    (unchanged texts are never re-embedded) and, when ``name`` is given, a
    stored index under that name is loaded instead of rebuilt — and the
    built index is saved back under it otherwise.  The loaded index must
    match the corpus (same size and dimensionality) or it is rebuilt.
    """
    resolved = resolve_embedder(embedder, store=store)
    if store is not None and name is not None:
        stored = store.load_vector_index(name)
        if (
            stored is not None
            and len(stored) == len(texts)
            and stored.dimensions == resolved.dimensions
        ):
            return stored
    index = create_index(kind, resolved.dimensions, expected_size=len(texts), seed=seed)
    if texts:
        index.add(resolved.embed_batch(list(texts)))
    if store is not None and name is not None:
        store.save_vector_index(name, index)
    return index


__all__ = [
    "AUTO_LSH_THRESHOLD",
    "CachedEmbedder",
    "ExactIndex",
    "INDEX_KINDS",
    "LSHIndex",
    "Neighbor",
    "VectorIndex",
    "build_index",
    "corpus_index_name",
    "create_index",
    "index_from_payload",
    "resolve_embedder",
]
