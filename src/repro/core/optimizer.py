"""Automatic strategy selection (paper Section 4).

"Similar to AutoML, a declarative prompt engineering toolkit can shoulder the
burden of evaluating all strategies and recommend a strategy to apply to the
entire dataset, given a user-defined budget."  The :class:`StrategySelector`
does exactly that: it runs every candidate strategy on a small labelled
validation sample, measures accuracy and cost, extrapolates the cost to the
full dataset size, and picks the best strategy under the constraints.  It is
invoked by the :class:`~repro.core.physical.PhysicalPlanner` whenever an
``"auto"`` spec carries a labelled sample; specs without one are resolved
from :class:`~repro.core.planner.CostPlanner` estimates instead.

Selection rule:

1. discard candidates whose extrapolated full-run cost exceeds the budget;
2. among the survivors, if an accuracy target is given, pick the *cheapest*
   candidate that meets it; otherwise (or if none meets it) pick the most
   accurate one, breaking ties by cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import SpecError
from repro.operators.base import OperatorResult


@dataclass
class StrategyCandidate:
    """One candidate strategy the selector may evaluate.

    Attributes:
        name: strategy name passed to the operator.
        options: strategy-specific keyword arguments.
        cost_scaling: how the cost grows with the number of data items:
            ``"linear"`` (O(n) unit tasks), ``"quadratic"`` (O(n²) pairs), or
            ``"constant"`` (a single prompt).  Used to extrapolate the
            validation-sample cost to the full dataset.
    """

    name: str
    options: dict[str, Any] = field(default_factory=dict)
    cost_scaling: str = "linear"

    def extrapolate_cost(self, validation_cost: float, validation_size: int, full_size: int) -> float:
        """Estimate the full-run cost from the validation-run cost."""
        if validation_size <= 0:
            return validation_cost
        ratio = full_size / validation_size
        if self.cost_scaling == "constant":
            return validation_cost
        if self.cost_scaling == "quadratic":
            return validation_cost * ratio * ratio
        return validation_cost * ratio


@dataclass
class StrategyEvaluation:
    """Measured performance of one candidate on the validation sample."""

    candidate: StrategyCandidate
    accuracy: float
    validation_cost: float
    estimated_full_cost: float
    result: OperatorResult | None = None

    @property
    def name(self) -> str:
        return self.candidate.name


class StrategySelector:
    """Evaluate candidate strategies on a validation sample and pick one.

    Args:
        run_candidate: callable that executes one candidate on the validation
            sample and returns an :class:`OperatorResult` (or subclass).
        score: callable mapping that result to an accuracy in [0, 1].
        validation_size: number of items in the validation sample.
        full_size: number of items in the full dataset.
    """

    def __init__(
        self,
        *,
        run_candidate: Callable[[StrategyCandidate], OperatorResult],
        score: Callable[[OperatorResult], float],
        validation_size: int,
        full_size: int,
    ) -> None:
        if validation_size <= 0 or full_size <= 0:
            raise SpecError("validation_size and full_size must be positive")
        self._run_candidate = run_candidate
        self._score = score
        self.validation_size = validation_size
        self.full_size = full_size

    def evaluate(self, candidates: list[StrategyCandidate]) -> list[StrategyEvaluation]:
        """Run every candidate on the validation sample and measure it."""
        if not candidates:
            raise SpecError("no candidate strategies supplied")
        evaluations = []
        for candidate in candidates:
            result = self._run_candidate(candidate)
            accuracy = self._score(result)
            validation_cost = result.cost
            evaluations.append(
                StrategyEvaluation(
                    candidate=candidate,
                    accuracy=accuracy,
                    validation_cost=validation_cost,
                    estimated_full_cost=candidate.extrapolate_cost(
                        validation_cost, self.validation_size, self.full_size
                    ),
                    result=result,
                )
            )
        return evaluations

    def select(
        self,
        candidates: list[StrategyCandidate],
        *,
        budget_dollars: float | None = None,
        accuracy_target: float | None = None,
    ) -> StrategyEvaluation:
        """Evaluate the candidates and pick the best one under the constraints."""
        evaluations = self.evaluate(candidates)
        affordable = [
            evaluation
            for evaluation in evaluations
            if budget_dollars is None or evaluation.estimated_full_cost <= budget_dollars
        ]
        pool = affordable or evaluations
        if accuracy_target is not None:
            meeting = [evaluation for evaluation in pool if evaluation.accuracy >= accuracy_target]
            if meeting:
                return min(meeting, key=lambda evaluation: evaluation.estimated_full_cost)
        return max(pool, key=lambda evaluation: (evaluation.accuracy, -evaluation.estimated_full_cost))
