"""The declarative engine — the paper's primary contribution.

Users declare *what* data-processing operation they want (sort, resolve,
impute, ...), a budget, and optionally an accuracy target plus a labelled
validation sample; the engine decides *how* — which prompting strategy, which
model, how many unit tasks — and runs it while enforcing the budget.
"""

from repro.core.budget import Budget, BudgetLease
from repro.core.dag import topological_waves, transitive_dependencies
from repro.core.engine import DeclarativeEngine
from repro.core.executor import (
    AsyncBatchExecutor,
    BatchExecutor,
    BatchRequest,
    TaskOutcome,
)
from repro.core.governor import (
    ConcurrencyGovernor,
    GovernorStats,
    ModelRate,
    TokenBucket,
    estimated_prompt_tokens,
)
from repro.core.optimizer import StrategyCandidate, StrategyEvaluation, StrategySelector
from repro.core.physical import (
    PhysicalPlan,
    PhysicalPlanner,
    ResolvedStep,
    ResolvedStrategy,
    RuntimeStats,
)
from repro.core.planner import CostEstimate, CostPlanner, PipelineQuote
from repro.core.session import BudgetScopedSession, PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.core.workflow import Workflow, WorkflowReport, WorkflowStep

# The fluent query frontend compiles onto this package's engine; imported
# last so repro.query can import the core submodules above.
from repro.query import Dataset, LogicalPlan, QueryResult, compile_plan, optimize

__all__ = [
    "AsyncBatchExecutor",
    "BatchExecutor",
    "BatchRequest",
    "Budget",
    "ConcurrencyGovernor",
    "GovernorStats",
    "ModelRate",
    "TokenBucket",
    "estimated_prompt_tokens",
    "BudgetLease",
    "BudgetScopedSession",
    "CategorizeSpec",
    "ClusterSpec",
    "CostEstimate",
    "CostPlanner",
    "Dataset",
    "DeclarativeEngine",
    "FilterSpec",
    "ImputeSpec",
    "JoinSpec",
    "LogicalPlan",
    "PhysicalPlan",
    "PhysicalPlanner",
    "PipelineQuote",
    "PipelineSpec",
    "PipelineStep",
    "PromptSession",
    "QueryResult",
    "ResolveSpec",
    "ResolvedStep",
    "ResolvedStrategy",
    "RuntimeStats",
    "SortSpec",
    "StrategyCandidate",
    "StrategyEvaluation",
    "StrategySelector",
    "TaskOutcome",
    "TaskSpec",
    "TopKSpec",
    "compile_plan",
    "optimize",
    "topological_waves",
    "transitive_dependencies",
    "Workflow",
    "WorkflowReport",
    "WorkflowStep",
]
