"""The declarative engine — the paper's primary contribution.

Users declare *what* data-processing operation they want (sort, resolve,
impute, ...), a budget, and optionally an accuracy target plus a labelled
validation sample; the engine decides *how* — which prompting strategy, which
model, how many unit tasks — and runs it while enforcing the budget.
"""

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.executor import BatchExecutor, BatchRequest
from repro.core.optimizer import StrategyCandidate, StrategyEvaluation, StrategySelector
from repro.core.planner import CostEstimate, CostPlanner
from repro.core.session import PromptSession
from repro.core.spec import ImputeSpec, ResolveSpec, SortSpec, TaskSpec
from repro.core.workflow import Workflow, WorkflowStep

__all__ = [
    "BatchExecutor",
    "BatchRequest",
    "Budget",
    "CostEstimate",
    "CostPlanner",
    "DeclarativeEngine",
    "ImputeSpec",
    "PromptSession",
    "ResolveSpec",
    "SortSpec",
    "StrategyCandidate",
    "StrategyEvaluation",
    "StrategySelector",
    "TaskSpec",
    "Workflow",
    "WorkflowStep",
]
