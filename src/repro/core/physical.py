"""The physical-planning layer: strategy resolution plus runtime feedback.

The declarative contract of the paper is that users state *what* operation
they want and the system decides *how* to execute it.  Historically that
decision lived as ``if strategy == "auto"`` branches inside
:class:`~repro.core.engine.DeclarativeEngine`; this module extracts it into
an explicit layer with two halves:

* :class:`PhysicalPlanner` — for every declarative spec it enumerates the
  candidate strategies, then resolves one:

  1. an explicit ``spec.strategy`` passes through untouched (``"fixed"``);
  2. with a labelled validation sample (sort ``validation_order``, resolve
     ``validation_labels``, impute ground truth) the
     :class:`~repro.core.optimizer.StrategySelector` measures every
     candidate on the sample and extrapolates (``"validation"``);
  3. otherwise candidates are priced by the :class:`~repro.core.planner.
     CostPlanner` and the planner picks the *most preferred candidate whose
     estimated cost fits the remaining budget*, falling back to the
     cheapest when nothing fits (``"cost"``).  With no budget constraint
     this resolves to the paper's default strategy for the operator, so
     unconstrained behaviour is unchanged.

* :class:`RuntimeStats` — a thread-safe store of *observed* execution
  statistics: per-predicate filter selectivities, dedup survivor ratios and
  pair match rates, join match selectivities, and per-strategy call counts
  (estimated vs. actual).  The engine records into it after every operator
  run; the :class:`~repro.core.planner.CostPlanner` and the query
  optimizer consult it on subsequent quotes so the second quote of a
  workload is priced from what actually happened rather than from static
  priors.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.optimizer import StrategyCandidate, StrategySelector
from repro.core.planner import CostEstimate, CostPlanner
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.data.products import ImputationDataset
from repro.data.record import Dataset
from repro.exceptions import ConfigurationError, SpecError
from repro.metrics.classification import accuracy as exact_match_accuracy
from repro.metrics.classification import f1_score
from repro.metrics.ranking import kendall_tau_b
from repro.operators.categorize import CategorizeOperator, CategorizeResult
from repro.operators.filter import FilterOperator, FilterResult
from repro.operators.impute import ImputeOperator, ImputeResult
from repro.operators.resolve import PairJudgmentResult, ResolveOperator
from repro.operators.sort import SortOperator, SortResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.budget import Budget, BudgetLease
    from repro.core.session import PromptSession


# -- runtime statistics ----------------------------------------------------------------


@dataclass
class _Ratio:
    """A running numerator/denominator pair (observed fraction)."""

    numerator: float = 0.0
    denominator: float = 0.0

    @property
    def value(self) -> float | None:
        if self.denominator <= 0:
            return None
        return self.numerator / self.denominator


class RuntimeStats:
    """Observed execution statistics, fed back into subsequent quotes.

    All recorders are thread-safe (pipeline steps run concurrently).  Every
    getter returns ``None`` until at least one observation exists, so a
    fresh session quotes exactly from the static priors.
    """

    #: Per-label latency reservoir bound: enough samples for stable p95
    #: estimates while keeping exported profiles small.
    LATENCY_SAMPLE_CAP = 512

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._filter: dict[str, _Ratio] = {}
        self._dedup = _Ratio()
        self._pair_match = _Ratio()
        self._join = _Ratio()
        self._blocked_pairs = _Ratio()
        self._probe_candidates = _Ratio()
        self._calls: dict[str, _Ratio] = {}
        self._call_counts: dict[str, float] = {}
        self._runs: dict[str, float] = {}
        # Per-operator/strategy call durations (ms), most recent last; fed by
        # the session's tracer so quotes can carry wall-clock estimates.
        self._latency: dict[str, list[float]] = {}
        # Session-global cache hits over requests, also fed per traced call;
        # the planner discounts dollar quotes by the observed hit rate.
        self._cache = _Ratio()
        # Per-pipeline critical-path wall-clock seconds (mean over runs),
        # fed by the engine's span tree after each pipeline execution.
        self._critical_path: dict[str, _Ratio] = {}

    # -- recorders -------------------------------------------------------------------

    def record_filter(self, predicate: str, *, evaluated: int, kept: int) -> None:
        """Record one predicate pass: ``kept`` of ``evaluated`` items survived."""
        if evaluated <= 0:
            return
        with self._lock:
            ratio = self._filter.setdefault(predicate, _Ratio())
            ratio.numerator += kept
            ratio.denominator += evaluated

    def record_dedup(self, *, inputs: int, survivors: int) -> None:
        """Record a whole-corpus dedup: ``survivors`` clusters from ``inputs`` records."""
        if inputs <= 0:
            return
        with self._lock:
            self._dedup.numerator += survivors
            self._dedup.denominator += inputs

    def record_pair_match(self, *, judged: int, duplicates: int) -> None:
        """Record a pair-judgment run: ``duplicates`` of ``judged`` pairs matched."""
        if judged <= 0:
            return
        with self._lock:
            self._pair_match.numerator += duplicates
            self._pair_match.denominator += judged

    def record_join(self, *, left: int, matched: int) -> None:
        """Record a semi-join: ``matched`` of ``left`` records found a partner."""
        if left <= 0:
            return
        with self._lock:
            self._join.numerator += matched
            self._join.denominator += left

    def record_blocked_pairs(self, *, candidates: int, upper_bound: int) -> None:
        """Record a blocking run: the mutual-neighbor blocker emitted
        ``candidates`` pairs where the k·n bound allowed ``upper_bound``."""
        if upper_bound <= 0:
            return
        with self._lock:
            self._blocked_pairs.numerator += candidates
            self._blocked_pairs.denominator += upper_bound

    def record_probe_candidates(self, *, candidates: int, probed: int) -> None:
        """Record vector-index probes: ``candidates`` rows were distance-ranked
        across ``probed`` probes.  The rate is a mean candidate count per
        probe (it can exceed 1), which is what prices an LSH probe against
        the exact index's full-corpus rank."""
        if probed <= 0:
            return
        with self._lock:
            self._probe_candidates.numerator += candidates
            self._probe_candidates.denominator += probed

    def record_calls(self, label: str, *, estimated: int, actual: int) -> None:
        """Record a strategy run: the planner quoted ``estimated`` calls, it took ``actual``."""
        with self._lock:
            self._call_counts[label] = self._call_counts.get(label, 0.0) + actual
            self._runs[label] = self._runs.get(label, 0.0) + 1
            if estimated > 0:
                ratio = self._calls.setdefault(label, _Ratio())
                ratio.numerator += actual
                ratio.denominator += estimated

    def record_latency(self, label: str, duration_ms: float) -> None:
        """Record one call's wall-clock duration under a strategy label.

        The session's tracer feeds this for every traced call that carries
        an operator label, so the reservoir blends live-call and cache-hit
        durations in their observed proportions — which is exactly the
        per-call latency a quote should extrapolate from.
        """
        if duration_ms < 0:
            return
        with self._lock:
            samples = self._latency.setdefault(label, [])
            samples.append(float(duration_ms))
            if len(samples) > self.LATENCY_SAMPLE_CAP:
                del samples[: len(samples) - self.LATENCY_SAMPLE_CAP]

    def record_critical_path(self, pipeline: str, seconds: float) -> None:
        """Record one pipeline run's observed critical-path wall-clock.

        The engine measures the longest dependent chain of step spans after
        each run (see :func:`repro.obs.critical_path`), which is the
        wall-clock a concurrency-aware quote should predict — independent
        branches overlap, so the sum of step durations overstates reality.
        """
        if seconds < 0:
            return
        with self._lock:
            ratio = self._critical_path.setdefault(pipeline, _Ratio())
            ratio.numerator += seconds
            ratio.denominator += 1

    def record_cache(self, *, hit: bool, requests: int = 1) -> None:
        """Record cacheable session traffic: ``requests`` calls, hit or missed."""
        if requests <= 0:
            return
        with self._lock:
            self._cache.numerator += requests if hit else 0
            self._cache.denominator += requests

    # -- observations ----------------------------------------------------------------

    def filter_selectivity(self, predicate: str) -> float | None:
        """Observed surviving fraction of ``predicate``, or ``None``."""
        with self._lock:
            ratio = self._filter.get(predicate)
            return ratio.value if ratio is not None else None

    def dedup_survivor_ratio(self) -> float | None:
        """Observed clusters-per-record ratio of whole-corpus dedups."""
        with self._lock:
            return self._dedup.value

    def pair_match_rate(self) -> float | None:
        """Observed duplicate fraction among judged pairs."""
        with self._lock:
            return self._pair_match.value

    def join_selectivity(self) -> float | None:
        """Observed fraction of left records with at least one join match."""
        with self._lock:
            return self._join.value

    def blocked_pair_rate(self) -> float | None:
        """Observed candidate-pair fraction of the blocker's k·n upper bound."""
        with self._lock:
            return self._blocked_pairs.value

    def probe_candidate_rate(self) -> float | None:
        """Observed mean candidates ranked per index probe, or ``None``."""
        with self._lock:
            return self._probe_candidates.value

    def call_ratio(self, label: str) -> float | None:
        """Observed actual/estimated call ratio for a strategy label."""
        with self._lock:
            ratio = self._calls.get(label)
            return ratio.value if ratio is not None else None

    def call_count(self, label: str) -> int:
        """Total observed calls recorded under a strategy label.

        Decay-weighted history merged from a workload profile contributes
        fractionally; the reported count rounds to the nearest whole call.
        """
        with self._lock:
            return int(round(self._call_counts.get(label, 0.0)))

    def run_count(self, label: str) -> int:
        """How many operator runs were recorded under a strategy label."""
        with self._lock:
            return int(round(self._runs.get(label, 0.0)))

    def latency_percentile(self, label: str, quantile: float) -> float | None:
        """The ``quantile`` (in [0, 1]) of observed call durations, in ms.

        Nearest-rank on the retained reservoir; ``None`` until at least one
        duration was recorded under ``label``.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ConfigurationError("quantile must be within [0, 1]")
        with self._lock:
            samples = self._latency.get(label)
            if not samples:
                return None
            ordered = sorted(samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
        return ordered[rank]

    def latency_p50(self, label: str) -> float | None:
        """Median observed call duration (ms) under a strategy label."""
        return self.latency_percentile(label, 0.5)

    def latency_p95(self, label: str) -> float | None:
        """95th-percentile observed call duration (ms) under a strategy label."""
        return self.latency_percentile(label, 0.95)

    def latency_labels(self) -> list[str]:
        """Strategy labels with at least one recorded duration."""
        with self._lock:
            return sorted(label for label, samples in self._latency.items() if samples)

    def cache_hit_rate(self) -> float | None:
        """Observed cache-hit fraction of session traffic, or ``None``."""
        with self._lock:
            return self._cache.value

    def critical_path_seconds(self, pipeline: str) -> float | None:
        """Mean observed critical-path seconds of a pipeline, or ``None``."""
        with self._lock:
            ratio = self._critical_path.get(pipeline)
            return ratio.value if ratio is not None else None

    @property
    def empty(self) -> bool:
        """Whether nothing has been recorded yet."""
        with self._lock:
            return not (
                self._filter
                or self._calls
                or self._call_counts
                or self._latency
                or self._dedup.denominator
                or self._pair_match.denominator
                or self._join.denominator
                or self._blocked_pairs.denominator
                or self._probe_candidates.denominator
                or self._cache.denominator
                or self._critical_path
            )

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every observed statistic (for debugging/explain)."""
        with self._lock:
            return {
                "filter_selectivity": {
                    predicate: ratio.value for predicate, ratio in self._filter.items()
                },
                "dedup_survivor_ratio": self._dedup.value,
                "pair_match_rate": self._pair_match.value,
                "join_selectivity": self._join.value,
                "blocked_pair_rate": self._blocked_pairs.value,
                "probe_candidate_rate": self._probe_candidates.value,
                "call_ratio": {label: ratio.value for label, ratio in self._calls.items()},
                "call_count": {
                    label: int(round(count)) for label, count in self._call_counts.items()
                },
                "cache_hit_rate": self._cache.value,
                "critical_path_seconds": {
                    pipeline: ratio.value
                    for pipeline, ratio in self._critical_path.items()
                },
                "latency_samples": {
                    label: len(samples) for label, samples in self._latency.items()
                },
            }

    # -- durable state (workload profiles) ---------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Every accumulator as plain JSON-shaped data (see ``repro.store``).

        The export carries raw numerator/denominator pairs rather than the
        derived ratios, so merging two states (or decay-scaling one) keeps
        the evidence-weighting exact: a ratio observed over 1000 items
        outweighs one observed over 10.
        """

        def pair(ratio: _Ratio) -> list[float]:
            return [ratio.numerator, ratio.denominator]

        with self._lock:
            return {
                "filter": {predicate: pair(r) for predicate, r in self._filter.items()},
                "dedup": pair(self._dedup),
                "pair_match": pair(self._pair_match),
                "join": pair(self._join),
                "blocked_pairs": pair(self._blocked_pairs),
                "probe_candidates": pair(self._probe_candidates),
                "calls": {label: pair(r) for label, r in self._calls.items()},
                "call_counts": dict(self._call_counts),
                "runs": dict(self._runs),
                "cache": pair(self._cache),
                "critical_path": {
                    pipeline: pair(r) for pipeline, r in self._critical_path.items()
                },
                "latency": {label: list(samples) for label, samples in self._latency.items()},
            }

    def merge_state(self, state: Mapping[str, Any], *, weight: float = 1.0) -> None:
        """Add an exported state's counts into this store, scaled by ``weight``.

        ``weight < 1`` is how workload profiles decay: saved observations
        arrive with reduced evidence mass, so fresh observations of the
        same statistic overtake them instead of being averaged away.
        Scaling numerator and denominator alike leaves the merged *ratios*
        identical to the saved ones until new evidence lands.
        """
        if weight <= 0:
            return

        def add(ratio: _Ratio, pair: Any) -> None:
            numerator, denominator = pair
            ratio.numerator += float(numerator) * weight
            ratio.denominator += float(denominator) * weight

        with self._lock:
            for predicate, pair in dict(state.get("filter", {})).items():
                add(self._filter.setdefault(predicate, _Ratio()), pair)
            add(self._dedup, state.get("dedup", (0, 0)))
            add(self._pair_match, state.get("pair_match", (0, 0)))
            add(self._join, state.get("join", (0, 0)))
            add(self._blocked_pairs, state.get("blocked_pairs", (0, 0)))
            add(self._probe_candidates, state.get("probe_candidates", (0, 0)))
            for label, pair in dict(state.get("calls", {})).items():
                add(self._calls.setdefault(label, _Ratio()), pair)
            for label, count in dict(state.get("call_counts", {})).items():
                self._call_counts[label] = (
                    self._call_counts.get(label, 0.0) + float(count) * weight
                )
            for label, count in dict(state.get("runs", {})).items():
                self._runs[label] = self._runs.get(label, 0.0) + float(count) * weight
            add(self._cache, state.get("cache", (0, 0)))
            for pipeline, pair in dict(state.get("critical_path", {})).items():
                add(self._critical_path.setdefault(pipeline, _Ratio()), pair)
            # Latency samples have no numerator/denominator to scale, so
            # decay keeps a weight-sized share of the *most recent* saved
            # samples — history fades by shrinking its sample mass, and the
            # merged reservoir stays bounded.
            for label, saved in dict(state.get("latency", {})).items():
                saved = [float(value) for value in saved]
                keep = int(round(len(saved) * min(1.0, weight)))
                if keep <= 0:
                    continue
                samples = self._latency.setdefault(label, [])
                samples.extend(saved[-keep:])
                if len(samples) > self.LATENCY_SAMPLE_CAP:
                    del samples[: len(samples) - self.LATENCY_SAMPLE_CAP]


# -- resolved strategies ---------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedStrategy:
    """The physical planner's decision for one spec.

    Attributes:
        strategy: the strategy the engine will execute.
        options: keyword arguments for the strategy.
        decided_by: ``"fixed"`` (explicit in the spec), ``"validation"``
            (measured on a labelled sample), or ``"cost"`` (picked from the
            planner's estimates under the remaining budget).
        estimate: the planner's cost estimate for the chosen strategy, when
            one could be computed.
        considered: the candidate strategy names that were in the running.
    """

    strategy: str
    options: dict[str, Any] = field(default_factory=dict)
    decided_by: str = "fixed"
    estimate: CostEstimate | None = None
    considered: tuple[str, ...] = ()


@dataclass(frozen=True)
class ResolvedStep:
    """One pipeline step with its strategy resolved ahead of execution."""

    name: str
    spec: TaskSpec
    resolved: ResolvedStrategy


@dataclass(frozen=True)
class PhysicalPlan:
    """A physical plan: per-step resolved strategies for a pipeline.

    ``deferred`` lists steps whose resolution must wait for run time:
    spec factories (their inputs only exist once upstream steps have run)
    and validation-driven ``auto`` specs (resolving them runs candidate
    strategies on the labelled sample — real LLM spend, which a pre-flight
    inspection must not incur).
    """

    pipeline: str
    steps: tuple[ResolvedStep, ...]
    deferred: tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable rendering of the resolved plan."""
        lines = [f"Physical plan: {self.pipeline}"]
        for step in self.steps:
            resolved = step.resolved
            if resolved.estimate is not None:
                cost = f"{resolved.estimate.calls} calls, ${resolved.estimate.dollars:.6f}"
                if resolved.estimate.seconds is not None:
                    cost += f", ~{resolved.estimate.seconds:.1f}s"
            else:
                cost = "unquoted"
            lines.append(
                f"  {step.name}: {resolved.strategy} "
                f"[{resolved.decided_by}] ({cost})"
            )
        for name in self.deferred:
            lines.append(
                f"  {name}: resolved at run time "
                "(spec factory, or validation runs on the labelled sample)"
            )
        return "\n".join(lines)


# -- the planner -----------------------------------------------------------------------

#: Minimum labelled sample sizes before validation-driven selection pays.
_MIN_SORT_VALIDATION = 3
_MIN_RESOLVE_VALIDATION = 5
_MIN_IMPUTE_VALIDATION = 5
_MIN_FILTER_VALIDATION = 5
_MIN_CATEGORIZE_VALIDATION = 5

#: How many of the cheapest chat models form the default ensemble when a
#: filter/categorize spec asks for validation-driven selection without
#: naming voter models itself.
_DEFAULT_ENSEMBLE_SIZE = 3

#: Per-predicate strategy search enumerates candidate^predicate combos;
#: beyond this many predicates it falls back to one conjunction-level choice.
_MAX_PER_PREDICATE_SEARCH = 4


class PhysicalPlanner:
    """Resolve declarative specs to concrete strategies (see module docstring).

    Args:
        session: the prompt session validation candidates run against (and
            whose :class:`RuntimeStats` feed the cost estimates).
        default_model: model operators run on; defaults to the session's
            configured chat model.
        stats: override the statistics store (defaults to the session's).
    """

    def __init__(
        self,
        session: "PromptSession",
        *,
        default_model: str | None = None,
        stats: RuntimeStats | None = None,
    ) -> None:
        self.session = session
        self.default_model = default_model
        self.stats = stats if stats is not None else session.stats
        self._planners: dict[tuple[str, bool], CostPlanner] = {}

    # -- planner access --------------------------------------------------------------

    def planner_model(self, model: str | None = None) -> str:
        """The model estimates are priced on."""
        return model or self.default_model or self.session.config.chat_model

    def cost_planner(self, model: str | None = None, *, with_stats: bool = True) -> CostPlanner:
        """A (cached) cost planner, optionally fed by the observed stats."""
        name = self.planner_model(model)
        key = (name, with_stats)
        if key not in self._planners:
            self._planners[key] = CostPlanner(
                name,
                registry=self.session.registry,
                stats=self.stats if with_stats else None,
                # The durable response cache (when the session has one) lets
                # quotes price already-answered prompts at zero; the
                # stats-free planner is the structural baseline for call
                # ratios and must stay undiscounted.
                response_cache=self.session.cache if with_stats else None,
            )
        return self._planners[key]

    def operator_kwargs(self, budget: "Budget | BudgetLease | None" = None) -> dict:
        """Keyword arguments the engine passes to every operator it builds.

        A pipeline step passes its per-step :class:`~repro.core.budget.
        BudgetLease` so a spend limit stops a large batch between unit
        tasks; otherwise the session budget is charged.
        """
        return {
            "model": self.default_model,
            "cost_model": self.session.cost_model,
            "max_concurrency": self.session.max_concurrency,
            "budget": budget if budget is not None else self.session.budget,
            # One admission point for the whole pipeline: every operator the
            # engine builds shares the session's governor (rate limits and
            # in-flight slots are global properties of the backend, not of
            # any single operator).
            "governor": self.session.governor,
        }

    # -- resolution ------------------------------------------------------------------

    def resolve(
        self,
        spec: TaskSpec,
        *,
        budget: "Budget | BudgetLease | None" = None,
        estimate_fixed: bool = False,
    ) -> ResolvedStrategy:
        """Resolve the strategy one spec will execute (see module docstring).

        ``estimate_fixed`` attaches a cost estimate even to explicitly-fixed
        strategies; the execution hot path leaves it off — an explicit
        strategy needs no pricing to run, and tokenizing the whole corpus
        per call would be pure overhead.  :meth:`plan_pipeline` turns it on
        so physical plans stay informative.
        """
        if spec.strategy != "auto":
            return ResolvedStrategy(
                strategy=spec.strategy,
                options=dict(spec.strategy_options),
                decided_by="fixed",
                estimate=self._try_estimate(spec) if estimate_fixed else None,
                considered=(spec.strategy,),
            )
        validated = self._resolve_by_validation(spec, budget)
        if validated is not None:
            return validated
        return self._resolve_by_cost(spec, budget, want_estimate=estimate_fixed)

    def plan_pipeline(self, pipeline: PipelineSpec) -> PhysicalPlan:
        """Resolve every statically-resolvable step of a pipeline up front.

        This is a *free* inspection: it never issues an LLM call.  Spec
        factories and validation-driven ``auto`` specs (whose resolution
        runs candidate strategies on the labelled sample, spending real
        money) are listed as deferred and resolved when the engine
        executes them.
        """
        pipeline.validate()
        steps: list[ResolvedStep] = []
        deferred: list[str] = []
        for step in pipeline.steps:
            if isinstance(step.task, TaskSpec):
                if step.task.strategy == "auto" and self.would_validate(step.task):
                    deferred.append(step.name)
                else:
                    steps.append(
                        ResolvedStep(
                            name=step.name,
                            spec=step.task,
                            resolved=self.resolve(step.task, estimate_fixed=True),
                        )
                    )
            elif step.task is not None:
                deferred.append(step.name)
        return PhysicalPlan(
            pipeline=pipeline.name, steps=tuple(steps), deferred=tuple(deferred)
        )

    def would_validate(self, spec: TaskSpec) -> bool:
        """Whether an ``"auto"`` spec qualifies for validation-driven selection."""
        if isinstance(spec, SortSpec):
            return len(spec.validation_order) >= _MIN_SORT_VALIDATION
        if isinstance(spec, ResolveSpec):
            return bool(spec.pairs) and len(spec.validation_labels) >= _MIN_RESOLVE_VALIDATION
        if isinstance(spec, ImputeSpec):
            return self._impute_validation_size(spec) >= _MIN_IMPUTE_VALIDATION
        if isinstance(spec, FilterSpec):
            return len(spec.validation_labels) >= _MIN_FILTER_VALIDATION
        if isinstance(spec, CategorizeSpec):
            return len(spec.validation_labels) >= _MIN_CATEGORIZE_VALIDATION
        return False

    # -- cost-based selection ---------------------------------------------------------

    def _resolve_by_cost(
        self,
        spec: TaskSpec,
        budget: "Budget | BudgetLease | None",
        *,
        want_estimate: bool = False,
    ) -> ResolvedStrategy:
        """Pick the most preferred candidate whose estimate fits the budget.

        Candidates are ordered by the paper's cost/quality preference for
        the operator (the historical ``auto`` default first), so an
        unconstrained resolve reproduces the old fixed mapping exactly; a
        binding budget walks down the list to something affordable, and
        when nothing fits the cheapest estimate wins (the engine would
        rather degrade than refuse).

        With no dollar cap the choice needs no prices at all, so nothing
        is estimated (pricing tokenizes the whole corpus per candidate —
        pure overhead on the execution hot path) unless ``want_estimate``
        asks for the chosen candidate's quote (physical-plan inspection).
        """
        candidates = self._cost_candidates(spec)
        planner = self.cost_planner()
        remaining = self._remaining_dollars(spec, budget)
        considered = tuple(name for name, _ in candidates)

        if remaining is None:
            for name, candidate_options in candidates:
                if not self._fits_context(spec, name, planner):
                    continue
                options = self._run_options(spec, candidate_options)
                estimate = (
                    self._try_estimate(spec, name, options) if want_estimate else None
                )
                return ResolvedStrategy(name, options, "cost", estimate, considered)
            name, candidate_options = candidates[0]
            return ResolvedStrategy(
                name, self._run_options(spec, candidate_options), "cost", None, considered
            )

        estimated: list[tuple[str, dict, CostEstimate | None]] = []
        for name, candidate_options in candidates:
            options = self._run_options(spec, candidate_options)
            estimated.append((name, options, self._try_estimate(spec, name, options)))

        for name, options, estimate in estimated:
            if estimate is None:
                continue
            if not self._fits_context(spec, name, planner):
                continue
            if estimate.dollars <= remaining:
                return ResolvedStrategy(name, options, "cost", estimate, considered)
        affordable = [
            entry
            for entry in estimated
            if entry[2] is not None and self._fits_context(spec, entry[0], planner)
        ]
        if affordable:
            name, options, estimate = min(affordable, key=lambda entry: entry[2].dollars)
            return ResolvedStrategy(name, options, "cost", estimate, considered)
        name, options, estimate = estimated[0]
        return ResolvedStrategy(name, options, "cost", estimate, considered)

    def _cost_candidates(self, spec: TaskSpec) -> list[tuple[str, dict]]:
        """Quality-preference-ordered candidates per operator (default first)."""
        if isinstance(spec, SortSpec):
            return [("pairwise", {}), ("rating", {}), ("single_prompt", {})]
        if isinstance(spec, ResolveSpec):
            if spec.pairs:
                return [
                    ("transitive", {"neighbors_k": spec.neighbors_k}),
                    ("pairwise", {}),
                ]
            return [("pairwise", {}), ("blocked_pairwise", {}), ("single_prompt", {})]
        if isinstance(spec, ImputeSpec):
            return [("hybrid", {}), ("retrieval", {}), ("llm_only", {}), ("knn", {})]
        if isinstance(spec, FilterSpec):
            return [("per_item", {})]
        if isinstance(spec, CategorizeSpec):
            return [("per_item", {})]
        if isinstance(spec, TopKSpec):
            return [("hybrid_rating_comparison", {}), ("rating_only", {})]
        if isinstance(spec, JoinSpec):
            return [("blocked", {})]
        if isinstance(spec, ClusterSpec):
            return [("two_phase", {}), ("single_prompt", {})]
        raise SpecError(f"cannot plan strategies for spec type {type(spec).__name__}")

    @staticmethod
    def _run_options(spec: TaskSpec, candidate_options: Mapping[str, Any]) -> dict:
        """Options the chosen strategy runs with.

        Sort and pair-judgment resolves take only the candidate's own
        options (their strategy choosers always owned the option set);
        impute takes none (``n_examples`` travels on the spec); the other
        operators keep the author's ``strategy_options`` with the
        candidate's merged over them.
        """
        if isinstance(spec, SortSpec) or (isinstance(spec, ResolveSpec) and spec.pairs):
            return dict(candidate_options)
        if isinstance(spec, ImputeSpec):
            return {}
        return {**spec.strategy_options, **candidate_options}

    def _remaining_dollars(
        self, spec: TaskSpec, budget: "Budget | BudgetLease | None"
    ) -> float | None:
        """The tightest dollar cap this spec must fit under, or ``None``."""
        caps: list[float] = []
        if spec.budget_dollars is not None:
            caps.append(spec.budget_dollars)
        if budget is not None and not budget.unlimited:
            caps.append(budget.remaining)
        return min(caps) if caps else None

    def _try_estimate(
        self,
        spec: TaskSpec,
        strategy: str | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> CostEstimate | None:
        """Estimate a spec at a candidate strategy; ``None`` when unpriceable."""
        try:
            candidate = spec
            if strategy is not None:
                candidate = replace(
                    spec,
                    strategy=strategy,
                    strategy_options={**spec.strategy_options, **(options or {})},
                )
            return self.cost_planner().estimate_spec(candidate)
        except (SpecError, ConfigurationError):
            return None

    def _fits_context(self, spec: TaskSpec, strategy: str, planner: CostPlanner) -> bool:
        """Whole-list strategies must fit the model context to be eligible."""
        if strategy != "single_prompt":
            return True
        items = self._context_items(spec)
        if not items:
            return True
        try:
            return planner.fits_context(items)
        except ConfigurationError:
            return True

    @staticmethod
    def _context_items(spec: TaskSpec) -> list[str]:
        if isinstance(spec, SortSpec) or isinstance(spec, ClusterSpec):
            return [str(item) for item in spec.items]
        if isinstance(spec, ResolveSpec):
            return [str(record) for record in spec.records]
        return []

    # -- validation-driven selection --------------------------------------------------

    def _resolve_by_validation(
        self, spec: TaskSpec, budget: "Budget | BudgetLease | None"
    ) -> ResolvedStrategy | None:
        """Measure candidates on the spec's labelled sample, when it has one."""
        if not self.would_validate(spec):
            return None
        if isinstance(spec, SortSpec):
            strategy, options = self._validate_sort(spec, budget)
        elif isinstance(spec, ResolveSpec):
            strategy, options = self._validate_resolve(spec, budget)
        elif isinstance(spec, ImputeSpec):
            strategy, options = self._validate_impute(spec, budget), {}
        elif isinstance(spec, FilterSpec):
            strategy, options = self._validate_filter(spec, budget)
        elif isinstance(spec, CategorizeSpec):
            strategy, options = self._validate_categorize(spec, budget)
        else:  # pragma: no cover - would_validate only matches the types above
            return None
        return ResolvedStrategy(
            strategy=strategy,
            options=dict(options),
            decided_by="validation",
            estimate=self._try_estimate(spec, strategy, options),
        )

    @staticmethod
    def _impute_validation_size(spec: ImputeSpec) -> int:
        if spec.data is None:
            return 0
        return min(spec.validation_size, len(spec.data.queries))

    def _validate_sort(
        self, spec: SortSpec, budget: "Budget | BudgetLease | None"
    ) -> tuple[str, dict]:
        validation_items = list(spec.validation_order)
        candidates = [
            StrategyCandidate(name="single_prompt", cost_scaling="constant"),
            StrategyCandidate(name="rating", cost_scaling="linear"),
            StrategyCandidate(name="pairwise", cost_scaling="quadratic"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> SortResult:
            operator = SortOperator(
                self.session.client(budget), spec.criterion, **self.operator_kwargs(budget)
            )
            return operator.run(validation_items, strategy=candidate.name, **candidate.options)

        def score(result: SortResult) -> float:
            placed = set(result.order)
            order = list(result.order) + [
                item for item in validation_items if item not in placed
            ]
            tau = kendall_tau_b(order, validation_items)
            return (tau + 1.0) / 2.0

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_items),
            full_size=len(spec.items),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    def _validate_resolve(
        self, spec: ResolveSpec, budget: "Budget | BudgetLease | None"
    ) -> tuple[str, dict]:
        labels = dict(spec.validation_labels)
        validation_pairs = list(labels)
        candidates = [
            StrategyCandidate(name="pairwise", cost_scaling="linear"),
            StrategyCandidate(
                name="transitive", options={"neighbors_k": spec.neighbors_k}, cost_scaling="linear"
            ),
            StrategyCandidate(name="proxy_hybrid", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> PairJudgmentResult:
            operator = ResolveOperator(
                self.session.client(budget), **self.operator_kwargs(budget)
            )
            return operator.judge_pairs(
                validation_pairs,
                strategy=candidate.name,
                corpus=list(spec.records) or None,
                **candidate.options,
            )

        def score(result: PairJudgmentResult) -> float:
            predictions = [judgment.is_duplicate for judgment in result.judgments]
            truth = [labels[pair] for pair in validation_pairs]
            return f1_score(predictions, truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_pairs),
            full_size=len(spec.pairs),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    def _validate_impute(
        self, spec: ImputeSpec, budget: "Budget | BudgetLease | None"
    ) -> str:
        data = spec.data
        assert data is not None  # caller checked the validation size
        validation_size = self._impute_validation_size(spec)
        validation_records = data.queries.records[:validation_size]
        validation_data = ImputationDataset(
            name=f"{data.name}-validation",
            target_attribute=data.target_attribute,
            queries=Dataset(validation_records, name=f"{data.name}-validation-queries"),
            reference=data.reference,
            ground_truth={
                record.record_id: data.ground_truth[record.record_id]
                for record in validation_records
            },
        )
        candidates = [
            StrategyCandidate(name="knn", cost_scaling="linear"),
            StrategyCandidate(name="hybrid", cost_scaling="linear"),
            StrategyCandidate(name="retrieval", cost_scaling="linear"),
            StrategyCandidate(name="llm_only", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> ImputeResult:
            operator = ImputeOperator(
                self.session.client(budget), **self.operator_kwargs(budget)
            )
            return operator.run(validation_data, strategy=candidate.name, n_examples=spec.n_examples)

        def score(result: ImputeResult) -> float:
            return exact_match_accuracy(result.predictions, validation_data.ground_truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=validation_size,
            full_size=len(data.queries),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name

    def _ensemble_models(self, spec: TaskSpec) -> list[str]:
        """Voter models for filter/categorize ensemble candidates.

        An explicit ``strategy_options["models"]`` wins; otherwise the
        cheapest chat models in the session registry form the default panel
        (diverse-but-affordable voters, the quality-control setting of
        paper Section 3.5).  Fewer than two voters disables the ensemble
        candidates — a one-model "ensemble" is just per-item with overhead.
        """
        explicit = spec.strategy_options.get("models")
        if explicit:
            return [str(model) for model in explicit]
        by_cost = self.session.registry.chat_models_by_cost()
        return [model.name for model in by_cost[:_DEFAULT_ENSEMBLE_SIZE]]

    def _validate_filter(
        self, spec: FilterSpec, budget: "Budget | BudgetLease | None"
    ) -> tuple[str, dict]:
        """Pick a filter strategy by measuring candidates on the labelled items.

        Labels are for the *conjunction* of the spec's predicates, so each
        candidate runs the predicates sequentially over a shrinking survivor
        set — exactly how the engine executes the full spec — and is scored
        by the F1 of its final keep/drop decisions against the labels.
        """
        labels = {str(item): bool(keep) for item, keep in spec.validation_labels.items()}
        sample = list(labels)
        models = self._ensemble_models(spec)
        candidates = [StrategyCandidate(name="per_item", cost_scaling="linear")]
        if len(models) >= 2:
            candidates.append(
                StrategyCandidate(
                    name="ensemble_vote", options={"models": models}, cost_scaling="linear"
                )
            )
            candidates.append(
                StrategyCandidate(
                    name="adaptive", options={"models": models}, cost_scaling="linear"
                )
            )

        def run_candidate(candidate: StrategyCandidate) -> FilterResult:
            decisions = {item: True for item in sample}
            survivors = sample
            merged = FilterResult(strategy=candidate.name, decisions=decisions)
            for predicate in spec.all_predicates:
                if not survivors:
                    break
                operator = FilterOperator(
                    self.session.client(budget), predicate, **self.operator_kwargs(budget)
                )
                result = operator.run(survivors, strategy=candidate.name, **candidate.options)
                for item in survivors:
                    decisions[item] = result.decisions.get(item, False)
                survivors = list(result.kept)
                merged.usage.add(result.usage)
                merged.cost += result.cost
                merged.votes_used += result.votes_used
            merged.kept = [item for item in sample if decisions[item]]
            return merged

        def score(result: FilterResult) -> float:
            predictions = [result.decisions.get(item, False) for item in sample]
            truth = [labels[item] for item in sample]
            return f1_score(predictions, truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(sample),
            full_size=len(spec.items),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    def resolve_filter(
        self,
        spec: FilterSpec,
        *,
        budget: "Budget | BudgetLease | None" = None,
    ) -> list[tuple[str, ResolvedStrategy]]:
        """Resolve a filter spec to one strategy *per predicate*, in order.

        A fixed strategy, a single-predicate spec, or an ``auto`` spec with
        no usable validation sample resolves exactly like :meth:`resolve`
        and applies that one choice to every predicate — unchanged
        behaviour.  A multi-predicate ``auto`` spec *with* validation
        labels searches per-predicate strategy combinations instead: the
        labels score the conjunction, so a cheap ``per_item`` pass on an
        easy predicate can precede an ensemble vote on the hard one
        without giving up conjunction-level accuracy.
        """
        predicates = list(spec.all_predicates)
        if spec.strategy != "auto":
            fixed = ResolvedStrategy(
                strategy=spec.strategy,
                options=dict(spec.strategy_options),
                decided_by="fixed",
                considered=(spec.strategy,),
            )
            return [(predicate, fixed) for predicate in predicates]
        if (
            len(predicates) > 1
            and len(predicates) <= _MAX_PER_PREDICATE_SEARCH
            and self.would_validate(spec)
        ):
            return self._validate_filter_per_predicate(spec, budget)
        shared = self.resolve(spec, budget=budget)
        return [(predicate, shared) for predicate in predicates]

    def _validate_filter_per_predicate(
        self, spec: FilterSpec, budget: "Budget | BudgetLease | None"
    ) -> list[tuple[str, ResolvedStrategy]]:
        """Search per-predicate strategy combinations on the labelled sample.

        Each candidate strategy judges each predicate over the *full*
        sample (not a shrinking survivor set — the search needs every
        predicate's decision on every item to score arbitrary
        combinations), then every candidate^predicate combination is
        scored by the F1 of its AND-ed decisions against the conjunction
        labels.  With an ``accuracy_target`` the cheapest combination
        meeting it wins; otherwise the best-scoring one, with measured
        sample cost as the tie-break so a cheap ``per_item`` pass beats
        an equally-accurate ensemble.
        """
        labels = {str(item): bool(keep) for item, keep in spec.validation_labels.items()}
        sample = list(labels)
        truth = [labels[item] for item in sample]
        models = self._ensemble_models(spec)
        candidates = [StrategyCandidate(name="per_item", cost_scaling="linear")]
        if len(models) >= 2:
            candidates.append(
                StrategyCandidate(
                    name="ensemble_vote", options={"models": models}, cost_scaling="linear"
                )
            )
            candidates.append(
                StrategyCandidate(
                    name="adaptive", options={"models": models}, cost_scaling="linear"
                )
            )
        predicates = list(spec.all_predicates)
        considered = tuple(candidate.name for candidate in candidates)

        # decisions/cost of candidate ``c`` judging predicate ``p`` alone.
        measured: dict[tuple[int, int], tuple[dict[str, bool], float]] = {}
        for p, predicate in enumerate(predicates):
            for c, candidate in enumerate(candidates):
                operator = FilterOperator(
                    self.session.client(budget), predicate, **self.operator_kwargs(budget)
                )
                result = operator.run(sample, strategy=candidate.name, **candidate.options)
                measured[(p, c)] = (dict(result.decisions), result.cost)

        best_combo: tuple[int, ...] | None = None
        best_key: tuple[float, float] | None = None
        target_combo: tuple[int, ...] | None = None
        target_cost: float | None = None
        for combo in itertools.product(range(len(candidates)), repeat=len(predicates)):
            predictions = [
                all(measured[(p, c)][0].get(item, False) for p, c in enumerate(combo))
                for item in sample
            ]
            score = f1_score(predictions, truth)
            cost = sum(measured[(p, c)][1] for p, c in enumerate(combo))
            key = (score, -cost)
            if best_key is None or key > best_key:
                best_key, best_combo = key, combo
            if spec.accuracy_target is not None and score >= spec.accuracy_target:
                if target_cost is None or cost < target_cost:
                    target_cost, target_combo = cost, combo
        chosen = target_combo if target_combo is not None else best_combo
        assert chosen is not None  # the product is non-empty
        return [
            (
                predicates[p],
                ResolvedStrategy(
                    strategy=candidates[c].name,
                    options=dict(candidates[c].options),
                    decided_by="validation",
                    considered=considered,
                ),
            )
            for p, c in enumerate(chosen)
        ]

    def _validate_categorize(
        self, spec: CategorizeSpec, budget: "Budget | BudgetLease | None"
    ) -> tuple[str, dict]:
        """Pick a categorize strategy by accuracy on the labelled items."""
        labels = {str(item): str(label) for item, label in spec.validation_labels.items()}
        sample = list(labels)
        models = self._ensemble_models(spec)
        candidates = [
            StrategyCandidate(name="per_item", cost_scaling="linear"),
            StrategyCandidate(
                name="self_consistency", options={"n_samples": 3}, cost_scaling="linear"
            ),
        ]
        if len(models) >= 2:
            candidates.append(
                StrategyCandidate(
                    name="ensemble_vote", options={"models": models}, cost_scaling="linear"
                )
            )

        def run_candidate(candidate: StrategyCandidate) -> CategorizeResult:
            operator = CategorizeOperator(
                self.session.client(budget),
                list(spec.categories),
                **self.operator_kwargs(budget),
            )
            return operator.run(sample, strategy=candidate.name, **candidate.options)

        def score(result: CategorizeResult) -> float:
            return exact_match_accuracy(result.assignments, labels)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(sample),
            full_size=len(spec.items),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    # -- feedback --------------------------------------------------------------------

    def record_run(self, spec: TaskSpec, resolved: ResolvedStrategy, result: Any) -> None:
        """Record an operator run's call count against its pre-run estimate.

        The baseline is the *stats-free* structural estimate of the spec
        at the strategy that **actually executed** — never the authored
        ``"auto"`` — so a budget-downgraded or validation-selected run can
        only feed the ratio of its own strategy, not poison the default's
        (the planner maps auto-labelled quotes to the default strategy's
        key when it looks ratios up).  Filter specs are excluded — their
        error is explained by predicate selectivity, which is recorded
        separately (applying both would double-correct).

        This prices one structural (stats-free) estimate per run — a local
        tokenizer arithmetic pass.  Unlike the fixed-path estimate
        ``resolve`` skips, this one is *used* (it is the ratio's
        denominator), and it is negligible next to the 1..O(n²) LLM calls
        the operator itself just made.
        """
        if isinstance(spec, FilterSpec):
            return
        try:
            executed = replace(
                spec,
                strategy=resolved.strategy,
                strategy_options={**spec.strategy_options, **resolved.options},
            )
            baseline = self.cost_planner(with_stats=False).estimate_spec(executed)
        except (SpecError, ConfigurationError):
            return
        usage = getattr(result, "usage", None)
        actual = getattr(usage, "calls", None)
        if actual is None:
            return
        self.stats.record_calls(
            baseline.strategy, estimated=baseline.calls, actual=int(actual)
        )
