"""Declarative task specifications.

A spec captures *what* the user wants done, independent of *how* it will be
executed: the operation, the data, the quality/cost targets, and optionally a
labelled validation sample the optimizer may use to choose a strategy.

Beyond single-operator specs, :class:`PipelineSpec` declares a whole
multi-operator workflow as data: named steps carrying operator specs (or
plain callables for LLM-free stages), connected by ``depends_on`` edges into
a DAG.  The engine turns a pipeline spec into a scheduled
:class:`~repro.core.workflow.Workflow`, quotes it a priori through the
:class:`~repro.core.planner.CostPlanner`, and runs independent steps
concurrently under one shared budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.dag import topological_waves
from repro.data.products import ImputationDataset
from repro.exceptions import SpecError

#: A step's spec may be built at run time from upstream results: the factory
#: receives ``{dependency name: result}`` and returns the concrete spec.
SpecFactory = Callable[[Mapping[str, Any]], "TaskSpec"]


@dataclass
class TaskSpec:
    """Base class for declarative task specifications.

    Attributes:
        budget_dollars: optional monetary budget for the task.
        accuracy_target: optional minimum acceptable accuracy in [0, 1].
        strategy: explicit strategy name, or ``"auto"`` to let the
            :class:`~repro.core.physical.PhysicalPlanner` choose — by
            measured accuracy when the spec carries a labelled validation
            sample, by estimated cost under the remaining budget otherwise.
        strategy_options: keyword arguments forwarded to the chosen strategy.
    """

    budget_dollars: float | None = None
    accuracy_target: float | None = None
    strategy: str = "auto"
    strategy_options: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`SpecError` if the spec is inconsistent."""
        if self.budget_dollars is not None and self.budget_dollars < 0:
            raise SpecError("budget_dollars must be non-negative")
        if self.accuracy_target is not None and not 0.0 <= self.accuracy_target <= 1.0:
            raise SpecError("accuracy_target must be within [0, 1]")


@dataclass
class SortSpec(TaskSpec):
    """Sort ``items`` by ``criterion``.

    ``validation_order`` optionally provides the ground-truth order of a small
    labelled subset of the items, which the optimizer uses to score candidate
    strategies before committing to one for the full list.
    """

    items: Sequence[str] = ()
    criterion: str = ""
    validation_order: Sequence[str] = ()

    def validate(self) -> None:
        super().validate()
        if not self.criterion:
            raise SpecError("a sort spec needs a criterion")
        if not self.items:
            # One item is a valid degenerate sort (the operator returns it
            # without any LLM calls); an empty list is a mis-wired spec.
            raise SpecError("a sort spec needs at least one item")
        unknown = set(self.validation_order) - set(self.items)
        if unknown:
            raise SpecError(f"validation items not present in the input: {sorted(unknown)}")


@dataclass
class ResolveSpec(TaskSpec):
    """Judge duplicate pairs (or cluster records when ``pairs`` is empty)."""

    records: Sequence[str] = ()
    pairs: Sequence[tuple[str, str]] = ()
    validation_labels: Mapping[tuple[str, str], bool] = field(default_factory=dict)
    neighbors_k: int = 1

    def validate(self) -> None:
        super().validate()
        if not self.records and not self.pairs:
            raise SpecError("a resolve spec needs records or pairs")
        if self.neighbors_k < 0:
            raise SpecError("neighbors_k must be non-negative")


@dataclass
class ImputeSpec(TaskSpec):
    """Impute the missing attribute of an :class:`ImputationDataset`.

    Strategies: ``"knn"`` (proxy only), ``"llm_only"``, ``"hybrid"``
    (unanimous neighbors answer for free), and ``"retrieval"`` — the hybrid
    escalation with neighbors pulled from a vector index over the reference
    embeddings, each escalated prompt grounded in those retrieved labelled
    records.  ``"auto"`` lets the physical planner choose among them.
    """

    data: ImputationDataset | None = None
    n_examples: int = 0
    validation_size: int = 20

    def validate(self) -> None:
        super().validate()
        if self.data is None:
            raise SpecError("an impute spec needs a dataset")
        if self.n_examples < 0:
            raise SpecError("n_examples must be non-negative")
        if self.validation_size < 0:
            raise SpecError("validation_size must be non-negative")


@dataclass
class FilterSpec(TaskSpec):
    """Keep the ``items`` satisfying a natural-language ``predicate``.

    ``predicates`` may carry several conjunctive predicates (every one must
    hold); the engine applies them in order over a shrinking survivor set —
    the fused form the query optimizer emits for adjacent ``.filter()``
    calls.  Setting ``predicate`` is shorthand for a single-element
    ``predicates``.  ``expected_selectivities`` optionally gives the planner
    a surviving-fraction prior per predicate (0.5 each when omitted), so a
    fused spec quotes exactly like the equivalent sequential steps.

    ``validation_labels`` optionally maps a small labelled subset of the
    items to their ground-truth keep/drop decision (for the *conjunction*
    of the predicates).  An ``"auto"`` spec carrying enough labels is
    resolved by validation-driven selection: the
    :class:`~repro.core.physical.PhysicalPlanner` measures the per-item
    strategy against the ensemble strategies on the labelled sample and
    picks the best under the spec's budget/accuracy constraints.
    """

    items: Sequence[str] = ()
    predicate: str = ""
    predicates: Sequence[str] = ()
    expected_selectivities: Sequence[float] = ()
    validation_labels: Mapping[str, bool] = field(default_factory=dict)

    @property
    def all_predicates(self) -> tuple[str, ...]:
        """The conjunctive predicate list, whichever field it was given in."""
        if self.predicate:
            return (self.predicate, *self.predicates)
        return tuple(self.predicates)

    def validate(self) -> None:
        super().validate()
        if not self.all_predicates:
            raise SpecError("a filter spec needs at least one predicate")
        if any(not predicate for predicate in self.predicates):
            raise SpecError("filter predicates must be non-empty strings")
        if not self.items:
            raise SpecError("a filter spec needs at least one item")
        if any(not 0.0 < value <= 1.0 for value in self.expected_selectivities):
            raise SpecError("expected_selectivities must be in (0, 1]")
        unknown = set(self.validation_labels) - {str(item) for item in self.items}
        if unknown:
            raise SpecError(
                f"validation-labelled items not present in the input: {sorted(unknown)}"
            )


@dataclass
class CategorizeSpec(TaskSpec):
    """Assign each of ``items`` to one of the fixed ``categories``.

    ``validation_labels`` optionally maps a small labelled subset of the
    items to their true category; an ``"auto"`` spec carrying enough labels
    goes through validation-driven selection (per-item vs. self-consistency
    vs. multi-model ensemble) instead of the cost-based default.
    """

    items: Sequence[str] = ()
    categories: Sequence[str] = ()
    validation_labels: Mapping[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        super().validate()
        if not self.items:
            raise SpecError("a categorize spec needs at least one item")
        labels = [str(category) for category in self.categories]
        if len(labels) < 2:
            raise SpecError("a categorize spec needs at least two categories")
        if len(set(labels)) != len(labels):
            raise SpecError("categories must be distinct")
        unknown = set(self.validation_labels) - {str(item) for item in self.items}
        if unknown:
            raise SpecError(
                f"validation-labelled items not present in the input: {sorted(unknown)}"
            )
        bad_labels = {str(v) for v in self.validation_labels.values()} - set(labels)
        if bad_labels:
            raise SpecError(
                f"validation labels outside the category set: {sorted(bad_labels)}"
            )


@dataclass
class TopKSpec(TaskSpec):
    """Find the top ``k`` of ``items`` under ``criterion``."""

    items: Sequence[str] = ()
    criterion: str = ""
    k: int = 1

    def validate(self) -> None:
        super().validate()
        if not self.criterion:
            raise SpecError("a top-k spec needs a criterion")
        if not self.items:
            raise SpecError("a top-k spec needs at least one item")
        if self.k < 1:
            raise SpecError("k must be at least 1")
        if self.k > len(self.items):
            raise SpecError(f"k={self.k} exceeds the number of items ({len(self.items)})")


@dataclass
class JoinSpec(TaskSpec):
    """Fuzzy-join ``left`` records against ``right`` records."""

    left: Sequence[str] = ()
    right: Sequence[str] = ()

    def validate(self) -> None:
        super().validate()
        if not self.left or not self.right:
            raise SpecError("a join spec needs at least one record on each side")


@dataclass
class ClusterSpec(TaskSpec):
    """Group ``items`` that refer to the same underlying entity or category."""

    items: Sequence[str] = ()

    def validate(self) -> None:
        super().validate()
        if not self.items:
            raise SpecError("a cluster spec needs at least one item")
        if len(self.items) != len(set(self.items)):
            raise SpecError("cluster items must be unique strings")


@dataclass
class PipelineStep:
    """One named step of a declarative pipeline.

    Exactly one of ``task`` and ``run`` must be set:

    * ``task`` — an operator spec the engine executes directly
      (:class:`SortSpec`, :class:`ResolveSpec`, :class:`ImputeSpec`, ...), or
      a :data:`SpecFactory` callable that builds the spec at run time from
      the results of this step's dependencies.
    * ``run`` — an arbitrary callable ``(session, inputs) -> result`` for
      LLM-free stages (blocking, graph repair, merging, ...), where
      ``inputs`` maps each transitive dependency's name to its result.

    Attributes:
        name: unique step name; downstream steps reference it in
            ``depends_on`` and read its result under this key.
        task: operator spec (or factory) the engine runs for this step.
        run: plain callable alternative to ``task``.
        depends_on: names of the steps whose results this step consumes.
        description: human-readable summary, used in reports and quotes.
    """

    name: str
    task: TaskSpec | SpecFactory | None = None
    run: Callable[..., Any] | None = None
    depends_on: tuple[str, ...] = ()
    description: str = ""

    def validate(self) -> None:
        if not self.name:
            raise SpecError("a pipeline step needs a name")
        if (self.task is None) == (self.run is None):
            raise SpecError(
                f"pipeline step {self.name!r} must set exactly one of task= and run="
            )
        if isinstance(self.task, TaskSpec):
            try:
                self.task.validate()
            except SpecError as exc:
                # Surface the offending step by name at compile time — an
                # empty-items spec otherwise dies mid-run as a confusing
                # operator error, after upstream steps have spent money.
                raise SpecError(f"pipeline step {self.name!r}: {exc}") from exc
        elif self.task is not None and not callable(self.task):
            # Catch a malformed task statically, before upstream steps have
            # already spent money at run time.
            raise SpecError(
                f"pipeline step {self.name!r} task must be a TaskSpec or a spec "
                f"factory, got {type(self.task).__name__}"
            )
        if self.run is not None and not callable(self.run):
            raise SpecError(f"pipeline step {self.name!r} run= must be callable")


@dataclass
class PipelineSpec:
    """A declarative multi-operator pipeline: steps plus dependency edges.

    The steps form a DAG; :meth:`validate` rejects duplicate step names,
    dependencies on unknown steps, and dependency cycles.  ``budget_dollars``
    optionally caps the whole pipeline — the scheduler apportions whatever
    remains of the session budget across the still-pending steps and stops
    cleanly once it runs dry.
    """

    name: str = "pipeline"
    steps: Sequence[PipelineStep] = ()
    budget_dollars: float | None = None
    description: str = ""

    def validate(self) -> None:
        """Raise :class:`SpecError` if the pipeline is inconsistent."""
        if not self.steps:
            raise SpecError(f"pipeline {self.name!r} has no steps")
        if self.budget_dollars is not None and self.budget_dollars < 0:
            raise SpecError("budget_dollars must be non-negative")
        seen: set[str] = set()
        for step in self.steps:
            step.validate()
            if step.name in seen:
                raise SpecError(f"duplicate pipeline step name: {step.name!r}")
            seen.add(step.name)
        self.waves()  # unknown dependencies and cycles

    def waves(self) -> list[list[str]]:
        """The scheduler's wave decomposition (independent steps share a wave)."""
        return topological_waves({step.name: list(step.depends_on) for step in self.steps})
