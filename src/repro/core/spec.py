"""Declarative task specifications.

A spec captures *what* the user wants done, independent of *how* it will be
executed: the operation, the data, the quality/cost targets, and optionally a
labelled validation sample the optimizer may use to choose a strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.data.products import ImputationDataset
from repro.exceptions import SpecError


@dataclass
class TaskSpec:
    """Base class for declarative task specifications.

    Attributes:
        budget_dollars: optional monetary budget for the task.
        accuracy_target: optional minimum acceptable accuracy in [0, 1].
        strategy: explicit strategy name, or ``"auto"`` to let the optimizer
            choose from the operator's registered strategies.
        strategy_options: keyword arguments forwarded to the chosen strategy.
    """

    budget_dollars: float | None = None
    accuracy_target: float | None = None
    strategy: str = "auto"
    strategy_options: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`SpecError` if the spec is inconsistent."""
        if self.budget_dollars is not None and self.budget_dollars < 0:
            raise SpecError("budget_dollars must be non-negative")
        if self.accuracy_target is not None and not 0.0 <= self.accuracy_target <= 1.0:
            raise SpecError("accuracy_target must be within [0, 1]")


@dataclass
class SortSpec(TaskSpec):
    """Sort ``items`` by ``criterion``.

    ``validation_order`` optionally provides the ground-truth order of a small
    labelled subset of the items, which the optimizer uses to score candidate
    strategies before committing to one for the full list.
    """

    items: Sequence[str] = ()
    criterion: str = ""
    validation_order: Sequence[str] = ()

    def validate(self) -> None:
        super().validate()
        if not self.criterion:
            raise SpecError("a sort spec needs a criterion")
        if len(self.items) < 2:
            raise SpecError("a sort spec needs at least two items")
        unknown = set(self.validation_order) - set(self.items)
        if unknown:
            raise SpecError(f"validation items not present in the input: {sorted(unknown)}")


@dataclass
class ResolveSpec(TaskSpec):
    """Judge duplicate pairs (or cluster records when ``pairs`` is empty)."""

    records: Sequence[str] = ()
    pairs: Sequence[tuple[str, str]] = ()
    validation_labels: Mapping[tuple[str, str], bool] = field(default_factory=dict)
    neighbors_k: int = 1

    def validate(self) -> None:
        super().validate()
        if not self.records and not self.pairs:
            raise SpecError("a resolve spec needs records or pairs")
        if self.neighbors_k < 0:
            raise SpecError("neighbors_k must be non-negative")


@dataclass
class ImputeSpec(TaskSpec):
    """Impute the missing attribute of an :class:`ImputationDataset`."""

    data: ImputationDataset | None = None
    n_examples: int = 0
    validation_size: int = 20

    def validate(self) -> None:
        super().validate()
        if self.data is None:
            raise SpecError("an impute spec needs a dataset")
        if self.n_examples < 0:
            raise SpecError("n_examples must be non-negative")
        if self.validation_size < 0:
            raise SpecError("validation_size must be non-negative")
