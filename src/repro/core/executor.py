"""Batched, optionally concurrent execution of independent LLM unit tasks.

The paper's declarative framing treats every operator as a bag of independent
unit tasks — pairwise comparisons, rating calls, per-record imputations.  The
:class:`BatchExecutor` is the single dispatch point those bags go through:

* ``max_concurrency == 1`` (the default) issues the batch through the client's
  native ``complete_batch`` — sequential, deterministic, and able to exploit
  batch-level optimisations such as the response cache's within-batch dedup.
* ``max_concurrency > 1`` fans the unit tasks out over a thread pool of that
  size.  Results always come back in input order, and at temperature 0 they
  are element-wise identical to the sequential path (the equivalence test
  suite in ``tests/`` asserts this for every converted operator).

Two reliability hooks ride along:

* *Retry integration* — pass a ``validator`` (plus ``max_retries``) and every
  unit task is wrapped in the :class:`~repro.llm.retry.RetryingClient`
  semantics, with aggregate stats exposed as :attr:`BatchExecutor.retry_stats`.
* *Budget-aware early stopping* — pass a :class:`~repro.core.budget.Budget`
  and the executor checks remaining funds before dispatching each unit task,
  raising :class:`~repro.exceptions.BudgetExceededError` without issuing the
  rest of the batch once the budget is exhausted.
"""

from __future__ import annotations

import asyncio
import contextvars
import inspect
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Iterable, Sequence

from repro.core.budget import Budget, BudgetLease
from repro.core.governor import ConcurrencyGovernor, estimated_prompt_tokens, is_rate_limit
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.llm.base import LLMResponse, call_acomplete, call_acomplete_batch, call_complete_batch
from repro.llm.retry import RetryingClient, RetryStats

#: The documented default thread-pool size for I/O-bound sync dispatch — the
#: reference point the async throughput benchmark compares against.  Chosen
#: like ``ThreadPoolExecutor``'s historical default for I/O workloads, but
#: fixed so benchmarks are machine-independent: thread-pool cost grows with
#: pool size (one OS thread per slot), which is exactly the blowup the
#: asyncio path avoids.
DEFAULT_POOL_SIZE = 8


@dataclass(frozen=True)
class BatchRequest:
    """One unit task: a prompt plus its per-call completion parameters."""

    prompt: str
    model: str | None = None
    temperature: float = 0.0
    max_tokens: int | None = None


@dataclass
class TaskOutcome:
    """What happened to one task scheduled through :meth:`BatchExecutor.map`.

    Three states: the task ran and produced ``value``; the task ran and
    raised ``error`` (``skipped`` is False); or the task never ran
    (``skipped`` is True) — because an earlier task in the batch failed
    first, or because the attached budget was exhausted before dispatch (in
    which case ``error`` carries the :class:`BudgetExceededError` from the
    pre-dispatch check, so callers can tell the two skip causes apart).
    """

    value: Any = None
    error: BaseException | None = None
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.skipped


def _attach_budget_stop(outcomes: list[TaskOutcome], error: BudgetExceededError) -> None:
    """Stamp the budget error onto every bare skipped outcome.

    Once a batch stopped because the budget died, *all* tasks it prevented
    from running share that cause — including ones whose pre-dispatch check
    never got to run because they were still queued (the concurrent path) or
    later in the loop (the sequential path).  Tasks skipped for other reasons
    already carry their own error and are left alone.
    """
    for index, outcome in enumerate(outcomes):
        if outcome.skipped and outcome.error is None:
            outcomes[index] = TaskOutcome(error=error, skipped=True)


class _BudgetPreCheckStop(Exception):
    """Internal: a map() task failed the pre-dispatch budget check.

    Distinguishes "the budget died before this task started" from "this task
    ran and raised", so the outcome can be reported as skipped rather than
    as a mid-task failure.
    """

    def __init__(self, error: BudgetExceededError) -> None:
        super().__init__(str(error))
        self.error = error


class _QueueDepth:
    """Context manager bumping the executor queue-depth gauge for one batch."""

    def __init__(self, instruments: Any | None, count: int) -> None:
        self._instruments = instruments
        self._count = count

    def __enter__(self) -> "_QueueDepth":
        if self._instruments is not None:
            self._instruments.note_enqueued(self._count)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._instruments is not None:
            self._instruments.note_dequeued(self._count)


class BatchExecutor:
    """Dispatch a list of independent unit tasks against one LLM client.

    Args:
        client: the client every unit task is issued through (typically an
            operator's tracked/cached client, or a session client).
        max_concurrency: thread-pool size; 1 means sequential native batching.
        budget: optional budget (or per-step :class:`~repro.core.budget.
            BudgetLease`) checked before each dispatch for early stopping.
        governor: optional :class:`~repro.core.governor.ConcurrencyGovernor`
            every unit-task dispatch is admitted through (RPM/TPM quotas,
            in-flight cap, adaptive backoff).  Sharing one governor between
            this executor and an :class:`AsyncBatchExecutor` gives sync and
            async traffic a single admission point.
        validator: optional response-text validator enabling per-call retries
            (see :class:`~repro.llm.retry.RetryingClient`).
        max_retries: additional attempts per unit task when a validator is set.
        retry_temperature: temperature used for those retry attempts.
        instruments: optional :class:`~repro.obs.SessionInstruments`; when
            set, the executor keeps the queue-depth and in-flight gauges
            current (sessions pass their own automatically).
    """

    def __init__(
        self,
        client: Any,
        *,
        max_concurrency: int = 1,
        budget: Budget | BudgetLease | None = None,
        governor: ConcurrencyGovernor | None = None,
        validator: Callable[[str], Any] | None = None,
        max_retries: int = 2,
        retry_temperature: float = 0.7,
        instruments: Any | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        self.max_concurrency = max_concurrency
        self.budget = budget
        self.governor = governor
        self.instruments = instruments
        if validator is not None:
            client = RetryingClient(
                client,
                validator=validator,
                max_retries=max_retries,
                retry_temperature=retry_temperature,
            )
            self.retry_stats: RetryStats | None = client.stats
        else:
            self.retry_stats = None
        self._client = client

    # -- dispatch -----------------------------------------------------------------

    def run(self, requests: Iterable[BatchRequest | str]) -> list[LLMResponse]:
        """Execute every request and return the responses in input order.

        Plain strings are promoted to default-parameter :class:`BatchRequest`
        objects.  Raises :class:`~repro.exceptions.BudgetExceededError` before
        dispatching further unit tasks once an attached budget is exhausted.
        """
        normalized = [
            request if isinstance(request, BatchRequest) else BatchRequest(prompt=request)
            for request in requests
        ]
        if not normalized:
            return []
        with self._queued(len(normalized)):
            if self.max_concurrency == 1 or len(normalized) == 1:
                return self._run_sequential(normalized)
            return self._run_concurrent(normalized)

    def map(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskOutcome]:
        """Run independent no-argument callables; outcomes in input order.

        This is the entry point the pipeline scheduler uses to run a wave of
        mutually independent steps: each task is an arbitrary callable (a
        whole operator run, not a single prompt), dispatched sequentially at
        ``max_concurrency == 1`` and over the thread pool otherwise.

        Unlike :meth:`run`, failures do not raise.  Each task's result or
        exception comes back in its :class:`TaskOutcome`; after the first
        failure — or once an attached budget is exhausted — the remaining
        not-yet-started tasks are marked ``skipped`` (in-flight tasks still
        finish), mirroring where the sequential loop would have stopped.  A
        task that never ran because the budget died before it started is
        reported as skipped *with the budget error attached* — and that
        holds for **every** such task, on both the sequential and the
        concurrent path, so callers can tell the two skip causes apart
        without caring which path executed the batch.
        """
        task_list = list(tasks)
        outcomes = [TaskOutcome(skipped=True) for _ in task_list]
        if not task_list:
            return outcomes
        with self._queued(len(task_list)):
            return self._map(task_list, outcomes)

    def _map(
        self, task_list: list[Callable[[], Any]], outcomes: list[TaskOutcome]
    ) -> list[TaskOutcome]:
        if self.max_concurrency == 1 or len(task_list) == 1:
            for index, task in enumerate(task_list):
                try:
                    self._check_budget()
                except BudgetExceededError as exc:
                    # Outcome parity with the concurrent path: every task the
                    # exhausted budget prevented from running carries the
                    # error, not just the first one.
                    for skipped_index in range(index, len(task_list)):
                        outcomes[skipped_index] = TaskOutcome(error=exc, skipped=True)
                    break
                try:
                    outcomes[index] = TaskOutcome(value=task())
                except BaseException as exc:  # noqa: BLE001 - reported, not raised
                    outcomes[index] = TaskOutcome(error=exc)
                    break
            return outcomes

        def guarded(task: Callable[[], Any]) -> Any:
            try:
                self._check_budget()
            except BudgetExceededError as exc:
                raise _BudgetPreCheckStop(exc) from exc
            return task()

        budget_stop: BudgetExceededError | None = None
        with ThreadPoolExecutor(max_workers=self.max_concurrency) as pool:
            # Each task runs under a fresh copy of the dispatching thread's
            # context, so ambient state (the trace labels of repro.trace)
            # survives the hop into the pool.  One copy per task: a single
            # Context object cannot run in two threads at once.
            futures = {
                pool.submit(contextvars.copy_context().run, guarded, task): index
                for index, task in enumerate(task_list)
            }
            failed = False
            for future, index in futures.items():
                try:
                    outcomes[index] = TaskOutcome(value=future.result())
                except CancelledError:
                    continue  # stays skipped
                except _BudgetPreCheckStop as stop:
                    outcomes[index] = TaskOutcome(error=stop.error, skipped=True)
                    budget_stop = budget_stop or stop.error
                    if not failed:
                        failed = True
                        pool.shutdown(wait=False, cancel_futures=True)
                except BaseException as exc:  # noqa: BLE001 - reported, not raised
                    outcomes[index] = TaskOutcome(error=exc)
                    if not failed:
                        failed = True
                        pool.shutdown(wait=False, cancel_futures=True)
        if budget_stop is not None:
            _attach_budget_stop(outcomes, budget_stop)
        return outcomes

    # -- internals ----------------------------------------------------------------

    def _queued(self, count: int):
        """Keep the queue-depth gauge current over one batch dispatch."""
        return _QueueDepth(self.instruments, count)

    def _check_budget(self) -> None:
        budget = self.budget
        if budget is not None and not budget.unlimited and budget.remaining <= 0.0:
            raise BudgetExceededError(budget.spent, budget.limit)

    def _complete_one(self, request: BatchRequest) -> LLMResponse:
        self._check_budget()
        if self.instruments is not None:
            self.instruments.note_task_started()
        try:
            return self._dispatch_one(request)
        finally:
            if self.instruments is not None:
                self.instruments.note_task_done()

    def _dispatch_one(self, request: BatchRequest) -> LLMResponse:
        if self.governor is None:
            return self._client.complete(
                request.prompt,
                model=request.model,
                temperature=request.temperature,
                max_tokens=request.max_tokens,
            )
        with self.governor.admit(
            request.model, estimated_tokens=estimated_prompt_tokens(request.prompt)
        ):
            try:
                response = self._client.complete(
                    request.prompt,
                    model=request.model,
                    temperature=request.temperature,
                    max_tokens=request.max_tokens,
                )
            except BaseException as exc:
                if is_rate_limit(exc):
                    self.governor.record_failure(exc)
                raise
        self.governor.record_success()
        return response

    def _homogeneous_params(
        self, requests: Sequence[BatchRequest]
    ) -> tuple[str | None, float, int | None] | None:
        params = {(request.model, request.temperature, request.max_tokens) for request in requests}
        if len(params) == 1:
            return next(iter(params))
        return None

    @property
    def _budget_enforced(self) -> bool:
        return self.budget is not None and not self.budget.unlimited

    def _run_sequential(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        params = self._homogeneous_params(requests)
        if params is not None and not self._budget_enforced and self.governor is None:
            # The common operator case: one prompt list, shared parameters, no
            # budget limit to check mid-batch and no governor to admit each
            # dispatch — hand the whole bag to the client's native batch
            # entry point in a single call.
            model, temperature, max_tokens = params
            return call_complete_batch(
                self._client,
                [request.prompt for request in requests],
                model=model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
        # Heterogeneous parameters (e.g. ensemble votes across models) or a
        # budget limit that must be able to stop the batch mid-way: dispatch
        # one by one, in order, so every call is charged before the next one
        # goes out.
        return [self._complete_one(request) for request in requests]

    def _run_concurrent(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        results: list[LLMResponse | None] = [None] * len(requests)
        # Duplicate temperature-0 requests must not race each other past a
        # downstream cache's check-then-act: only the first occurrence per
        # (model, prompt) — the response cache's key, so requests differing
        # only in max_tokens still count as duplicates — goes to the pool;
        # duplicates are resolved afterwards through the ordinary per-call
        # path, where they hit the now-warm cache (or, without a cache, pay
        # their own call — exactly like the sequential loop).
        seen: set[tuple[str | None, str]] = set()
        pooled: list[int] = []
        deferred: list[int] = []
        for index, request in enumerate(requests):
            if request.temperature == 0.0:
                key = (request.model, request.prompt)
                if key in seen:
                    deferred.append(index)
                    continue
                seen.add(key)
            pooled.append(index)
        errors: dict[int, BaseException] = {}
        with ThreadPoolExecutor(max_workers=self.max_concurrency) as pool:
            # Fresh context copy per unit task (see map() for the rationale).
            futures = {
                pool.submit(
                    contextvars.copy_context().run, self._complete_one, requests[index]
                ): index
                for index in pooled
            }
            # Collect in submission order with result() rather than
            # as_completed(): futures cancelled by shutdown(cancel_futures=
            # True) never notify as_completed's waiters (no worker runs their
            # set_running_or_notify_cancel), which would hang the iterator;
            # result() raises CancelledError on them immediately.
            cancelled = False
            for future, index in futures.items():
                try:
                    results[index] = future.result()
                except CancelledError:
                    continue
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[index] = exc
                    if not cancelled:
                        # A unit task failed: stop dispatching the queued ones
                        # (in-flight tasks finish), approximating where the
                        # sequential loop would have stopped.
                        cancelled = True
                        pool.shutdown(wait=False, cancel_futures=True)
        if errors:
            # Deterministic propagation: surface the failure of the earliest
            # request among those that ran.
            raise errors[min(errors)]
        for index in deferred:
            results[index] = self._complete_one(requests[index])
        assert all(response is not None for response in results)
        return results  # type: ignore[return-value]


class AsyncBatchExecutor:
    """Asyncio-native twin of :class:`BatchExecutor`.

    Same contract — ordered results, per-dispatch budget pre-checks,
    first-failure cancellation of not-yet-started work, duplicate-prompt
    dedup ahead of the cache, contextvar-propagated trace labels — but unit
    tasks are awaited as asyncio tasks bounded by a semaphore instead of
    fanned over a thread pool.  For I/O-bound provider calls that is the
    difference between paying one OS thread per concurrent call and paying
    none: concurrency 64 costs 64 pending awaits, not 64 threads.

    Sync-only clients stay drop-in: dispatch goes through
    :func:`~repro.llm.base.call_acomplete`, which bridges a client without
    ``acomplete`` into a worker thread.  An attached
    :class:`~repro.core.governor.ConcurrencyGovernor` admits every dispatch
    (``admit_async``), so a governor shared with a sync executor makes both
    paths obey one set of quotas.

    Args:
        client: the client every unit task is awaited through.
        max_concurrency: maximum simultaneously pending unit tasks.
        budget: optional budget/lease checked before each dispatch.
        governor: optional shared admission point (quotas, backoff, slots).
        validator: optional response-text validator enabling per-call retries.
        max_retries: additional attempts per unit task when a validator is set.
        retry_temperature: temperature used for those retry attempts.
        instruments: optional :class:`~repro.obs.SessionInstruments` keeping
            the queue-depth and in-flight gauges current.
    """

    def __init__(
        self,
        client: Any,
        *,
        max_concurrency: int = 16,
        budget: Budget | BudgetLease | None = None,
        governor: ConcurrencyGovernor | None = None,
        validator: Callable[[str], Any] | None = None,
        max_retries: int = 2,
        retry_temperature: float = 0.7,
        instruments: Any | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        self.max_concurrency = max_concurrency
        self.budget = budget
        self.governor = governor
        self.instruments = instruments
        if validator is not None:
            client = RetryingClient(
                client,
                validator=validator,
                max_retries=max_retries,
                retry_temperature=retry_temperature,
            )
            self.retry_stats: RetryStats | None = client.stats
        else:
            self.retry_stats = None
        self._client = client

    # -- dispatch -----------------------------------------------------------------

    async def run(self, requests: Iterable[BatchRequest | str]) -> list[LLMResponse]:
        """Execute every request and return the responses in input order.

        Semantics mirror :meth:`BatchExecutor.run`: plain strings are
        promoted to default-parameter requests, an exhausted budget raises
        :class:`~repro.exceptions.BudgetExceededError` before further
        dispatches, the first failure cancels queued (not in-flight) unit
        tasks and is re-raised deterministically (earliest request among
        those that ran), and temperature-0 duplicates of one (model, prompt)
        defer to the post-batch cache pass instead of racing it.
        """
        normalized = [
            request if isinstance(request, BatchRequest) else BatchRequest(prompt=request)
            for request in requests
        ]
        if not normalized:
            return []
        with _QueueDepth(self.instruments, len(normalized)):
            if self.max_concurrency == 1 or len(normalized) == 1:
                return await self._run_sequential(normalized)
            return await self._run_concurrent(normalized)

    async def map(
        self, tasks: Sequence[Callable[[], Any] | Callable[[], Awaitable[Any]]]
    ) -> list[TaskOutcome]:
        """Run independent no-argument callables; outcomes in input order.

        The async twin of :meth:`BatchExecutor.map`, with identical outcome
        semantics (including the budget-skip error attachment).  Tasks may be
        coroutine functions — awaited natively on the loop — or plain sync
        callables, which are bridged into worker threads so a wave of
        blocking operator runs still overlaps in wall-clock time.  Each task
        runs under the dispatching context (trace labels propagate both into
        asyncio tasks and across the thread bridge).
        """
        task_list = list(tasks)
        outcomes = [TaskOutcome(skipped=True) for _ in task_list]
        if not task_list:
            return outcomes
        semaphore = asyncio.Semaphore(self.max_concurrency)
        stopped = False
        budget_stop: BudgetExceededError | None = None

        async def worker(index: int, task: Callable[[], Any]) -> None:
            nonlocal stopped, budget_stop
            async with semaphore:
                if stopped:
                    return  # stays skipped: a sibling already failed
                try:
                    self._check_budget()
                except BudgetExceededError as exc:
                    outcomes[index] = TaskOutcome(error=exc, skipped=True)
                    budget_stop = budget_stop or exc
                    stopped = True
                    return
                try:
                    value = await _call_task(task)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - reported, not raised
                    outcomes[index] = TaskOutcome(error=exc)
                    stopped = True
                    return
                outcomes[index] = TaskOutcome(value=value)

        with _QueueDepth(self.instruments, len(task_list)):
            await asyncio.gather(
                *(
                    asyncio.create_task(worker(index, task))
                    for index, task in enumerate(task_list)
                )
            )
        if budget_stop is not None:
            _attach_budget_stop(outcomes, budget_stop)
        return outcomes

    # -- internals ----------------------------------------------------------------

    def _check_budget(self) -> None:
        budget = self.budget
        if budget is not None and not budget.unlimited and budget.remaining <= 0.0:
            raise BudgetExceededError(budget.spent, budget.limit)

    async def _complete_one(self, request: BatchRequest) -> LLMResponse:
        self._check_budget()
        if self.instruments is not None:
            self.instruments.note_task_started()
        try:
            return await self._dispatch_one(request)
        finally:
            if self.instruments is not None:
                self.instruments.note_task_done()

    async def _dispatch_one(self, request: BatchRequest) -> LLMResponse:
        if self.governor is None:
            return await call_acomplete(
                self._client,
                request.prompt,
                model=request.model,
                temperature=request.temperature,
                max_tokens=request.max_tokens,
            )
        async with self.governor.admit_async(
            request.model, estimated_tokens=estimated_prompt_tokens(request.prompt)
        ):
            try:
                response = await call_acomplete(
                    self._client,
                    request.prompt,
                    model=request.model,
                    temperature=request.temperature,
                    max_tokens=request.max_tokens,
                )
            except BaseException as exc:
                if is_rate_limit(exc):
                    self.governor.record_failure(exc)
                raise
        self.governor.record_success()
        return response

    @property
    def _budget_enforced(self) -> bool:
        return self.budget is not None and not self.budget.unlimited

    async def _run_sequential(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        params = {(request.model, request.temperature, request.max_tokens) for request in requests}
        if len(params) == 1 and not self._budget_enforced and self.governor is None:
            # Homogeneous parameters, nothing to check mid-batch: hand the
            # whole bag to the client's native async batch entry point.
            model, temperature, max_tokens = next(iter(params))
            return await call_acomplete_batch(
                self._client,
                [request.prompt for request in requests],
                model=model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
        return [await self._complete_one(request) for request in requests]

    async def _run_concurrent(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        results: list[LLMResponse | None] = [None] * len(requests)
        # Same dispatch-level dedup as the thread path: only the first
        # occurrence per temperature-0 (model, prompt) goes to the loop
        # concurrently; duplicates resolve afterwards through the per-call
        # path, where they hit the now-warm cache.
        seen: set[tuple[str | None, str]] = set()
        pooled: list[int] = []
        deferred: list[int] = []
        for index, request in enumerate(requests):
            if request.temperature == 0.0:
                key = (request.model, request.prompt)
                if key in seen:
                    deferred.append(index)
                    continue
                seen.add(key)
            pooled.append(index)
        errors: dict[int, BaseException] = {}
        semaphore = asyncio.Semaphore(self.max_concurrency)
        stopped = False

        async def worker(index: int) -> None:
            nonlocal stopped
            async with semaphore:
                if stopped:
                    return  # cancelled-equivalent: queued behind the failure
                try:
                    results[index] = await self._complete_one(requests[index])
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[index] = exc
                    stopped = True

        await asyncio.gather(*(asyncio.create_task(worker(index)) for index in pooled))
        if errors:
            # Deterministic propagation: the earliest request among those
            # that ran, exactly like the thread path.
            raise errors[min(errors)]
        for index in deferred:
            results[index] = await self._complete_one(requests[index])
        assert all(response is not None for response in results)
        return results  # type: ignore[return-value]


async def _call_task(task: Callable[[], Any]) -> Any:
    """Await a map() task: native coroutine functions run on the loop, sync
    callables hop to a worker thread (so blocking work still overlaps), and a
    sync callable returning an awaitable gets that awaited too."""
    if inspect.iscoroutinefunction(task):
        return await task()
    value = await asyncio.to_thread(task)
    if inspect.isawaitable(value):
        return await value
    return value
