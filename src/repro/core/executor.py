"""Batched, optionally concurrent execution of independent LLM unit tasks.

The paper's declarative framing treats every operator as a bag of independent
unit tasks — pairwise comparisons, rating calls, per-record imputations.  The
:class:`BatchExecutor` is the single dispatch point those bags go through:

* ``max_concurrency == 1`` (the default) issues the batch through the client's
  native ``complete_batch`` — sequential, deterministic, and able to exploit
  batch-level optimisations such as the response cache's within-batch dedup.
* ``max_concurrency > 1`` fans the unit tasks out over a thread pool of that
  size.  Results always come back in input order, and at temperature 0 they
  are element-wise identical to the sequential path (the equivalence test
  suite in ``tests/`` asserts this for every converted operator).

Two reliability hooks ride along:

* *Retry integration* — pass a ``validator`` (plus ``max_retries``) and every
  unit task is wrapped in the :class:`~repro.llm.retry.RetryingClient`
  semantics, with aggregate stats exposed as :attr:`BatchExecutor.retry_stats`.
* *Budget-aware early stopping* — pass a :class:`~repro.core.budget.Budget`
  and the executor checks remaining funds before dispatching each unit task,
  raising :class:`~repro.exceptions.BudgetExceededError` without issuing the
  rest of the batch once the budget is exhausted.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.budget import Budget, BudgetLease
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.llm.base import LLMResponse, call_complete_batch
from repro.llm.retry import RetryingClient, RetryStats


@dataclass(frozen=True)
class BatchRequest:
    """One unit task: a prompt plus its per-call completion parameters."""

    prompt: str
    model: str | None = None
    temperature: float = 0.0
    max_tokens: int | None = None


@dataclass
class TaskOutcome:
    """What happened to one task scheduled through :meth:`BatchExecutor.map`.

    Three states: the task ran and produced ``value``; the task ran and
    raised ``error`` (``skipped`` is False); or the task never ran
    (``skipped`` is True) — because an earlier task in the batch failed
    first, or because the attached budget was exhausted before dispatch (in
    which case ``error`` carries the :class:`BudgetExceededError` from the
    pre-dispatch check, so callers can tell the two skip causes apart).
    """

    value: Any = None
    error: BaseException | None = None
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.skipped


class _BudgetPreCheckStop(Exception):
    """Internal: a map() task failed the pre-dispatch budget check.

    Distinguishes "the budget died before this task started" from "this task
    ran and raised", so the outcome can be reported as skipped rather than
    as a mid-task failure.
    """

    def __init__(self, error: BudgetExceededError) -> None:
        super().__init__(str(error))
        self.error = error


class BatchExecutor:
    """Dispatch a list of independent unit tasks against one LLM client.

    Args:
        client: the client every unit task is issued through (typically an
            operator's tracked/cached client, or a session client).
        max_concurrency: thread-pool size; 1 means sequential native batching.
        budget: optional budget (or per-step :class:`~repro.core.budget.
            BudgetLease`) checked before each dispatch for early stopping.
        validator: optional response-text validator enabling per-call retries
            (see :class:`~repro.llm.retry.RetryingClient`).
        max_retries: additional attempts per unit task when a validator is set.
        retry_temperature: temperature used for those retry attempts.
    """

    def __init__(
        self,
        client: Any,
        *,
        max_concurrency: int = 1,
        budget: Budget | BudgetLease | None = None,
        validator: Callable[[str], Any] | None = None,
        max_retries: int = 2,
        retry_temperature: float = 0.7,
    ) -> None:
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        self.max_concurrency = max_concurrency
        self.budget = budget
        if validator is not None:
            client = RetryingClient(
                client,
                validator=validator,
                max_retries=max_retries,
                retry_temperature=retry_temperature,
            )
            self.retry_stats: RetryStats | None = client.stats
        else:
            self.retry_stats = None
        self._client = client

    # -- dispatch -----------------------------------------------------------------

    def run(self, requests: Iterable[BatchRequest | str]) -> list[LLMResponse]:
        """Execute every request and return the responses in input order.

        Plain strings are promoted to default-parameter :class:`BatchRequest`
        objects.  Raises :class:`~repro.exceptions.BudgetExceededError` before
        dispatching further unit tasks once an attached budget is exhausted.
        """
        normalized = [
            request if isinstance(request, BatchRequest) else BatchRequest(prompt=request)
            for request in requests
        ]
        if not normalized:
            return []
        if self.max_concurrency == 1 or len(normalized) == 1:
            return self._run_sequential(normalized)
        return self._run_concurrent(normalized)

    def map(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskOutcome]:
        """Run independent no-argument callables; outcomes in input order.

        This is the entry point the pipeline scheduler uses to run a wave of
        mutually independent steps: each task is an arbitrary callable (a
        whole operator run, not a single prompt), dispatched sequentially at
        ``max_concurrency == 1`` and over the thread pool otherwise.

        Unlike :meth:`run`, failures do not raise.  Each task's result or
        exception comes back in its :class:`TaskOutcome`; after the first
        failure — or once an attached budget is exhausted — the remaining
        not-yet-started tasks are marked ``skipped`` (in-flight tasks still
        finish), mirroring where the sequential loop would have stopped.  A
        task whose *pre-dispatch* budget check failed never ran: it is
        reported as skipped with the budget error attached, not as a
        mid-task failure.
        """
        task_list = list(tasks)
        outcomes = [TaskOutcome(skipped=True) for _ in task_list]
        if not task_list:
            return outcomes
        if self.max_concurrency == 1 or len(task_list) == 1:
            for index, task in enumerate(task_list):
                try:
                    self._check_budget()
                except BudgetExceededError as exc:
                    outcomes[index] = TaskOutcome(error=exc, skipped=True)
                    break
                try:
                    outcomes[index] = TaskOutcome(value=task())
                except BaseException as exc:  # noqa: BLE001 - reported, not raised
                    outcomes[index] = TaskOutcome(error=exc)
                    break
            return outcomes

        def guarded(task: Callable[[], Any]) -> Any:
            try:
                self._check_budget()
            except BudgetExceededError as exc:
                raise _BudgetPreCheckStop(exc) from exc
            return task()

        with ThreadPoolExecutor(max_workers=self.max_concurrency) as pool:
            # Each task runs under a fresh copy of the dispatching thread's
            # context, so ambient state (the trace labels of repro.trace)
            # survives the hop into the pool.  One copy per task: a single
            # Context object cannot run in two threads at once.
            futures = {
                pool.submit(contextvars.copy_context().run, guarded, task): index
                for index, task in enumerate(task_list)
            }
            failed = False
            for future, index in futures.items():
                try:
                    outcomes[index] = TaskOutcome(value=future.result())
                except CancelledError:
                    continue  # stays skipped
                except _BudgetPreCheckStop as stop:
                    outcomes[index] = TaskOutcome(error=stop.error, skipped=True)
                    if not failed:
                        failed = True
                        pool.shutdown(wait=False, cancel_futures=True)
                except BaseException as exc:  # noqa: BLE001 - reported, not raised
                    outcomes[index] = TaskOutcome(error=exc)
                    if not failed:
                        failed = True
                        pool.shutdown(wait=False, cancel_futures=True)
        return outcomes

    # -- internals ----------------------------------------------------------------

    def _check_budget(self) -> None:
        budget = self.budget
        if budget is not None and not budget.unlimited and budget.remaining <= 0.0:
            raise BudgetExceededError(budget.spent, budget.limit)

    def _complete_one(self, request: BatchRequest) -> LLMResponse:
        self._check_budget()
        return self._client.complete(
            request.prompt,
            model=request.model,
            temperature=request.temperature,
            max_tokens=request.max_tokens,
        )

    def _homogeneous_params(
        self, requests: Sequence[BatchRequest]
    ) -> tuple[str | None, float, int | None] | None:
        params = {(request.model, request.temperature, request.max_tokens) for request in requests}
        if len(params) == 1:
            return next(iter(params))
        return None

    @property
    def _budget_enforced(self) -> bool:
        return self.budget is not None and not self.budget.unlimited

    def _run_sequential(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        params = self._homogeneous_params(requests)
        if params is not None and not self._budget_enforced:
            # The common operator case: one prompt list, shared parameters, no
            # budget limit to check mid-batch — hand the whole bag to the
            # client's native batch entry point in a single call.
            model, temperature, max_tokens = params
            return call_complete_batch(
                self._client,
                [request.prompt for request in requests],
                model=model,
                temperature=temperature,
                max_tokens=max_tokens,
            )
        # Heterogeneous parameters (e.g. ensemble votes across models) or a
        # budget limit that must be able to stop the batch mid-way: dispatch
        # one by one, in order, so every call is charged before the next one
        # goes out.
        return [self._complete_one(request) for request in requests]

    def _run_concurrent(self, requests: Sequence[BatchRequest]) -> list[LLMResponse]:
        results: list[LLMResponse | None] = [None] * len(requests)
        # Duplicate temperature-0 requests must not race each other past a
        # downstream cache's check-then-act: only the first occurrence per
        # (model, prompt) — the response cache's key, so requests differing
        # only in max_tokens still count as duplicates — goes to the pool;
        # duplicates are resolved afterwards through the ordinary per-call
        # path, where they hit the now-warm cache (or, without a cache, pay
        # their own call — exactly like the sequential loop).
        seen: set[tuple[str | None, str]] = set()
        pooled: list[int] = []
        deferred: list[int] = []
        for index, request in enumerate(requests):
            if request.temperature == 0.0:
                key = (request.model, request.prompt)
                if key in seen:
                    deferred.append(index)
                    continue
                seen.add(key)
            pooled.append(index)
        errors: dict[int, BaseException] = {}
        with ThreadPoolExecutor(max_workers=self.max_concurrency) as pool:
            # Fresh context copy per unit task (see map() for the rationale).
            futures = {
                pool.submit(
                    contextvars.copy_context().run, self._complete_one, requests[index]
                ): index
                for index in pooled
            }
            # Collect in submission order with result() rather than
            # as_completed(): futures cancelled by shutdown(cancel_futures=
            # True) never notify as_completed's waiters (no worker runs their
            # set_running_or_notify_cancel), which would hang the iterator;
            # result() raises CancelledError on them immediately.
            cancelled = False
            for future, index in futures.items():
                try:
                    results[index] = future.result()
                except CancelledError:
                    continue
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[index] = exc
                    if not cancelled:
                        # A unit task failed: stop dispatching the queued ones
                        # (in-flight tasks finish), approximating where the
                        # sequential loop would have stopped.
                        cancelled = True
                        pool.shutdown(wait=False, cancel_futures=True)
        if errors:
            # Deterministic propagation: surface the failure of the earliest
            # request among those that ran.
            raise errors[min(errors)]
        for index in deferred:
            results[index] = self._complete_one(requests[index])
        assert all(response is not None for response in results)
        return results  # type: ignore[return-value]
