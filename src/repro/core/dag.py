"""Dependency-graph utilities shared by the pipeline spec and scheduler.

A pipeline is a set of named steps plus ``depends_on`` edges.  This module
holds the pure graph algorithms both layers need: validation (duplicate
names, unknown dependencies, cycles), the wave decomposition the scheduler
executes (Kahn's algorithm by levels), and the transitive-dependency closure
that determines which upstream results a step is allowed to read.

Everything here is deterministic: waves and closures follow the insertion
order of the input mapping, never thread timing, so two runs of the same
pipeline — at any concurrency — see identical step orderings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import SpecError


def validate_dependencies(dependencies: Mapping[str, Sequence[str]]) -> None:
    """Check that every dependency names a known step.

    Raises:
        SpecError: if a step depends on a name not present in the mapping.
    """
    names = set(dependencies)
    for name, deps in dependencies.items():
        unknown = sorted(set(deps) - names)
        if unknown:
            raise SpecError(
                f"step {name!r} depends on unknown step(s): {', '.join(repr(d) for d in unknown)}"
            )


def topological_waves(dependencies: Mapping[str, Sequence[str]]) -> list[list[str]]:
    """Decompose a dependency graph into executable waves.

    Wave ``k`` contains every step whose dependencies all completed in waves
    ``< k``; steps within one wave are mutually independent and may run
    concurrently.  Within a wave, steps keep the mapping's insertion order.

    Raises:
        SpecError: on unknown dependencies or dependency cycles.
    """
    validate_dependencies(dependencies)
    done: set[str] = set()
    remaining = list(dependencies)
    waves: list[list[str]] = []
    while remaining:
        ready = [name for name in remaining if all(dep in done for dep in dependencies[name])]
        if not ready:
            cycle = ", ".join(repr(name) for name in remaining)
            raise SpecError(f"dependency cycle among steps: {cycle}")
        waves.append(ready)
        done.update(ready)
        remaining = [name for name in remaining if name not in done]
    return waves


def transitive_dependencies(
    dependencies: Mapping[str, Sequence[str]]
) -> dict[str, list[str]]:
    """Transitive dependency closure of every step.

    The closure of a step is every step reachable by following ``depends_on``
    edges; it is the set of upstream results the step may read.  Each closure
    is returned in the mapping's insertion order.  Assumes the graph already
    passed :func:`topological_waves` (no cycles, no unknown names).
    """
    closures: dict[str, set[str]] = {}

    def closure(start: str) -> set[str]:
        # Iterative post-order DFS: a dependency chain can be thousands of
        # steps deep, which must not hit the interpreter recursion limit.
        stack = [start]
        while stack:
            node = stack[-1]
            if node in closures:
                stack.pop()
                continue
            missing = [dep for dep in dependencies[node] if dep not in closures]
            if missing:
                stack.extend(missing)
                continue
            reached: set[str] = set()
            for dep in dependencies[node]:
                reached.add(dep)
                reached.update(closures[dep])
            closures[node] = reached
            stack.pop()
        return closures[start]

    order = list(dependencies)
    result: dict[str, list[str]] = {}
    for name in order:
        reached = closure(name)
        result[name] = [dep for dep in order if dep in reached]
    return result
