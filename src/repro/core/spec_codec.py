"""JSON codecs for declarative task and pipeline specs.

The HTTP service layer (:mod:`repro.service`) accepts whole pipelines as
JSON bodies and persists submitted specs in the store's job table, so every
spec the engine can execute needs a faithful wire form.  The codec here is
deliberately explicit — one arm per spec type, mirroring the checkpoint
codecs of :mod:`repro.store.checkpoint` — rather than pickling or reflecting
over arbitrary objects: a JSON payload received over the network must never
be able to smuggle a callable or an unserialisable value into the engine.

Two spec features therefore do **not** round-trip, by design:

* ``PipelineStep.run`` callables and :data:`~repro.core.spec.SpecFactory`
  step factories — code is not data; encoding such a step raises
  :class:`~repro.exceptions.SpecError`.  Service clients express dataflow
  with concrete specs; factories remain available to in-process callers.
* non-JSON values inside ``strategy_options`` — rejected with
  :class:`~repro.exceptions.SpecError` at encode *and* decode time.

Decoded specs are re-validated by the caller (the service layer calls
``spec.validate()`` on every submission), so the codec restores structure
and leaves semantic checks to the spec itself.
"""

from __future__ import annotations

import json
from dataclasses import MISSING
from dataclasses import fields as dataclass_fields
from typing import Any, Mapping

from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.data.products import ImputationDataset
from repro.data.record import Dataset, Record
from repro.exceptions import SpecError

#: Bump when the wire layout changes; newer payloads are refused on decode.
SPEC_CODEC_VERSION = 1

_SPEC_TYPES: dict[str, type[TaskSpec]] = {
    cls.__name__: cls
    for cls in (
        SortSpec,
        ResolveSpec,
        ImputeSpec,
        FilterSpec,
        CategorizeSpec,
        TopKSpec,
        JoinSpec,
        ClusterSpec,
    )
}


def _json_safe(value: Any, *, context: str) -> Any:
    """Pass ``value`` through ``json`` round-trip rules, or raise SpecError.

    Used for the open-ended mappings (``strategy_options``, record
    attributes): their values must be plain JSON data, not live objects.
    """
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{context} is not JSON-serialisable: {exc}") from exc
    return value


def _encode_record(record: Record) -> dict[str, Any]:
    return {
        "record_id": record.record_id,
        "attributes": _json_safe(
            dict(record.attributes), context=f"record {record.record_id!r} attributes"
        ),
    }


def _decode_record(data: Mapping[str, Any]) -> Record:
    return Record(
        record_id=str(data["record_id"]), attributes=dict(data.get("attributes", {}))
    )


def _encode_dataset(dataset: Dataset) -> dict[str, Any]:
    return {
        "name": dataset.name,
        "records": [_encode_record(record) for record in dataset.records],
    }


def _decode_dataset(data: Mapping[str, Any]) -> Dataset:
    return Dataset(
        (_decode_record(record) for record in data.get("records", ())),
        name=str(data.get("name", "dataset")),
    )


def _encode_imputation(data: ImputationDataset) -> dict[str, Any]:
    return {
        "name": data.name,
        "target_attribute": data.target_attribute,
        "queries": _encode_dataset(data.queries),
        "reference": _encode_dataset(data.reference),
        "ground_truth": dict(data.ground_truth),
    }


def _decode_imputation(data: Mapping[str, Any]) -> ImputationDataset:
    return ImputationDataset(
        name=str(data.get("name", "imputation")),
        target_attribute=str(data["target_attribute"]),
        queries=_decode_dataset(data.get("queries", {})),
        reference=_decode_dataset(data.get("reference", {})),
        ground_truth={str(k): str(v) for k, v in dict(data.get("ground_truth", {})).items()},
    )


def _encode_pairs(pairs: Any) -> list[list[str]]:
    return [[str(left), str(right)] for left, right in pairs]


def _decode_pairs(data: Any) -> list[tuple[str, str]]:
    return [(str(pair[0]), str(pair[1])) for pair in data]


def spec_to_dict(spec: TaskSpec) -> dict[str, Any]:
    """Encode a concrete task spec as a JSON-shaped dict.

    Raises :class:`SpecError` for spec types without a codec or for specs
    carrying non-JSON ``strategy_options`` values.
    """
    type_name = type(spec).__name__
    if type_name not in _SPEC_TYPES:
        raise SpecError(f"no JSON codec for spec type {type_name}")
    spec_fields: dict[str, Any] = {
        "budget_dollars": spec.budget_dollars,
        "accuracy_target": spec.accuracy_target,
        "strategy": spec.strategy,
        "strategy_options": _json_safe(
            dict(spec.strategy_options), context=f"{type_name}.strategy_options"
        ),
    }
    if isinstance(spec, SortSpec):
        spec_fields.update(
            items=list(spec.items),
            criterion=spec.criterion,
            validation_order=list(spec.validation_order),
        )
    elif isinstance(spec, ResolveSpec):
        spec_fields.update(
            records=list(spec.records),
            pairs=_encode_pairs(spec.pairs),
            validation_labels=[
                [[left, right], bool(label)]
                for (left, right), label in spec.validation_labels.items()
            ],
            neighbors_k=spec.neighbors_k,
        )
    elif isinstance(spec, ImputeSpec):
        spec_fields.update(
            data=None if spec.data is None else _encode_imputation(spec.data),
            n_examples=spec.n_examples,
            validation_size=spec.validation_size,
        )
    elif isinstance(spec, FilterSpec):
        spec_fields.update(
            items=list(spec.items),
            predicate=spec.predicate,
            predicates=list(spec.predicates),
            expected_selectivities=list(spec.expected_selectivities),
            validation_labels={
                str(item): bool(label) for item, label in spec.validation_labels.items()
            },
        )
    elif isinstance(spec, CategorizeSpec):
        spec_fields.update(
            items=list(spec.items),
            categories=list(spec.categories),
            validation_labels={
                str(item): str(label) for item, label in spec.validation_labels.items()
            },
        )
    elif isinstance(spec, TopKSpec):
        spec_fields.update(items=list(spec.items), criterion=spec.criterion, k=spec.k)
    elif isinstance(spec, JoinSpec):
        spec_fields.update(left=list(spec.left), right=list(spec.right))
    elif isinstance(spec, ClusterSpec):
        spec_fields.update(items=list(spec.items))
    # Omit fields still at their dataclass default: the wire form stays
    # compact, and — decisively — decoding restores the *default object*
    # (e.g. the empty tuple) rather than a listified copy of it, so a
    # round-tripped spec compares equal to the original.
    defaults = _field_defaults(type(spec))
    spec_fields = {
        name: value
        for name, value in spec_fields.items()
        if name not in defaults or getattr(spec, name) != defaults[name]
    }
    return {"type": type_name, "version": SPEC_CODEC_VERSION, "fields": spec_fields}


def _field_defaults(cls: type) -> dict[str, Any]:
    defaults: dict[str, Any] = {}
    for spec_field in dataclass_fields(cls):
        if spec_field.default is not MISSING:
            defaults[spec_field.name] = spec_field.default
        elif spec_field.default_factory is not MISSING:
            defaults[spec_field.name] = spec_field.default_factory()
    return defaults


def spec_from_dict(data: Mapping[str, Any]) -> TaskSpec:
    """Rebuild a task spec from its wire dict.

    Raises :class:`SpecError` for unknown types, newer payload versions, or
    fields that do not exist on the spec (a typo in a hand-written payload
    must fail loudly, not be silently dropped).
    """
    if not isinstance(data, Mapping):
        raise SpecError(f"a spec payload must be an object, got {type(data).__name__}")
    type_name = data.get("type")
    if type_name not in _SPEC_TYPES:
        raise SpecError(f"unknown spec type {type_name!r}")
    version = int(data.get("version", 0))
    if version > SPEC_CODEC_VERSION:
        raise SpecError(
            f"spec payload version {version} is newer than this library's "
            f"{SPEC_CODEC_VERSION}"
        )
    cls = _SPEC_TYPES[type_name]
    spec_fields = dict(data.get("fields", {}))
    known = {f.name for f in dataclass_fields(cls)}
    unknown = set(spec_fields) - known
    if unknown:
        raise SpecError(
            f"{type_name} payload carries unknown fields: {sorted(unknown)}"
        )
    if "strategy_options" in spec_fields:
        options = spec_fields["strategy_options"]
        if not isinstance(options, Mapping):
            raise SpecError(f"{type_name}.strategy_options must be an object")
        spec_fields["strategy_options"] = _json_safe(
            dict(options), context=f"{type_name}.strategy_options"
        )
    if cls is ResolveSpec:
        if "pairs" in spec_fields:
            spec_fields["pairs"] = _decode_pairs(spec_fields["pairs"])
        if "validation_labels" in spec_fields:
            spec_fields["validation_labels"] = {
                (str(pair[0]), str(pair[1])): bool(label)
                for pair, label in spec_fields["validation_labels"]
            }
    elif cls is ImputeSpec and spec_fields.get("data") is not None:
        spec_fields["data"] = _decode_imputation(spec_fields["data"])
    elif cls is FilterSpec and "validation_labels" in spec_fields:
        spec_fields["validation_labels"] = {
            str(item): bool(label)
            for item, label in dict(spec_fields["validation_labels"]).items()
        }
    try:
        return cls(**spec_fields)
    except TypeError as exc:
        raise SpecError(f"malformed {type_name} payload: {exc}") from exc


def step_to_dict(step: PipelineStep) -> dict[str, Any]:
    """Encode one pipeline step; ``run=`` and factory steps refuse to encode."""
    if step.run is not None:
        raise SpecError(
            f"pipeline step {step.name!r} carries a run= callable; callables are "
            "code, not data, and cannot be serialised to JSON"
        )
    if not isinstance(step.task, TaskSpec):
        raise SpecError(
            f"pipeline step {step.name!r} carries a spec factory; only concrete "
            "TaskSpec steps can be serialised to JSON"
        )
    return {
        "name": step.name,
        "task": spec_to_dict(step.task),
        "depends_on": list(step.depends_on),
        "description": step.description,
    }


def step_from_dict(data: Mapping[str, Any]) -> PipelineStep:
    if not isinstance(data, Mapping):
        raise SpecError(f"a step payload must be an object, got {type(data).__name__}")
    if "task" not in data:
        raise SpecError(f"pipeline step payload {data.get('name')!r} has no task")
    return PipelineStep(
        name=str(data.get("name", "")),
        task=spec_from_dict(data["task"]),
        depends_on=tuple(str(dep) for dep in data.get("depends_on", ())),
        description=str(data.get("description", "")),
    )


def pipeline_to_dict(pipeline: PipelineSpec) -> dict[str, Any]:
    """Encode a whole pipeline spec as a JSON-shaped dict."""
    return {
        "version": SPEC_CODEC_VERSION,
        "name": pipeline.name,
        "steps": [step_to_dict(step) for step in pipeline.steps],
        "budget_dollars": pipeline.budget_dollars,
        "description": pipeline.description,
    }


def pipeline_from_dict(data: Mapping[str, Any]) -> PipelineSpec:
    """Rebuild a pipeline spec from its wire dict (structure only —
    callers run :meth:`PipelineSpec.validate` for semantic checks)."""
    if not isinstance(data, Mapping):
        raise SpecError(
            f"a pipeline payload must be an object, got {type(data).__name__}"
        )
    version = int(data.get("version", 0))
    if version > SPEC_CODEC_VERSION:
        raise SpecError(
            f"pipeline payload version {version} is newer than this library's "
            f"{SPEC_CODEC_VERSION}"
        )
    budget = data.get("budget_dollars")
    return PipelineSpec(
        name=str(data.get("name", "pipeline")),
        steps=[step_from_dict(step) for step in data.get("steps", ())],
        budget_dollars=None if budget is None else float(budget),
        description=str(data.get("description", "")),
    )


def pipeline_to_json(pipeline: PipelineSpec) -> str:
    """The JSON wire form of a pipeline (what the service's job table stores)."""
    return json.dumps(pipeline_to_dict(pipeline), sort_keys=True)


def pipeline_from_json(payload: str) -> PipelineSpec:
    """Parse a pipeline from its JSON wire form."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SpecError(f"malformed pipeline JSON: {exc}") from exc
    return pipeline_from_dict(data)
