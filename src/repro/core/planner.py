"""A-priori cost planning for prompting strategies.

The strategy optimizer (:mod:`repro.core.optimizer`) *measures* cost on a
validation sample; the planner here *predicts* cost before anything runs, from
the number of data items, the average item length, and each strategy's call
structure (one prompt, O(n) unit tasks, O(n²) pairs, ...).  The engine uses
these estimates to discard strategies that obviously cannot fit a budget
without spending a single token on them, and reports them to users as a
pre-flight quote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.llm.registry import ModelRegistry, default_registry
from repro.tokenizer.cost import Usage
from repro.tokenizer.simple import SimpleTokenizer

#: Rough token overhead of the structured prompt scaffolding per call
#: (task header, instructions, numbering).
_PROMPT_OVERHEAD_TOKENS = 60
#: Expected completion length of a short unit-task answer.
_SHORT_COMPLETION_TOKENS = 15


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of running one strategy over a dataset.

    Attributes:
        strategy: strategy name the estimate is for.
        calls: predicted number of LLM calls.
        usage: predicted token usage.
        dollars: predicted dollar cost under the planner's model/price table.
    """

    strategy: str
    calls: int
    usage: Usage
    dollars: float


class CostPlanner:
    """Predict calls, tokens, and dollars for the standard strategy shapes.

    Args:
        model: model the work would run on (prices and context come from it).
        registry: model catalogue; defaults to the standard registry.
    """

    def __init__(self, model: str, *, registry: ModelRegistry | None = None) -> None:
        self.registry = registry or default_registry()
        self.spec = self.registry.get(model)
        self.tokenizer = SimpleTokenizer()

    # -- helpers --------------------------------------------------------------------

    def _average_item_tokens(self, items: Sequence[str]) -> float:
        if not items:
            raise ConfigurationError("cannot plan over an empty item list")
        return sum(self.tokenizer.count(str(item)) for item in items) / len(items)

    def _estimate(self, strategy: str, calls: int, prompt_tokens: float, completion_tokens: float) -> CostEstimate:
        usage = Usage(
            prompt_tokens=int(round(prompt_tokens)),
            completion_tokens=int(round(completion_tokens)),
            calls=calls,
        )
        return CostEstimate(
            strategy=strategy,
            calls=calls,
            usage=usage,
            dollars=self.spec.prices.cost(usage),
        )

    # -- strategy shapes --------------------------------------------------------------

    def single_prompt(self, items: Sequence[str]) -> CostEstimate:
        """One prompt containing every item; the answer echoes the whole list."""
        item_tokens = self._average_item_tokens(items) * len(items)
        return self._estimate(
            "single_prompt",
            calls=1,
            prompt_tokens=item_tokens + _PROMPT_OVERHEAD_TOKENS,
            completion_tokens=item_tokens,
        )

    def per_item(self, items: Sequence[str], *, batch_size: int = 1) -> CostEstimate:
        """One unit task per item (optionally batched), short answers."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        average = self._average_item_tokens(items)
        calls = -(-len(items) // batch_size)  # ceiling division
        prompt_tokens = calls * _PROMPT_OVERHEAD_TOKENS + len(items) * average
        completion_tokens = len(items) * _SHORT_COMPLETION_TOKENS
        return self._estimate("per_item", calls, prompt_tokens, completion_tokens)

    def pairwise(self, items: Sequence[str]) -> CostEstimate:
        """One comparison task per unordered pair of items."""
        average = self._average_item_tokens(items)
        calls = len(items) * (len(items) - 1) // 2
        prompt_tokens = calls * (_PROMPT_OVERHEAD_TOKENS + 2 * average)
        completion_tokens = calls * _SHORT_COMPLETION_TOKENS
        return self._estimate("pairwise", calls, prompt_tokens, completion_tokens)

    def pairwise_against(self, items: Sequence[str], reference_count: int) -> CostEstimate:
        """One comparison of each item against ``reference_count`` fixed references."""
        if reference_count < 0:
            raise ConfigurationError("reference_count must be non-negative")
        average = self._average_item_tokens(items)
        calls = len(items) * reference_count
        prompt_tokens = calls * (_PROMPT_OVERHEAD_TOKENS + 2 * average)
        completion_tokens = calls * _SHORT_COMPLETION_TOKENS
        return self._estimate("pairwise_against", calls, prompt_tokens, completion_tokens)

    # -- queries --------------------------------------------------------------------

    def fits_budget(self, estimate: CostEstimate, budget_dollars: float) -> bool:
        """Whether the estimated cost fits under ``budget_dollars``."""
        return estimate.dollars <= budget_dollars

    def fits_context(self, items: Sequence[str]) -> bool:
        """Whether a single prompt holding every item fits the model's context."""
        estimate = self.single_prompt(items)
        return estimate.usage.prompt_tokens <= self.spec.context_length

    def affordable_strategies(
        self, items: Sequence[str], budget_dollars: float
    ) -> list[CostEstimate]:
        """Standard strategy estimates that fit the budget, cheapest first."""
        estimates = [self.single_prompt(items), self.per_item(items), self.pairwise(items)]
        affordable = [
            estimate for estimate in estimates if self.fits_budget(estimate, budget_dollars)
        ]
        return sorted(affordable, key=lambda estimate: estimate.dollars)
