"""A-priori cost planning for prompting strategies and whole pipelines.

The strategy optimizer (:mod:`repro.core.optimizer`) *measures* cost on a
validation sample; the planner here *predicts* cost before anything runs, from
the number of data items, the average item length, and each strategy's call
structure (one prompt, O(n) unit tasks, O(n²) pairs, ...).  The engine uses
these estimates to discard strategies that obviously cannot fit a budget
without spending a single token on them, and reports them to users as a
pre-flight quote.

Beyond single strategies, :meth:`CostPlanner.estimate_spec` maps a
declarative task spec to the cost shape its strategy will execute, and
:meth:`CostPlanner.quote_pipeline` rolls those per-step estimates up into a
:class:`PipelineQuote` — the pre-flight quote for a whole
:class:`~repro.core.spec.PipelineSpec`, reported per step.  The pipeline
scheduler also uses the per-step dollar estimates as weights when it
apportions the remaining budget across pending steps.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.exceptions import ConfigurationError, SpecError
from repro.llm.prompts import (
    categorize_prompt,
    duplicate_check_prompt,
    impute_prompt,
    pairwise_comparison_prompt,
    predicate_check_prompt,
)
from repro.llm.registry import ModelRegistry, default_registry
from repro.tokenizer.cost import Usage
from repro.tokenizer.simple import SimpleTokenizer

if TYPE_CHECKING:  # pragma: no cover - typing only (physical imports planner)
    from repro.core.physical import RuntimeStats

#: The strategy each operator's unconstrained ``"auto"`` resolves to (the
#: physical planner's first preference).  Estimates of ``"auto"`` specs are
#: priced at these shapes, and observed call ratios — recorded under the
#: strategy that actually executed — are looked up through this mapping so
#: an auto quote finds the default strategy's ratio.  A pairs-mode resolve
#: defaults to "transitive" instead (handled where the mode is known).
AUTO_DEFAULT_STRATEGY: Mapping[str, str] = {
    "sort": "pairwise",
    "resolve": "pairwise",
    "impute": "hybrid",
    "filter": "per_item",
    "categorize": "per_item",
    "top_k": "hybrid_rating_comparison",
    "join": "blocked",
    "cluster": "two_phase",
}

#: Rough token overhead of the structured prompt scaffolding per call
#: (task header, instructions, numbering).
_PROMPT_OVERHEAD_TOKENS = 60
#: Expected completion length of a short unit-task answer.
_SHORT_COMPLETION_TOKENS = 15


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of running one strategy over a dataset.

    Attributes:
        strategy: strategy name the estimate is for.
        calls: predicted number of LLM calls.
        usage: predicted token usage.
        dollars: predicted dollar cost under the planner's model/price table.
        seconds: predicted wall-clock time (sequential dispatch), from the
            observed per-call latency of the same strategy label; ``None``
            until the session has recorded durations for it.
    """

    strategy: str
    calls: int
    usage: Usage
    dollars: float
    seconds: float | None = None

    def to_dict(self) -> dict[str, object]:
        """A JSON-shaped view (what the service layer returns in quotes)."""
        return {
            "strategy": self.strategy,
            "calls": self.calls,
            "usage": {
                "prompt_tokens": self.usage.prompt_tokens,
                "completion_tokens": self.usage.completion_tokens,
                "calls": self.usage.calls,
            },
            "dollars": self.dollars,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CostEstimate":
        usage = data.get("usage") or {}
        if not isinstance(usage, Mapping):
            raise SpecError("cost estimate usage must be an object")
        seconds = data.get("seconds")
        return cls(
            strategy=str(data.get("strategy", "")),
            calls=int(data.get("calls", 0)),  # type: ignore[arg-type]
            usage=Usage(
                prompt_tokens=int(usage.get("prompt_tokens", 0)),
                completion_tokens=int(usage.get("completion_tokens", 0)),
                calls=int(usage.get("calls", 0)),
            ),
            dollars=float(data.get("dollars", 0.0)),  # type: ignore[arg-type]
            seconds=None if seconds is None else float(seconds),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class PipelineQuote:
    """Pre-flight quote for a whole pipeline, reported per step.

    Attributes:
        pipeline: the pipeline's name.
        steps: step name → that step's cost estimate.
        unquoted: steps that cannot be priced a priori — pure-python steps
            and spec factories whose inputs only exist at run time.
    """

    pipeline: str
    steps: Mapping[str, CostEstimate]
    unquoted: tuple[str, ...] = ()
    #: Pricing annotations (e.g. the observed cache hit-rate discount), in
    #: the same "prior -> observed" style the per-step selectivity notes use.
    notes: tuple[str, ...] = ()
    #: Step name → upstream step names, as declared by the pipeline spec.
    #: When present, :attr:`total_seconds` is the critical path over this
    #: DAG rather than the sum — independent branches overlap in time.
    dependencies: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def total_calls(self) -> int:
        """Predicted LLM calls across every quoted step."""
        return sum(estimate.calls for estimate in self.steps.values())

    @property
    def total_usage(self) -> Usage:
        """Predicted token usage across every quoted step."""
        total = Usage()
        for estimate in self.steps.values():
            total.add(estimate.usage)
        return total

    @property
    def total_dollars(self) -> float:
        """Predicted dollar cost: the sum of the per-step estimates."""
        return sum(estimate.dollars for estimate in self.steps.values())

    @property
    def total_seconds(self) -> float | None:
        """Predicted wall-clock total over the steps that carry one.

        With a :attr:`dependencies` DAG, this is the *critical path*: the
        most expensive chain of dependent steps, because independent
        branches run concurrently and only the longest one shows up on
        the wall clock.  Without dependency information it falls back to
        the sum of per-step estimates (sequential execution).

        ``None`` when no step has a latency-backed estimate yet.  Steps
        without observed latency contribute nothing — a partial total is
        a lower bound, which the renderers flag with a ``>=``.
        """
        timed = {
            name: estimate.seconds
            for name, estimate in self.steps.items()
            if estimate.seconds is not None
        }
        if not timed:
            return None
        if not self.dependencies:
            return sum(timed.values())
        return self._critical_path_seconds(timed)

    def _critical_path_seconds(self, timed: Mapping[str, float]) -> float:
        """Longest weighted finish time over the dependency DAG.

        Untimed and unquoted steps weigh zero but still propagate their
        upstream chain's finish time.  A cycle (impossible for a
        validated spec, possible for a hand-built mapping) degrades to
        treating the offending edge as absent rather than recursing
        forever.
        """
        finish: dict[str, float] = {}
        names = set(self.steps) | set(self.dependencies)

        def finish_time(name: str, active: frozenset[str]) -> float:
            if name in finish:
                return finish[name]
            if name in active:
                return 0.0  # cycle guard
            upstream = self.dependencies.get(name, ())
            start = max(
                (finish_time(dep, active | {name}) for dep in upstream),
                default=0.0,
            )
            finish[name] = start + timed.get(name, 0.0)
            return finish[name]

        return max(finish_time(name, frozenset()) for name in names)

    def to_dict(self) -> dict[str, object]:
        """A JSON-shaped view: per-step estimates, notes, and the totals.

        The ``total_*`` entries are derived from the steps and included for
        the convenience of HTTP clients; :meth:`from_dict` recomputes them
        from the steps rather than trusting the payload.
        """
        total_usage = self.total_usage
        return {
            "pipeline": self.pipeline,
            "steps": {name: estimate.to_dict() for name, estimate in self.steps.items()},
            "unquoted": list(self.unquoted),
            "notes": list(self.notes),
            "dependencies": {
                name: list(upstream) for name, upstream in self.dependencies.items()
            },
            "total_calls": self.total_calls,
            "total_dollars": self.total_dollars,
            "total_seconds": self.total_seconds,
            "total_usage": {
                "prompt_tokens": total_usage.prompt_tokens,
                "completion_tokens": total_usage.completion_tokens,
                "calls": total_usage.calls,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PipelineQuote":
        steps = data.get("steps") or {}
        if not isinstance(steps, Mapping):
            raise SpecError("pipeline quote steps must be an object")
        dependencies = data.get("dependencies") or {}
        if not isinstance(dependencies, Mapping):
            raise SpecError("pipeline quote dependencies must be an object")
        return cls(
            pipeline=str(data.get("pipeline", "pipeline")),
            steps={
                str(name): CostEstimate.from_dict(estimate)
                for name, estimate in steps.items()
            },
            unquoted=tuple(str(name) for name in data.get("unquoted", ())),  # type: ignore[union-attr]
            notes=tuple(str(note) for note in data.get("notes", ())),  # type: ignore[union-attr]
            dependencies={
                str(name): tuple(str(dep) for dep in upstream)
                for name, upstream in dependencies.items()
            },
        )


class CostPlanner:
    """Predict calls, tokens, and dollars for the standard strategy shapes.

    Args:
        model: model the work would run on (prices and context come from it).
        registry: model catalogue; defaults to the standard registry.
        stats: optional :class:`~repro.core.physical.RuntimeStats` store of
            observed execution statistics.  When given, estimates prefer
            observed values over static priors: filter predicates are
            priced at their observed selectivity, and strategies with a
            recorded actual/estimated call ratio are scaled by it.  Without
            stats the planner quotes exactly from the priors.
        response_cache: optional response cache with a ``contains(model,
            prompt)`` probe (the store-backed
            :class:`~repro.store.PersistentResponseCache` has one).  When
            given, quoting reconstructs the *statically-known* prompts a
            spec would send and prices the ones already cached at zero —
            so a fresh session quoting a previously-run workload sees the
            durable cache's savings before anything executes.
    """

    def __init__(
        self,
        model: str,
        *,
        registry: ModelRegistry | None = None,
        stats: "RuntimeStats | None" = None,
        response_cache: object | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.spec = self.registry.get(model)
        self.tokenizer = SimpleTokenizer()
        self.stats = stats
        self.response_cache = (
            response_cache if hasattr(response_cache, "contains") else None
        )

    # -- helpers --------------------------------------------------------------------

    def _average_item_tokens(self, items: Sequence[str]) -> float:
        if not items:
            raise ConfigurationError("cannot plan over an empty item list")
        return sum(self.tokenizer.count(str(item)) for item in items) / len(items)

    def _estimate(self, strategy: str, calls: int, prompt_tokens: float, completion_tokens: float) -> CostEstimate:
        usage = Usage(
            prompt_tokens=int(round(prompt_tokens)),
            completion_tokens=int(round(completion_tokens)),
            calls=calls,
        )
        return CostEstimate(
            strategy=strategy,
            calls=calls,
            usage=usage,
            dollars=self.spec.prices.cost(usage),
        )

    # -- strategy shapes --------------------------------------------------------------

    def single_prompt(self, items: Sequence[str]) -> CostEstimate:
        """One prompt containing every item; the answer echoes the whole list."""
        item_tokens = self._average_item_tokens(items) * len(items)
        return self._estimate(
            "single_prompt",
            calls=1,
            prompt_tokens=item_tokens + _PROMPT_OVERHEAD_TOKENS,
            completion_tokens=item_tokens,
        )

    def per_item(self, items: Sequence[str], *, batch_size: int = 1) -> CostEstimate:
        """One unit task per item (optionally batched), short answers."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        average = self._average_item_tokens(items)
        calls = -(-len(items) // batch_size)  # ceiling division
        prompt_tokens = calls * _PROMPT_OVERHEAD_TOKENS + len(items) * average
        completion_tokens = len(items) * _SHORT_COMPLETION_TOKENS
        return self._estimate("per_item", calls, prompt_tokens, completion_tokens)

    def pairwise(self, items: Sequence[str]) -> CostEstimate:
        """One comparison task per unordered pair of items."""
        average = self._average_item_tokens(items)
        calls = len(items) * (len(items) - 1) // 2
        prompt_tokens = calls * (_PROMPT_OVERHEAD_TOKENS + 2 * average)
        completion_tokens = calls * _SHORT_COMPLETION_TOKENS
        return self._estimate("pairwise", calls, prompt_tokens, completion_tokens)

    def pairwise_against(self, items: Sequence[str], reference_count: int) -> CostEstimate:
        """One comparison of each item against ``reference_count`` fixed references."""
        if reference_count < 0:
            raise ConfigurationError("reference_count must be non-negative")
        average = self._average_item_tokens(items)
        calls = len(items) * reference_count
        prompt_tokens = calls * (_PROMPT_OVERHEAD_TOKENS + 2 * average)
        completion_tokens = calls * _SHORT_COMPLETION_TOKENS
        return self._estimate("pairwise_against", calls, prompt_tokens, completion_tokens)

    def pair_judgments(
        self, pairs: Sequence[tuple[str, str]], *, expansion: int = 1
    ) -> CostEstimate:
        """One duplicate-check task per queried pair.

        ``expansion`` models strategies that ask extra comparisons per
        queried pair — e.g. the k-NN-augmented transitive strategy compares
        every pair among the two anchors and their k neighbors, an upper
        bound of ``C(2k+2, 2)`` calls per question (deduplication across
        overlapping groups makes the real count lower).
        """
        if expansion < 1:
            raise ConfigurationError("expansion must be at least 1")
        texts = [f"{left} {right}" for left, right in pairs]
        average = self._average_item_tokens(texts)
        calls = len(pairs) * expansion
        prompt_tokens = calls * (_PROMPT_OVERHEAD_TOKENS + average)
        completion_tokens = calls * _SHORT_COMPLETION_TOKENS
        return self._estimate("pair_judgments", calls, prompt_tokens, completion_tokens)

    # -- vector-index shapes ----------------------------------------------------------

    #: Candidates an index probe ranks when no rate has been observed yet —
    #: the LSH probe floor at its default k.
    _DEFAULT_PROBE_CANDIDATES = 16.0

    def index_build(self, texts: Sequence[str]) -> CostEstimate:
        """Price building a vector index over ``texts``.

        One *local* embedding call per text and zero LLM dollars: the
        hashing embedder never leaves the process, so an index build spends
        compute, not budget.  The calls/tokens still appear in the estimate
        so ``.quote()`` can show the work the build replaces LLM spend with.
        """
        tokens = sum(self.tokenizer.count(str(text)) for text in texts)
        usage = Usage(prompt_tokens=tokens, calls=len(texts))
        return CostEstimate(
            strategy="index:build", calls=len(texts), usage=usage, dollars=0.0
        )

    def index_probe(self, queries: Sequence[str]) -> CostEstimate:
        """Price probing a built index once per query (zero LLM dollars).

        Each probe embeds its query locally and distance-ranks a candidate
        set (see :meth:`probe_candidate_rate` for the expected candidate
        count); no tokens are generated, so like :meth:`index_build` the
        estimate carries embed calls and zero dollars.
        """
        tokens = sum(self.tokenizer.count(str(query)) for query in queries)
        usage = Usage(prompt_tokens=tokens, calls=len(queries))
        return CostEstimate(
            strategy="index:probe", calls=len(queries), usage=usage, dollars=0.0
        )

    def probe_candidate_rate(self) -> float:
        """Expected candidates ranked per probe (observed, or the prior)."""
        if self.stats is not None:
            observed = self.stats.probe_candidate_rate()
            if observed is not None:
                return observed
        return self._DEFAULT_PROBE_CANDIDATES

    # -- declarative specs ------------------------------------------------------------

    def estimate_spec(self, spec: TaskSpec) -> CostEstimate:
        """Pre-flight estimate for one declarative task spec.

        Maps the spec's strategy onto the standard cost shapes above; the
        ``strategy`` field of the returned estimate is labelled
        ``"<operation>:<strategy>"`` so per-step quotes read naturally.
        ``"auto"`` strategies are priced at the engine's no-validation
        default for that operator.

        With a :class:`~repro.core.physical.RuntimeStats` store attached,
        the structural estimate is corrected by the observed
        actual/estimated call ratio recorded for the same strategy label —
        except for filters, whose error is explained by predicate
        selectivity and already priced from the observed selectivities.
        """
        if isinstance(spec, SortSpec):
            estimate = self._estimate_sort(spec)
        elif isinstance(spec, ResolveSpec):
            estimate = self._estimate_resolve(spec)
        elif isinstance(spec, ImputeSpec):
            estimate = self._estimate_impute(spec)
        elif isinstance(spec, FilterSpec):
            estimate = self._estimate_filter(spec)
        elif isinstance(spec, CategorizeSpec):
            estimate = self._estimate_categorize(spec)
        elif isinstance(spec, TopKSpec):
            estimate = self._estimate_top_k(spec)
        elif isinstance(spec, JoinSpec):
            estimate = self._estimate_join(spec)
        elif isinstance(spec, ClusterSpec):
            estimate = self._estimate_cluster(spec)
        else:
            raise SpecError(
                f"cannot estimate cost for spec type {type(spec).__name__}"
            )
        if not isinstance(spec, FilterSpec) and not self._blocked_rate_priced(spec):
            estimate = self._apply_call_ratio(estimate)
        estimate = self._apply_latency(estimate)
        # Exact knowledge beats extrapolation: when the spec's prompts are
        # statically known and some are already in the durable cache, price
        # those at zero and skip the observed-hit-rate discount for this
        # spec (the rate would re-count the same hits).
        estimate, known = self._apply_known_hits(spec, estimate)
        if known:
            return estimate
        return self._apply_cache_discount(estimate)

    def _blocked_rate_priced(self, spec: TaskSpec) -> bool:
        """Whether the estimate was already corrected by the blocked-pair rate.

        A blocked resolve priced from the observed mutual-neighbor rate must
        not *also* be scaled by its recorded call ratio — the ratio was
        measured against the uncorrected k·n structural estimate, so it
        encodes the same blocking shrinkage and would double-correct.
        """
        return (
            isinstance(spec, ResolveSpec)
            and not spec.pairs
            and spec.strategy == "blocked_pairwise"
            and self.stats is not None
            and self.stats.blocked_pair_rate() is not None
        )

    def observed_blocked_pair_rate(self) -> float | None:
        """The observed candidate-pair fraction of the k·n bound, if any."""
        if self.stats is None:
            return None
        return self.stats.blocked_pair_rate()

    #: Observed call ratios outside this band are treated as
    #: workload-specific flukes rather than transferable corrections.
    _CALL_RATIO_BAND = (0.05, 20.0)

    def _apply_call_ratio(self, estimate: CostEstimate) -> CostEstimate:
        """Scale a structural estimate by the observed call ratio, if any.

        Ratios are recorded under the strategy that *executed* (never
        ``"auto"``), so an auto-labelled estimate looks its ratio up under
        the default strategy it was priced at.  The ratio is clamped to a
        sane band and a non-empty structural estimate never drops below
        one call: ratios were measured on whatever workload the session
        happened to run, and an estimate rounded to zero would starve the
        step of its quote-weighted budget share entirely.
        """
        if self.stats is None:
            return estimate
        key = estimate.strategy
        operation, _, strategy = key.partition(":")
        if strategy == "auto":
            key = f"{operation}:{AUTO_DEFAULT_STRATEGY.get(operation, strategy)}"
        ratio = self.stats.call_ratio(key)
        if ratio is None or ratio <= 0 or abs(ratio - 1.0) < 1e-9:
            return estimate
        low, high = self._CALL_RATIO_BAND
        ratio = min(high, max(low, ratio))
        floor = 1 if estimate.calls > 0 else 0
        adjusted = self._estimate(
            estimate.strategy,
            calls=max(floor, int(round(estimate.calls * ratio))),
            prompt_tokens=estimate.usage.prompt_tokens * ratio,
            completion_tokens=estimate.usage.completion_tokens * ratio,
        )
        return adjusted

    def _stats_label(self, estimate_strategy: str) -> str:
        """The stats key an estimate's strategy label resolves to.

        Observations are recorded under the strategy that *executed* (never
        ``"auto"``), so an auto-labelled estimate looks its stats up under
        the default strategy it was priced at.
        """
        operation, _, strategy = estimate_strategy.partition(":")
        if strategy == "auto":
            return f"{operation}:{AUTO_DEFAULT_STRATEGY.get(operation, strategy)}"
        return estimate_strategy

    def _apply_latency(self, estimate: CostEstimate) -> CostEstimate:
        """Attach a wall-clock prediction from the observed median latency.

        Sequential extrapolation (calls × per-call p50): the planner cannot
        know the dispatch concurrency a run will use, and the sequential
        figure is the conservative bound the budget-style comparisons need.
        The reservoir blends cache-hit and live durations in observed
        proportions, so a warm workload predicts its own (faster) reality.
        """
        if self.stats is None:
            return estimate
        p50 = self.stats.latency_p50(self._stats_label(estimate.strategy))
        if p50 is None:
            return estimate
        return replace(estimate, seconds=estimate.calls * p50 / 1000.0)

    def _apply_cache_discount(self, estimate: CostEstimate) -> CostEstimate:
        """Discount the dollar estimate by the observed cache hit-rate.

        Cache hits are priced at zero by the session (a hit returns a
        zero-usage response), so the expected dollar spend of a workload
        whose traffic hits the cache at rate *r* is ``(1 - r)`` of the full
        quote.  Calls and tokens are left as the *logical* work — budget
        apportionment and call-count comparisons reason about work items,
        and the within-run dedup effect is already captured by the observed
        call ratios.  The observed rate is capped just below 1 so a fully
        cached history can never quote exactly zero for new work.
        """
        if self.stats is None:
            return estimate
        rate = self.stats.cache_hit_rate()
        if rate is None or rate <= 0.0 or estimate.dollars <= 0.0:
            return estimate
        rate = min(rate, 0.99)
        return replace(estimate, dollars=estimate.dollars * (1.0 - rate))

    #: At most this many statically-known prompts are probed against the
    #: persistent cache per spec — an O(n²) pairwise spec would otherwise
    #: hash every pair before anything runs.
    _CACHE_PROBE_CAP = 2048

    def _static_prompts(self, spec: TaskSpec) -> list[str]:
        """The exact prompts a spec would send, when they are statically known.

        Only strategies whose prompt set is a pure function of the spec are
        reconstructed (per-item filters/categorize, pairwise sorts and
        resolves, all-pairs joins, example-free ``llm_only`` imputes);
        blocked or validation-dependent strategies return nothing rather
        than a guess.  Capped at :data:`_CACHE_PROBE_CAP` prompts.
        """
        cap = self._CACHE_PROBE_CAP
        prompts: list[str] = []

        def extend(candidates) -> None:
            for prompt in candidates:
                if len(prompts) >= cap:
                    return
                prompts.append(prompt)

        if isinstance(spec, FilterSpec) and spec.strategy in ("per_item", "auto"):
            extend(
                predicate_check_prompt(str(item), predicate)
                for predicate in spec.all_predicates
                for item in spec.items
            )
        elif isinstance(spec, CategorizeSpec) and spec.strategy in ("per_item", "auto"):
            categories = list(spec.categories)
            extend(categorize_prompt(str(item), categories) for item in spec.items)
        elif isinstance(spec, SortSpec) and spec.strategy in ("pairwise", "auto"):
            items = [str(item) for item in spec.items]
            extend(
                pairwise_comparison_prompt(first, second, spec.criterion)
                for first, second in itertools.combinations(items, 2)
            )
        elif isinstance(spec, ResolveSpec):
            if spec.pairs and spec.strategy == "pairwise":
                extend(
                    duplicate_check_prompt(str(left), str(right))
                    for left, right in spec.pairs
                )
            elif not spec.pairs and spec.strategy in ("pairwise", "auto"):
                records = [str(record) for record in spec.records]
                extend(
                    duplicate_check_prompt(left, right)
                    for left, right in itertools.combinations(records, 2)
                )
        elif isinstance(spec, JoinSpec) and spec.strategy == "all_pairs":
            extend(
                duplicate_check_prompt(str(left), str(right))
                for left in spec.left
                for right in spec.right
            )
        elif (
            isinstance(spec, ImputeSpec)
            and spec.strategy == "llm_only"
            and spec.n_examples == 0
            and spec.data is not None
        ):
            extend(
                impute_prompt(spec.data.serialized_query(record), spec.data.target_attribute)
                for record in spec.data.queries
            )
        return prompts

    def known_cached_calls(self, spec: TaskSpec) -> tuple[int, int]:
        """``(known_hits, probed)`` statically-known prompts of a spec.

        Probes the planner's response cache without counting the probes as
        cache traffic (see ``PersistentResponseCache.contains`` — quoting a
        workload is not serving it).  ``(0, 0)`` without a probing cache or
        when the spec's prompt set cannot be known before running.
        """
        if self.response_cache is None:
            return (0, 0)
        prompts = self._static_prompts(spec)
        if not prompts:
            return (0, 0)
        model = self.spec.name
        contains = self.response_cache.contains  # type: ignore[attr-defined]
        hits = sum(1 for prompt in prompts if contains(model, prompt))
        return (hits, len(prompts))

    def _apply_known_hits(
        self, spec: TaskSpec, estimate: CostEstimate
    ) -> tuple[CostEstimate, bool]:
        """Price the statically-known, already-cached fraction at zero.

        Unlike the observed-rate discount (an extrapolation capped below
        1), these are certainties — the exact prompts were probed against
        the durable cache — so a fully-cached workload quotes exactly zero
        dollars.  Returns the estimate plus whether a discount applied.
        """
        if estimate.dollars <= 0.0 or estimate.calls <= 0:
            return estimate, False
        hits, _ = self.known_cached_calls(spec)
        if hits <= 0:
            return estimate, False
        fraction = min(1.0, hits / max(estimate.calls, 1))
        return replace(estimate, dollars=estimate.dollars * (1.0 - fraction)), True

    def cache_discount_note(self) -> str | None:
        """The "prior -> observed" annotation for an applied cache discount."""
        if self.stats is None:
            return None
        rate = self.stats.cache_hit_rate()
        if rate is None or rate <= 0.0:
            return None
        return (
            f"cache hit-rate prior 0.00 -> observed {min(rate, 0.99):.2f} "
            "(dollar estimates discounted)"
        )

    def _observed_selectivity(self, predicate: str, prior: float) -> float:
        """A predicate's observed surviving fraction, or its static prior."""
        if self.stats is not None:
            observed = self.stats.filter_selectivity(predicate)
            if observed is not None:
                # An observed 0 would collapse every downstream estimate to
                # nothing; clamp to one surviving item's worth.
                return max(observed, 1e-6)
        return prior

    def _estimate_sort(self, spec: SortSpec) -> CostEstimate:
        items = list(spec.items)
        strategy = spec.strategy
        if strategy == "single_prompt":
            estimate = self.single_prompt(items)
        elif strategy == "rating":
            estimate = self.per_item(
                items, batch_size=int(spec.strategy_options.get("batch_size", 1))
            )
        elif strategy == "hybrid_sort_insert":
            # One whole-list prompt, then a binary-search insertion (about
            # log2(n) comparisons) for each item the first pass dropped; we
            # conservatively price every item's insertion.
            whole = self.single_prompt(items)
            inserts = self.pairwise_against(items, max(1, math.ceil(math.log2(len(items)))))
            estimate = self._estimate(
                "hybrid_sort_insert",
                calls=whole.calls + inserts.calls,
                prompt_tokens=whole.usage.prompt_tokens + inserts.usage.prompt_tokens,
                completion_tokens=whole.usage.completion_tokens
                + inserts.usage.completion_tokens,
            )
        else:
            # "pairwise", "pairwise_consistent", and "auto" (the engine's
            # no-validation default is pairwise) all execute one comparison
            # per unordered pair.
            estimate = self.pairwise(items)
        return replace(estimate, strategy=f"sort:{strategy}")

    def _estimate_resolve(self, spec: ResolveSpec) -> CostEstimate:
        strategy = spec.strategy
        if spec.pairs:
            if strategy in ("transitive", "auto"):
                # The engine's no-validation default is the transitive
                # strategy with the spec's neighbors_k; label the estimate
                # accordingly so the two "auto" resolve modes (pair
                # judgments here, whole-corpus dedup below) never share a
                # call-ratio key — their cost shapes are unrelated.
                expansion = math.comb(2 * spec.neighbors_k + 2, 2)
                strategy = "transitive"
            else:
                expansion = 1
            estimate = self.pair_judgments(list(spec.pairs), expansion=expansion)
        else:
            records = list(spec.records)
            if strategy == "single_prompt":
                estimate = self.single_prompt(records)
            elif strategy == "blocked_pairwise":
                block_k = int(spec.strategy_options.get("block_k", 5))
                estimate = self.pairwise_against(records, block_k)
                # The k·n pair count is an upper bound: the mutual-neighbor
                # blocker deduplicates symmetric and overlapping neighbor
                # pairs, and the observed candidate fraction says by how
                # much.  Price from the observation when one exists.
                rate = self.observed_blocked_pair_rate()
                if rate is not None and estimate.calls > 0:
                    rate = min(1.0, max(rate, 1.0 / max(1, estimate.calls)))
                    estimate = self._estimate(
                        estimate.strategy,
                        calls=max(1, int(round(estimate.calls * rate))),
                        prompt_tokens=estimate.usage.prompt_tokens * rate,
                        completion_tokens=estimate.usage.completion_tokens * rate,
                    )
            else:
                # "pairwise" and "auto" (the engine's records-path default).
                if strategy == "auto":
                    strategy = "pairwise"
                estimate = self.pairwise(records)
        return replace(estimate, strategy=f"resolve:{strategy}")

    #: Prior escalation fraction of the retrieval impute strategy: the share
    #: of queries whose index-retrieved neighbors disagree and go to the LLM
    #: (Table 4's hybrid runs escalate roughly half; the recorded call ratio
    #: replaces this prior once a run has been observed).
    _RETRIEVAL_ESCALATION_PRIOR = 0.5
    #: Neighbor evidence records each retrieval-escalated prompt carries
    #: (the operator's default ``k``).
    _RETRIEVAL_EVIDENCE_NEIGHBORS = 3

    def _estimate_impute(self, spec: ImputeSpec) -> CostEstimate:
        assert spec.data is not None  # spec.validate() guarantees this
        strategy = spec.strategy
        if strategy == "knn":
            # Pure proxy imputation: no LLM calls at all.
            estimate = self._estimate("knn", calls=0, prompt_tokens=0, completion_tokens=0)
        elif strategy == "retrieval":
            # Index-grounded hybrid: only the disagreeing fraction escalates,
            # and each escalated prompt carries the retrieved neighbors as
            # in-context evidence (k extra records' worth of prompt tokens).
            # The index build/probe itself is local embed work at zero
            # dollars (see index_build/index_probe) and adds no LLM calls.
            queries = [spec.data.serialized_query(record) for record in spec.data.queries]
            base = self.per_item(queries)
            calls = max(1, int(round(base.calls * self._RETRIEVAL_ESCALATION_PRIOR)))
            fraction = calls / max(1, base.calls)
            evidence = 1 + self._RETRIEVAL_EVIDENCE_NEIGHBORS
            estimate = self._estimate(
                "retrieval",
                calls=calls,
                prompt_tokens=base.usage.prompt_tokens * fraction * evidence,
                completion_tokens=base.usage.completion_tokens * fraction,
            )
        else:
            queries = [spec.data.serialized_query(record) for record in spec.data.queries]
            estimate = self.per_item(queries)
        return replace(estimate, strategy=f"impute:{strategy}")

    def _estimate_filter(self, spec: FilterSpec) -> CostEstimate:
        items = list(spec.items)
        strategy = spec.strategy
        if strategy == "ensemble_vote":
            multiplier = max(2, len(spec.strategy_options.get("models", ())))
        elif strategy == "adaptive":
            # Upper bound: every item stays contentious until the vote limit.
            voters = max(2, len(spec.strategy_options.get("models", ())))
            multiplier = int(spec.strategy_options.get("max_votes_per_item") or voters)
        else:
            # "per_item" and "auto" (the engine's default) — one check per item.
            multiplier = 1
        # Each predicate only re-checks the expected survivors of the ones
        # before it (the engine runs them over a shrinking set), so a fused
        # multi-predicate spec quotes exactly like sequential filter steps.
        selectivities = list(spec.expected_selectivities)
        predicates = list(spec.all_predicates)
        calls = 0
        prompt_tokens = 0.0
        completion_tokens = 0.0
        survivors = items
        for index in range(len(predicates)):
            per_predicate = self.per_item(survivors)
            calls += per_predicate.calls * multiplier
            prompt_tokens += per_predicate.usage.prompt_tokens * multiplier
            completion_tokens += per_predicate.usage.completion_tokens * multiplier
            prior = selectivities[index] if index < len(selectivities) else 0.5
            selectivity = self._observed_selectivity(predicates[index], prior)
            kept = min(len(survivors), max(1, math.ceil(len(survivors) * selectivity)))
            survivors = survivors[:kept]
        estimate = self._estimate(strategy, calls, prompt_tokens, completion_tokens)
        return replace(estimate, strategy=f"filter:{strategy}")

    def _estimate_categorize(self, spec: CategorizeSpec) -> CostEstimate:
        items = list(spec.items)
        strategy = spec.strategy
        # Every call carries the category menu in the prompt.
        menu_tokens = sum(self.tokenizer.count(str(label)) for label in spec.categories)
        if strategy == "self_consistency":
            multiplier = int(spec.strategy_options.get("n_samples", 3))
        elif strategy == "ensemble_vote":
            multiplier = max(2, len(spec.strategy_options.get("models", ())))
        else:  # "per_item" and "auto"
            multiplier = 1
        base = self.per_item(items)
        estimate = self._estimate(
            strategy,
            calls=base.calls * multiplier,
            prompt_tokens=(base.usage.prompt_tokens + len(items) * menu_tokens) * multiplier,
            completion_tokens=base.usage.completion_tokens * multiplier,
        )
        return replace(estimate, strategy=f"categorize:{strategy}")

    def _estimate_top_k(self, spec: TopKSpec) -> CostEstimate:
        items = list(spec.items)
        strategy = spec.strategy
        if strategy == "rating_only":
            estimate = self.per_item(items)
        elif strategy == "pairwise_tournament":
            estimate = self.pairwise(items)
        else:
            # "hybrid_rating_comparison" and "auto" (the operator default):
            # rate everything, then a tournament among the shortlist.
            factor = int(spec.strategy_options.get("shortlist_factor", 3))
            shortlist = items[: min(len(items), max(spec.k, spec.k * factor))]
            ratings = self.per_item(items)
            tournament = (
                self.pairwise(shortlist)
                if len(shortlist) >= 2
                else self._estimate("pairwise", 0, 0, 0)
            )
            estimate = self._estimate(
                strategy,
                calls=ratings.calls + tournament.calls,
                prompt_tokens=ratings.usage.prompt_tokens + tournament.usage.prompt_tokens,
                completion_tokens=ratings.usage.completion_tokens
                + tournament.usage.completion_tokens,
            )
        return replace(estimate, strategy=f"top_k:{strategy}")

    def _estimate_join(self, spec: JoinSpec) -> CostEstimate:
        left = list(spec.left)
        strategy = spec.strategy
        if strategy == "all_pairs":
            estimate = self.pairwise_against(left, len(spec.right))
        else:
            # "blocked", "proxy_blocked", and "auto" (the operator default is
            # blocked) ask about ~block_k candidates per left record;
            # proxy_blocked answers part of those for free, so pricing it
            # like blocked is a conservative upper bound.
            block_k = int(spec.strategy_options.get("block_k", 3))
            estimate = self.pairwise_against(left, min(block_k, len(spec.right)))
        return replace(estimate, strategy=f"join:{strategy}")

    def _estimate_cluster(self, spec: ClusterSpec) -> CostEstimate:
        items = list(spec.items)
        strategy = spec.strategy
        if strategy == "single_prompt":
            estimate = self.single_prompt(items)
        else:
            # "two_phase" and "auto" (the operator default): one grouping
            # prompt over the seed, then each remaining item is compared
            # against the discovered representatives.  The representative
            # count is unknown a priori; half the seed is the heuristic.
            seed_size = min(int(spec.strategy_options.get("seed_size", 12)), len(items))
            remaining = items[seed_size:]
            seed_prompt = self.single_prompt(items[:seed_size])
            if remaining:
                assignments = self.pairwise_against(remaining, max(1, seed_size // 2))
            else:
                assignments = self._estimate("pairwise_against", 0, 0, 0)
            estimate = self._estimate(
                strategy,
                calls=seed_prompt.calls + assignments.calls,
                prompt_tokens=seed_prompt.usage.prompt_tokens + assignments.usage.prompt_tokens,
                completion_tokens=seed_prompt.usage.completion_tokens
                + assignments.usage.completion_tokens,
            )
        return replace(estimate, strategy=f"cluster:{strategy}")

    def quote_pipeline(self, pipeline: PipelineSpec) -> PipelineQuote:
        """Quote a whole pipeline before running it.

        Every step whose spec is statically known is estimated through
        :meth:`estimate_spec`; the quote's call/token/dollar totals are by
        construction the sums of those per-step estimates, while
        ``total_seconds`` follows the pipeline's dependency DAG — steps
        without an edge between them overlap in time, so the wall-clock
        quote is the critical path, not the sum.  Pure-python steps and
        spec factories (whose inputs only exist once upstream steps have
        run) are listed in :attr:`PipelineQuote.unquoted` rather than
        silently priced at zero.
        """
        pipeline.validate()
        steps: dict[str, CostEstimate] = {}
        unquoted: list[str] = []
        dependencies: dict[str, tuple[str, ...]] = {}
        known_hits = 0
        known_probed = 0
        for step in pipeline.steps:
            dependencies[step.name] = tuple(step.depends_on)
            if isinstance(step.task, TaskSpec):
                steps[step.name] = self.estimate_spec(step.task)
                hits, probed = self.known_cached_calls(step.task)
                known_hits += hits
                known_probed += probed
            else:
                unquoted.append(step.name)
        notes: list[str] = []
        if known_hits:
            notes.append(
                f"persistent cache: {known_hits} of {known_probed} statically-known "
                "calls already cached (priced at zero)"
            )
        discount = self.cache_discount_note()
        if discount is not None and steps:
            notes.append(discount)
        return PipelineQuote(
            pipeline=pipeline.name,
            steps=steps,
            unquoted=tuple(unquoted),
            notes=tuple(notes),
            dependencies=dependencies,
        )

    # -- queries --------------------------------------------------------------------

    def fits_budget(self, estimate: CostEstimate, budget_dollars: float) -> bool:
        """Whether the estimated cost fits under ``budget_dollars``."""
        return estimate.dollars <= budget_dollars

    def fits_context(self, items: Sequence[str]) -> bool:
        """Whether a single prompt holding every item fits the model's context."""
        estimate = self.single_prompt(items)
        return estimate.usage.prompt_tokens <= self.spec.context_length

    def affordable_strategies(
        self, items: Sequence[str], budget_dollars: float
    ) -> list[CostEstimate]:
        """Standard strategy estimates that fit the budget, cheapest first."""
        estimates = [self.single_prompt(items), self.per_item(items), self.pairwise(items)]
        affordable = [
            estimate for estimate in estimates if self.fits_budget(estimate, budget_dollars)
        ]
        return sorted(affordable, key=lambda estimate: estimate.dollars)
