"""Monetary budgets for LLM workflows.

The declarative vision lets a user say "stay under $X"; the :class:`Budget`
object tracks spending against that limit and raises
:class:`~repro.exceptions.BudgetExceededError` the moment an operation would
push past it.  It can also *reserve* portions of the budget up front, which is
how the engine splits one overall budget across the steps of a workflow.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import BudgetExceededError, ConfigurationError


@dataclass
class Budget:
    """A dollar budget with spend tracking and reservations.

    Attributes:
        limit: the maximum spend in dollars; ``None`` means unlimited.
        spent: dollars spent so far.
    """

    limit: float | None = None
    spent: float = 0.0
    _reserved: dict[str, float] = field(default_factory=dict, repr=False)
    # Charges may arrive from the BatchExecutor's worker threads; the
    # read-modify-write on ``spent`` must not lose updates.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ConfigurationError("budget limit must be non-negative")

    @property
    def unlimited(self) -> bool:
        """Whether this budget has no limit."""
        return self.limit is None

    @property
    def remaining(self) -> float:
        """Dollars left before the limit (infinity when unlimited)."""
        if self.limit is None:
            return float("inf")
        return max(0.0, self.limit - self.spent)

    def can_afford(self, amount: float) -> bool:
        """Whether spending ``amount`` more would stay within the limit."""
        return self.limit is None or self.spent + amount <= self.limit + 1e-12

    def charge(self, amount: float) -> None:
        """Record a spend of ``amount`` dollars.

        Raises:
            BudgetExceededError: if the charge would exceed the limit.  The
                charge is still recorded so callers can report the overshoot.
        """
        if amount < 0:
            raise ConfigurationError("cannot charge a negative amount")
        with self._lock:
            self.spent += amount
            spent = self.spent
        if self.limit is not None and spent > self.limit + 1e-12:
            raise BudgetExceededError(spent, self.limit)

    def reserve(self, name: str, fraction: float) -> "Budget":
        """Carve out a named sub-budget as a fraction of the remaining budget."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("reservation fraction must be in (0, 1]")
        if self.limit is None:
            return Budget(limit=None)
        amount = self.remaining * fraction
        self._reserved[name] = amount
        return Budget(limit=amount)

    def absorb(self, child: "Budget") -> None:
        """Fold a sub-budget's spending back into this budget."""
        self.charge(child.spent)
