"""Monetary budgets for LLM workflows.

The declarative vision lets a user say "stay under $X"; the :class:`Budget`
object tracks spending against that limit and raises
:class:`~repro.exceptions.BudgetExceededError` the moment an operation would
push past it.  It can also *reserve* portions of the budget up front, which is
how the engine splits one overall budget across the steps of a workflow.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import BudgetExceededError, ConfigurationError


@dataclass
class Budget:
    """A dollar budget with spend tracking and reservations.

    Attributes:
        limit: the maximum spend in dollars; ``None`` means unlimited.
        spent: dollars spent so far.
    """

    limit: float | None = None
    spent: float = 0.0
    _reserved: dict[str, float] = field(default_factory=dict, repr=False)
    # Charges may arrive from the BatchExecutor's worker threads; the
    # read-modify-write on ``spent`` must not lose updates.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)
    # Set on children created by reserve(): which parent holds this child's
    # reservation, and under what name — absorb() uses them to give the hold
    # back exactly once.
    _reservation_parent: "Budget | None" = field(default=None, repr=False, compare=False)
    _reservation_name: str | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ConfigurationError("budget limit must be non-negative")

    @property
    def unlimited(self) -> bool:
        """Whether this budget has no limit."""
        return self.limit is None

    @property
    def reserved(self) -> float:
        """Dollars currently held by outstanding reservations."""
        with self._lock:
            return sum(self._reserved.values())

    @property
    def remaining(self) -> float:
        """Dollars left before the limit (infinity when unlimited).

        Outstanding reservations are held out: money promised to a child
        budget is not available here until the child is absorbed (or
        released), so two sibling ``reserve`` calls carve their fractions
        from successively smaller pools instead of double-counting the same
        dollars.
        """
        if self.limit is None:
            return float("inf")
        with self._lock:
            return max(0.0, self.limit - self.spent - sum(self._reserved.values()))

    def can_afford(self, amount: float) -> bool:
        """Whether spending ``amount`` more would stay within the limit.

        Reserved dollars are spoken for, so they count against affordability
        exactly like spent ones.
        """
        if self.limit is None:
            return True
        with self._lock:
            committed = self.spent + sum(self._reserved.values())
        return committed + amount <= self.limit + 1e-12

    def charge(self, amount: float) -> None:
        """Record a spend of ``amount`` dollars.

        Raises:
            BudgetExceededError: if the charge would exceed the limit.  The
                charge is still recorded so callers can report the overshoot.
        """
        if amount < 0:
            raise ConfigurationError("cannot charge a negative amount")
        with self._lock:
            self.spent += amount
            spent = self.spent
        if self.limit is not None and spent > self.limit + 1e-12:
            raise BudgetExceededError(spent, self.limit)

    def reserve(self, name: str, fraction: float) -> "Budget":
        """Carve out a named sub-budget as a fraction of the remaining budget.

        The reserved amount is *held*: it leaves :attr:`remaining` (and
        :meth:`can_afford`) immediately, so sibling reservations split what
        is genuinely left rather than each carving their fraction from the
        same pool and jointly over-committing the limit.  The hold is given
        back when the child is passed to :meth:`absorb` (exchanged for the
        child's real spend) or dropped via :meth:`release`.  Re-reserving an
        existing name releases the old hold first — the replacement's size
        is computed against a pool that no longer contains it — instead of
        silently leaking the superseded reservation forever.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("reservation fraction must be in (0, 1]")
        if self.limit is None:
            return Budget(limit=None)
        with self._lock:
            self._reserved.pop(name, None)
            available = max(0.0, self.limit - self.spent - sum(self._reserved.values()))
            amount = available * fraction
            self._reserved[name] = amount
        child = Budget(limit=amount)
        child._reservation_parent = self
        child._reservation_name = name
        return child

    def release(self, name: str) -> float:
        """Drop a named reservation, returning the held dollars to the pool.

        Returns the amount released (0.0 for an unknown name — releasing
        twice is harmless).
        """
        with self._lock:
            return self._reserved.pop(name, 0.0)

    def absorb(self, child: "Budget") -> None:
        """Fold a sub-budget's spending back into this budget.

        A child created by :meth:`reserve` gives its hold back first, so the
        parent is charged the child's *actual* spend instead of paying the
        spend on top of the still-held reservation.
        """
        name = getattr(child, "_reservation_name", None)
        if name is not None and getattr(child, "_reservation_parent", None) is self:
            self.release(name)
            child._reservation_name = None
        self.charge(child.spent)

    def lease(self, allocation: float) -> "BudgetLease":
        """A spend cap of ``allocation`` dollars layered over this budget.

        Unlike :meth:`reserve`, a lease stays attached to its parent: every
        ``lease.charge`` both counts against the allocation and is forwarded
        here, so the shared budget sees all spending while the lease measures
        only the charges routed through it.  The pipeline scheduler gives
        each step a lease and charges that step's LLM calls through it, so a
        step's batches stop once its apportioned share is gone — and
        concurrent sibling steps never count against each other.  A lease
        constrains even when the parent is unlimited (that is how a
        pipeline-level ``budget_dollars`` cap works on a session with no
        global limit).
        """
        return BudgetLease(self, allocation)


class BudgetLease:
    """A spend cap over a parent :class:`Budget` (or another lease).

    Exposes the same surface an executor or session checks (``unlimited``,
    ``remaining``, ``spent``, ``limit``, ``charge``).  Every charge is
    recorded against the lease's own counter *and* forwarded to the parent,
    so a lease only ever measures the spending routed through it: concurrent
    sibling steps each charging their own lease never count against each
    other, while the shared parent still sees every dollar.
    """

    def __init__(self, parent: "Budget | BudgetLease", allocation: float) -> None:
        if allocation < 0:
            raise ConfigurationError("lease allocation must be non-negative")
        self.parent = parent
        self.allocation = allocation
        self._own_spent = 0.0
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        """Always limited: the allocation caps spending even under an unlimited parent."""
        return False

    @property
    def limit(self) -> float:
        return self.allocation

    @property
    def spent(self) -> float:
        """Dollars charged through this lease."""
        return self._own_spent

    @property
    def remaining(self) -> float:
        """Dollars left under both the allocation and the parent's limit."""
        own = max(0.0, self.allocation - self._own_spent)
        return min(self.parent.remaining, own)

    def can_afford(self, amount: float) -> bool:
        """Whether ``amount`` more fits under the allocation and the parent."""
        return (
            self._own_spent + amount <= self.allocation + 1e-12
            and self.parent.can_afford(amount)
        )

    def charge(self, amount: float) -> None:
        """Record a spend against the lease and forward it to the parent.

        Raises:
            BudgetExceededError: if the charge pushes past the allocation
                (or the parent's limit).  Like :meth:`Budget.charge`, the
                charge is still recorded so callers can report overshoot.
        """
        if amount < 0:
            raise ConfigurationError("cannot charge a negative amount")
        with self._lock:
            self._own_spent += amount
            own = self._own_spent
        self.parent.charge(amount)
        if own > self.allocation + 1e-12:
            raise BudgetExceededError(own, self.allocation)

    def lease(self, allocation: float) -> "BudgetLease":
        """A sub-lease (pipeline cap → per-step share nests this way)."""
        return BudgetLease(self, allocation)
