"""The declarative engine facade.

:class:`DeclarativeEngine` is the user-facing entry point of the library: it
owns a :class:`~repro.core.session.PromptSession` (shared budget, cache,
tracker) and turns declarative :mod:`~repro.core.spec` objects into operator
runs.  The engine's ``max_concurrency`` argument is threaded through to every
operator it constructs, so all independent unit tasks (pairwise comparisons,
rating calls, per-record imputations, ...) run through a shared-size thread
pool; at temperature 0 results are identical to sequential execution.

Strategy selection is not the engine's job any more: every spec —
whatever its operator — is resolved by the
:class:`~repro.core.physical.PhysicalPlanner` before execution.  Explicit
strategies pass through untouched; ``"auto"`` specs with a labelled
validation sample go through the :class:`~repro.core.optimizer.
StrategySelector` (the AutoML-style loop the paper sketches in Section 4);
everything else is picked by estimated cost under the remaining budget.
After each run the engine feeds what actually happened (observed filter
selectivities, dedup rates, call counts) back into the session's
:class:`~repro.core.physical.RuntimeStats`, so later quotes and plans are
priced from observations instead of static priors.

Multi-operator workflows go through :meth:`DeclarativeEngine.run_pipeline`:
a :class:`~repro.core.spec.PipelineSpec` declares named steps (operator
specs or plain callables) connected by ``depends_on`` edges, the engine
quotes the whole pipeline a priori (:meth:`DeclarativeEngine.quote_pipeline`)
and the DAG scheduler in :mod:`repro.core.workflow` runs independent steps
concurrently while apportioning the remaining session budget across the
pending steps.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, ContextManager, Mapping

from repro.core.budget import Budget, BudgetLease
from repro.core.physical import PhysicalPlan, PhysicalPlanner, ResolvedStrategy
from repro.core.planner import CostPlanner, PipelineQuote
from repro.core.session import PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.core.governor import ConcurrencyGovernor
from repro.core.workflow import StepReport, Workflow, WorkflowReport, WorkflowStep
from repro.exceptions import SpecError, StoreError
from repro.llm.base import LLMClient
from repro.llm.registry import ModelRegistry
from repro.operators.base import OperatorResult
from repro.operators.categorize import CategorizeOperator, CategorizeResult
from repro.operators.cluster import ClusterOperator, ClusterResult
from repro.operators.filter import FilterOperator, FilterResult
from repro.operators.impute import ImputeOperator, ImputeResult
from repro.operators.join import JoinOperator, JoinResult
from repro.operators.resolve import PairJudgmentResult, ResolveOperator, ResolveResult
from repro.operators.sort import SortOperator, SortResult
from repro.operators.top_k import TopKOperator, TopKResult
from repro.obs import critical_path
from repro.store.fingerprint import fingerprint_spec
from repro.tokenizer.cost import Usage
from repro.trace import trace_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import Store


@dataclass
class _PipelinePrep:
    """What the sync and async pipeline entry points share per run."""

    workflow: Workflow
    quote: PipelineQuote | None
    store: "Store | None"
    restored: set[str]
    spec_runner: Any
    on_step: Callable[[StepReport], None] | None


class DeclarativeEngine:
    """Run declarative data-processing specs against an LLM client."""

    def __init__(
        self,
        client: LLMClient | None = None,
        *,
        registry: ModelRegistry | None = None,
        budget: Budget | None = None,
        default_model: str | None = None,
        max_concurrency: int = 1,
        governor: ConcurrencyGovernor | None = None,
        session: PromptSession | None = None,
    ) -> None:
        if session is not None:
            if client is not None or registry is not None or budget is not None or governor is not None:
                raise SpecError(
                    "pass either an existing session or client/registry/budget/governor, not both"
                )
            self.session = session
        else:
            if client is None:
                raise SpecError("DeclarativeEngine needs a client or a session")
            self.session = PromptSession(
                client,
                registry=registry,
                budget=budget,
                max_concurrency=max_concurrency,
                governor=governor,
            )
        self.default_model = default_model
        #: The physical-planning layer every spec's strategy resolves through.
        self.physical = PhysicalPlanner(self.session, default_model=default_model)

    @classmethod
    def from_session(
        cls, session: PromptSession, *, default_model: str | None = None
    ) -> "DeclarativeEngine":
        """An engine running over an existing session (shared budget/cache).

        The fluent :class:`~repro.query.Dataset` API uses this so a query can
        execute against a session the caller already owns.
        """
        return cls(session=session, default_model=default_model)

    # -- helpers -----------------------------------------------------------------

    def _operator_kwargs(self, budget: Budget | BudgetLease | None = None) -> dict:
        return self.physical.operator_kwargs(budget)

    def _resolve(
        self, spec: TaskSpec, budget: Budget | BudgetLease | None
    ) -> ResolvedStrategy:
        """Resolve the spec's strategy under whichever budget binds the run."""
        return self.physical.resolve(
            spec, budget=budget if budget is not None else self.session.budget
        )

    def _operator_span(self, label: str) -> "ContextManager[Any]":
        """An ``operator`` span under whatever step span is ambient.

        The label matches the tracer's ``operator=`` trace label
        (``"<op>:<strategy>"``), so the span waterfall and the trace
        records name the same work identically.
        """
        tracker = getattr(self.session, "spans", None)
        if tracker is None or not tracker.enabled:
            return nullcontext(None)
        return tracker.span("operator", label)

    @property
    def stats(self):
        """The session's observed-execution statistics store."""
        return self.session.stats

    @property
    def spent_dollars(self) -> float:
        """Total dollars spent through this engine."""
        return self.session.spent_dollars

    # -- sort ---------------------------------------------------------------------

    def sort(
        self, spec: SortSpec, *, budget: Budget | BudgetLease | None = None
    ) -> SortResult:
        """Execute a sort spec, its strategy resolved by the physical planner."""
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = SortOperator(
            self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
        )
        label = f"sort:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                list(spec.items), strategy=resolved.strategy, **resolved.options
            )
        self.physical.record_run(spec, resolved, result)
        return result

    # -- resolve ------------------------------------------------------------------

    def resolve(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> PairJudgmentResult | ResolveResult:
        """Execute a resolve spec.

        With ``pairs`` the spec is a pair-judgment task (the Table 3
        setting) and returns a :class:`PairJudgmentResult`.  With records
        only, it is a whole-corpus clustering task and returns a
        :class:`ResolveResult` whose ``clusters`` hold record indices.
        """
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
        label = f"resolve:{resolved.strategy}"
        if not spec.pairs:
            with trace_label(operator=label), self._operator_span(label):
                result = operator.resolve(
                    list(spec.records), strategy=resolved.strategy, **resolved.options
                )
            self.physical.record_run(spec, resolved, result)
            self.stats.record_dedup(
                inputs=len(spec.records), survivors=len(result.clusters)
            )
            return result
        options = dict(resolved.options)
        with trace_label(operator=label), self._operator_span(label):
            result = operator.judge_pairs(
                list(spec.pairs),
                strategy=resolved.strategy,
                corpus=list(spec.records) or None,
                neighbors_k=options.pop("neighbors_k", spec.neighbors_k),
                **options,
            )
        self.physical.record_run(spec, resolved, result)
        self.stats.record_pair_match(
            judged=len(result.judgments),
            duplicates=sum(1 for judgment in result.judgments if judgment.is_duplicate),
        )
        return result

    # -- impute -------------------------------------------------------------------

    def impute(
        self, spec: ImputeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ImputeResult:
        """Execute an impute spec, its strategy resolved by the physical planner."""
        spec.validate()
        assert spec.data is not None  # validate() guarantees this
        resolved = self._resolve(spec, budget)
        operator = ImputeOperator(self.session.client(budget), **self._operator_kwargs(budget))
        label = f"impute:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                spec.data, strategy=resolved.strategy, n_examples=spec.n_examples
            )
        self.physical.record_run(spec, resolved, result)
        return result

    # -- filter -------------------------------------------------------------------

    def filter(
        self, spec: FilterSpec, *, budget: Budget | BudgetLease | None = None
    ) -> FilterResult:
        """Execute a filter spec, applying conjunctive predicates in order.

        A multi-predicate (fused) spec checks each predicate over the
        survivors of the previous one, so later predicates never spend calls
        on items an earlier predicate already rejected.  Strategies resolve
        *per predicate* (see :meth:`PhysicalPlanner.resolve_filter`): with
        validation labels, a cheap ``per_item`` pass on an easy predicate
        can precede an ensemble vote on the hard one.  Each predicate's
        observed selectivity is recorded into the session's runtime stats.
        """
        spec.validate()
        plans = self.physical.resolve_filter(
            spec, budget=budget if budget is not None else self.session.budget
        )
        survivors = [str(item) for item in spec.items]
        usage = Usage()
        cost = 0.0
        votes = 0
        decisions = {item: True for item in survivors}
        result: FilterResult | None = None
        strategies: dict[str, str] = {}
        executed: list[str] = []
        for predicate, resolved in plans:
            strategies[predicate] = resolved.strategy
            if not survivors:
                break
            if resolved.strategy not in executed:
                executed.append(resolved.strategy)
            operator = FilterOperator(
                self.session.client(budget), predicate, **self._operator_kwargs(budget)
            )
            label = f"filter:{resolved.strategy}"
            with trace_label(operator=label), self._operator_span(label):
                result = operator.run(
                    survivors, strategy=resolved.strategy, **resolved.options
                )
            for item in survivors:
                decisions[item] = result.decisions.get(item, False)
            self.stats.record_filter(
                predicate, evaluated=len(survivors), kept=len(result.kept)
            )
            survivors = list(result.kept)
            usage.add(result.usage)
            cost += result.cost
            votes += result.votes_used
        merged = FilterResult(
            strategy="+".join(executed) if executed else plans[0][1].strategy,
            kept=survivors,
            decisions=decisions,
            votes_used=votes,
        )
        merged.usage = usage
        merged.cost = cost
        if result is not None:
            merged.metadata = dict(result.metadata)
        merged.metadata["predicates"] = list(spec.all_predicates)
        merged.metadata["predicate_strategies"] = strategies
        return merged

    # -- categorize ---------------------------------------------------------------

    def categorize(
        self, spec: CategorizeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> CategorizeResult:
        """Execute a categorize spec."""
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = CategorizeOperator(
            self.session.client(budget), list(spec.categories), **self._operator_kwargs(budget)
        )
        label = f"categorize:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                list(spec.items), strategy=resolved.strategy, **resolved.options
            )
        self.physical.record_run(spec, resolved, result)
        return result

    # -- top-k --------------------------------------------------------------------

    def top_k(
        self, spec: TopKSpec, *, budget: Budget | BudgetLease | None = None
    ) -> TopKResult:
        """Execute a top-k spec."""
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = TopKOperator(
            self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
        )
        label = f"top_k:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                list(spec.items), k=spec.k, strategy=resolved.strategy, **resolved.options
            )
        self.physical.record_run(spec, resolved, result)
        return result

    # -- join ---------------------------------------------------------------------

    def join(
        self, spec: JoinSpec, *, budget: Budget | BudgetLease | None = None
    ) -> JoinResult:
        """Execute a join spec."""
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = JoinOperator(self.session.client(budget), **self._operator_kwargs(budget))
        label = f"join:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                list(spec.left), list(spec.right), strategy=resolved.strategy, **resolved.options
            )
        self.physical.record_run(spec, resolved, result)
        self.stats.record_join(
            left=len(spec.left),
            matched=len({left_index for left_index, _ in result.matches}),
        )
        return result

    # -- cluster ------------------------------------------------------------------

    def cluster(
        self, spec: ClusterSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ClusterResult:
        """Execute a cluster spec."""
        spec.validate()
        resolved = self._resolve(spec, budget)
        operator = ClusterOperator(self.session.client(budget), **self._operator_kwargs(budget))
        label = f"cluster:{resolved.strategy}"
        with trace_label(operator=label), self._operator_span(label):
            result = operator.run(
                list(spec.items), strategy=resolved.strategy, **resolved.options
            )
        self.physical.record_run(spec, resolved, result)
        return result

    # -- pipelines ----------------------------------------------------------------

    def run_spec(
        self, spec: TaskSpec, *, budget: Budget | BudgetLease | None = None
    ) -> Any:
        """Execute any supported task spec, dispatching on its type."""
        if isinstance(spec, SortSpec):
            return self.sort(spec, budget=budget)
        if isinstance(spec, ResolveSpec):
            return self.resolve(spec, budget=budget)
        if isinstance(spec, ImputeSpec):
            return self.impute(spec, budget=budget)
        if isinstance(spec, FilterSpec):
            return self.filter(spec, budget=budget)
        if isinstance(spec, CategorizeSpec):
            return self.categorize(spec, budget=budget)
        if isinstance(spec, TopKSpec):
            return self.top_k(spec, budget=budget)
        if isinstance(spec, JoinSpec):
            return self.join(spec, budget=budget)
        if isinstance(spec, ClusterSpec):
            return self.cluster(spec, budget=budget)
        raise SpecError(f"cannot execute spec type {type(spec).__name__}")

    def planner(self, model: str | None = None) -> CostPlanner:
        """A cost planner for ``model`` (defaults to the engine's model).

        The planner is fed by the session's :class:`~repro.core.physical.
        RuntimeStats`, so quotes computed after this engine has executed
        work are priced from observed selectivities and call ratios.
        """
        return self.physical.cost_planner(model)

    def plan_physical(self, pipeline: PipelineSpec) -> PhysicalPlan:
        """Resolve every static step's strategy up front (see PhysicalPlanner)."""
        return self.physical.plan_pipeline(pipeline)

    def quote_pipeline(self, pipeline: PipelineSpec) -> PipelineQuote:
        """Pre-flight quote for a pipeline: per-step estimates plus totals.

        A quote priced from observed statistics is only as good as the
        observations that reached the store, so a session whose trace ring
        dropped records before flushing carries a warning note on every
        subsequent quote.
        """
        quote = self.planner().quote_pipeline(pipeline)
        note = self._dropped_records_note()
        if note is not None:
            quote = replace(quote, notes=quote.notes + (note,))
        return quote

    def _dropped_records_note(self) -> str | None:
        """A warning when the session's trace ring has evicted records."""
        dropped = getattr(getattr(self.session, "tracer", None), "dropped", 0)
        if not dropped:
            return None
        return (
            f"trace ring dropped {dropped} record(s) before flushing; "
            "observed statistics may undercount (raise the tracer capacity "
            "or flush more often)"
        )

    def run_pipeline(
        self,
        pipeline: PipelineSpec | Workflow,
        *,
        quote: PipelineQuote | None = None,
        max_concurrency: int | None = None,
        store: "Store | None" = None,
        scheduler: str = "threads",
        on_step: "Callable[[StepReport], None] | None" = None,
    ) -> WorkflowReport:
        """Run a declarative pipeline (or a pre-built workflow) as a DAG.

        Independent steps run concurrently on the session's executor; spec
        steps are executed by this engine under per-step budget leases
        apportioned from whatever remains of the session budget, weighted by
        the pre-flight quote.  When no ``quote`` is passed and ``pipeline``
        is a spec, one is computed automatically and attached to the report.

        With a :class:`~repro.store.Store` (passed here, or already attached
        to the session), execution is **checkpointed**: every completed spec
        step's result is persisted under its content fingerprint as soon as
        it finishes, and any step whose fingerprint is already in the store
        is restored without a single LLM call — which is what makes a
        killed run resumable and a partially edited pipeline incremental
        (only the changed subtree re-executes).  Restored steps are flagged
        ``restored`` in the report.  The session's workload profile is
        saved back to the store after the run.

        Args:
            pipeline: a :class:`~repro.core.spec.PipelineSpec`, or a
                :class:`~repro.core.workflow.Workflow` built by hand.
            quote: optional pre-computed quote (avoids re-estimating).
            max_concurrency: scheduler pool size for independent steps;
                defaults to the session's ``max_concurrency``.
            store: durable store for checkpoints/profile; defaults to the
                session's own store when it has one.
            scheduler: ``"threads"`` (default) or ``"async"`` — forwarded to
                :meth:`~repro.core.workflow.Workflow.execute`.  The async
                scheduler awaits native-async clients on one event loop and
                bridges the engine's sync spec steps into worker threads.
            on_step: optional observer called with each step's
                :class:`~repro.core.workflow.StepReport` as it settles
                (``restored`` already stamped); the service layer streams
                these to polling clients.
        """
        prep = self._prepare_pipeline(pipeline, quote, store, on_step)
        try:
            report = prep.workflow.execute(
                self.session,
                max_concurrency=max_concurrency,
                spec_runner=prep.spec_runner,
                quote=prep.quote,
                scheduler=scheduler,
                on_step=prep.on_step,
            )
        except BaseException:
            # A crashed run's completed steps already checkpointed
            # themselves; their observations are just as real, so the
            # profile survives the failure too (the resumed process
            # warm-starts from everything that did happen).  Best
            # effort only: a store failure here (locked db, full disk)
            # must not replace the pipeline's real exception.
            try:
                self._save_profile(prep.store)
            except Exception:
                pass
            raise
        return self._finish_pipeline(report, prep)

    async def run_pipeline_async(
        self,
        pipeline: PipelineSpec | Workflow,
        *,
        quote: PipelineQuote | None = None,
        max_concurrency: int | None = None,
        store: "Store | None" = None,
        on_step: "Callable[[StepReport], None] | None" = None,
    ) -> WorkflowReport:
        """Awaitable :meth:`run_pipeline` for callers already inside a loop.

        ``run_pipeline(..., scheduler="async")`` drives its own event loop
        via ``asyncio.run`` and therefore cannot be called from a running
        loop (an ASGI request handler, the service's job manager).  This
        entry point awaits :meth:`Workflow.execute_async` directly instead:
        same quoting, checkpointing, profile persistence, and report — the
        only difference is who owns the loop.
        """
        prep = self._prepare_pipeline(pipeline, quote, store, on_step)
        try:
            report = await prep.workflow.execute_async(
                self.session,
                max_concurrency=max_concurrency,
                spec_runner=prep.spec_runner,
                quote=prep.quote,
                on_step=prep.on_step,
            )
        except BaseException:
            try:
                self._save_profile(prep.store)
            except Exception:
                pass
            raise
        return self._finish_pipeline(report, prep)

    def _prepare_pipeline(
        self,
        pipeline: PipelineSpec | Workflow,
        quote: PipelineQuote | None,
        store: "Store | None",
        on_step: "Callable[[StepReport], None] | None",
    ) -> "_PipelinePrep":
        """The shared setup of the sync and async pipeline entry points."""
        if isinstance(pipeline, Workflow):
            workflow = pipeline
        else:
            workflow = Workflow.from_pipeline(pipeline)
            if quote is None:
                quote = self.quote_pipeline(pipeline)
        if store is None:
            store = getattr(self.session, "store", None)
        restored: set[str] = set()
        if store is None:
            spec_runner: Any = self._run_pipeline_step
        else:

            def spec_runner(
                step: WorkflowStep, inputs: Mapping[str, Any], lease: BudgetLease | None
            ) -> Any:
                return self._run_checkpointed_step(store, restored, step, inputs, lease)

        observer = on_step
        if on_step is not None:

            def observer(step_report: "StepReport") -> None:
                # The engine stamps ``restored`` on the final report only
                # after the run; events should already carry it.
                if step_report.name in restored:
                    step_report.restored = True
                on_step(step_report)

        return _PipelinePrep(
            workflow=workflow,
            quote=quote,
            store=store,
            restored=restored,
            spec_runner=spec_runner,
            on_step=observer,
        )

    def _finish_pipeline(
        self, report: WorkflowReport, prep: "_PipelinePrep"
    ) -> WorkflowReport:
        for name in prep.restored:
            report.step_reports[name].restored = True
        self._absorb_observability(report, prep)
        # Persist the (possibly newly grown) observations so the next
        # session warm-starts its quotes from this run.
        self._save_profile(prep.store)
        return report

    def _absorb_observability(
        self, report: WorkflowReport, prep: "_PipelinePrep"
    ) -> None:
        """Collect the run's span subtree and feed the critical path back.

        The subtree rides the report (runtime-only, for
        :func:`repro.obs.render_timeline`) and its critical-path seconds —
        the wall-clock of the longest dependent step chain, which is what
        a concurrent run actually took — are recorded into the session's
        :class:`~repro.core.physical.RuntimeStats` under the pipeline's
        name.  Trace-ring drops surface as an advisory note.
        """
        tracker = getattr(self.session, "spans", None)
        if tracker is not None and report.span_id is not None:
            report.spans = tracker.subtree(report.span_id)
            path = critical_path(report.spans)
            if path.seconds > 0:
                self.stats.record_critical_path(prep.workflow.name, path.seconds)
            # Best effort: spans are diagnostics, never a run failure.
            try:
                tracker.flush()
            except Exception:
                pass
        note = self._dropped_records_note()
        if note is not None and note not in report.notes:
            report.notes.append(note)

    def _save_profile(self, store: "Store | None") -> None:
        """Save the session's stats to ``store``, history-preserving.

        A session seeded from this store already carries its decayed
        history, so a plain replace is exact; saving to any *other* store
        (an explicit ``store=`` argument) merges the saved history
        underneath first, so one small run cannot clobber an accumulated
        profile.
        """
        if store is None:
            return
        store.save_profile(
            self.session.stats, merge=store is not getattr(self.session, "store", None)
        )

    def _materialize_step_task(
        self, step: WorkflowStep, inputs: Mapping[str, Any]
    ) -> TaskSpec:
        """The concrete spec a pipeline step will execute (factories applied)."""
        task = step.task
        if callable(task) and not isinstance(task, TaskSpec):
            task = task(inputs)
        if not isinstance(task, TaskSpec):
            raise SpecError(
                f"pipeline step {step.name!r} produced {type(task).__name__}, expected a TaskSpec"
            )
        try:
            task.validate()
        except SpecError as exc:
            # A factory-built spec cannot be checked at compile time; name the
            # step here so a run-time failure (e.g. an upstream filter left no
            # items) is attributable without digging through the DAG.
            raise SpecError(f"pipeline step {step.name!r}: {exc}") from exc
        return task

    def _run_pipeline_step(
        self,
        step: WorkflowStep,
        inputs: Mapping[str, Any],
        lease: BudgetLease | None,
    ) -> Any:
        with trace_label(step=step.name):
            return self.run_spec(self._materialize_step_task(step, inputs), budget=lease)

    def _run_checkpointed_step(
        self,
        store: "Store",
        restored: set[str],
        step: WorkflowStep,
        inputs: Mapping[str, Any],
        lease: BudgetLease | None,
    ) -> Any:
        """Run one spec step through the checkpoint store.

        The fingerprint is computed over the *concrete* spec (factories
        already applied), so it content-addresses the step's resolved
        inputs; a hit restores the stored result before any strategy
        resolution happens — validation-driven ``auto`` steps therefore
        skip even their labelled-sample candidate runs on resume.  Specs
        that cannot be fingerprinted or results without a codec simply
        bypass the store (re-running is always correct).
        """
        with trace_label(step=step.name):
            return self._checkpointed_step(store, restored, step, inputs, lease)

    def _checkpointed_step(
        self,
        store: "Store",
        restored: set[str],
        step: WorkflowStep,
        inputs: Mapping[str, Any],
        lease: BudgetLease | None,
    ) -> Any:
        task = self._materialize_step_task(step, inputs)
        try:
            fingerprint = fingerprint_spec(task)
        except StoreError:
            return self.run_spec(task, budget=lease)
        try:
            cached = store.load_checkpoint(fingerprint)
        except Exception:
            # A mangled row or a database error must never sink a resume:
            # re-running the step is always correct, so a failed load is
            # just a miss.
            cached = None
        if cached is not None:
            restored.add(step.name)
            return cached
        result = self.run_spec(task, budget=lease)
        if isinstance(result, OperatorResult):
            try:
                store.save_checkpoint(fingerprint, task, result)
            except Exception:
                # Best effort: a full disk, a locked database, or a result
                # without a codec must not fail a step whose (paid-for)
                # LLM work already succeeded.
                pass
        return result
