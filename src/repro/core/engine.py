"""The declarative engine facade.

:class:`DeclarativeEngine` is the user-facing entry point of the library: it
owns a :class:`~repro.core.session.PromptSession` (shared budget, cache,
tracker) and turns declarative :mod:`~repro.core.spec` objects into operator
runs.  The engine's ``max_concurrency`` argument is threaded through to every
operator it constructs, so all independent unit tasks (pairwise comparisons,
rating calls, per-record imputations, ...) run through a shared-size thread
pool; at temperature 0 results are identical to sequential execution.  When a spec leaves the strategy as ``"auto"`` and provides a labelled
validation sample, the engine uses the :class:`~repro.core.optimizer.
StrategySelector` to pick a strategy before running the full task — the
AutoML-style loop the paper sketches in Section 4.

Multi-operator workflows go through :meth:`DeclarativeEngine.run_pipeline`:
a :class:`~repro.core.spec.PipelineSpec` declares named steps (operator
specs or plain callables) connected by ``depends_on`` edges, the engine
quotes the whole pipeline a priori (:meth:`DeclarativeEngine.quote_pipeline`)
and the DAG scheduler in :mod:`repro.core.workflow` runs independent steps
concurrently while apportioning the remaining session budget across the
pending steps.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.budget import Budget, BudgetLease
from repro.core.optimizer import StrategyCandidate, StrategySelector
from repro.core.planner import CostPlanner, PipelineQuote
from repro.core.session import PromptSession
from repro.core.spec import ImputeSpec, PipelineSpec, ResolveSpec, SortSpec, TaskSpec
from repro.core.workflow import Workflow, WorkflowReport, WorkflowStep
from repro.data.products import ImputationDataset
from repro.data.record import Dataset
from repro.exceptions import SpecError
from repro.llm.base import LLMClient
from repro.llm.registry import ModelRegistry
from repro.metrics.classification import accuracy as exact_match_accuracy
from repro.metrics.classification import f1_score
from repro.metrics.ranking import kendall_tau_b
from repro.operators.impute import ImputeOperator, ImputeResult
from repro.operators.resolve import PairJudgmentResult, ResolveOperator
from repro.operators.sort import SortOperator, SortResult


class DeclarativeEngine:
    """Run declarative data-processing specs against an LLM client."""

    def __init__(
        self,
        client: LLMClient,
        *,
        registry: ModelRegistry | None = None,
        budget: Budget | None = None,
        default_model: str | None = None,
        max_concurrency: int = 1,
    ) -> None:
        self.session = PromptSession(
            client, registry=registry, budget=budget, max_concurrency=max_concurrency
        )
        self.default_model = default_model

    # -- helpers -----------------------------------------------------------------

    def _operator_kwargs(self, budget: Budget | BudgetLease | None = None) -> dict:
        return {
            "model": self.default_model,
            "cost_model": self.session.cost_model,
            "max_concurrency": self.session.max_concurrency,
            # Hand the session budget to every operator's executor so a spend
            # limit stops a large batch between unit tasks, not after the
            # whole batch has been dispatched.  A pipeline step passes its
            # per-step BudgetLease instead, capping the step at its
            # apportioned share of the remaining dollars.
            "budget": budget if budget is not None else self.session.budget,
        }

    @property
    def spent_dollars(self) -> float:
        """Total dollars spent through this engine."""
        return self.session.spent_dollars

    # -- sort ---------------------------------------------------------------------

    def sort(
        self, spec: SortSpec, *, budget: Budget | BudgetLease | None = None
    ) -> SortResult:
        """Execute a sort spec, choosing a strategy automatically if asked."""
        spec.validate()
        strategy = spec.strategy
        options = dict(spec.strategy_options)
        if strategy == "auto":
            strategy, options = self._choose_sort_strategy(spec, budget=budget)
        operator = SortOperator(
            self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
        )
        return operator.run(list(spec.items), strategy=strategy, **options)

    def _choose_sort_strategy(
        self, spec: SortSpec, *, budget: Budget | BudgetLease | None = None
    ) -> tuple[str, dict]:
        if len(spec.validation_order) < 3:
            # Without labels there is nothing to optimize against; default to
            # the paper's most accurate general-purpose strategy.
            return "pairwise", {}
        validation_items = list(spec.validation_order)
        candidates = [
            StrategyCandidate(name="single_prompt", cost_scaling="constant"),
            StrategyCandidate(name="rating", cost_scaling="linear"),
            StrategyCandidate(name="pairwise", cost_scaling="quadratic"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> SortResult:
            operator = SortOperator(
                self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
            )
            return operator.run(validation_items, strategy=candidate.name, **candidate.options)

        def score(result: SortResult) -> float:
            placed = set(result.order)
            order = list(result.order) + [
                item for item in validation_items if item not in placed
            ]
            tau = kendall_tau_b(order, validation_items)
            return (tau + 1.0) / 2.0

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_items),
            full_size=len(spec.items),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    # -- resolve ------------------------------------------------------------------

    def resolve(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> PairJudgmentResult:
        """Execute a resolve spec over labelled or unlabelled pairs."""
        spec.validate()
        if not spec.pairs:
            raise SpecError(
                "DeclarativeEngine.resolve currently requires pairs; use ResolveOperator.resolve "
                "directly for whole-corpus clustering"
            )
        strategy = spec.strategy
        options = dict(spec.strategy_options)
        if strategy == "auto":
            strategy, options = self._choose_resolve_strategy(spec, budget=budget)
        operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.judge_pairs(
            list(spec.pairs),
            strategy=strategy,
            corpus=list(spec.records) or None,
            neighbors_k=options.pop("neighbors_k", spec.neighbors_k),
            **options,
        )

    def _choose_resolve_strategy(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> tuple[str, dict]:
        labels = dict(spec.validation_labels)
        if len(labels) < 5:
            return "transitive", {"neighbors_k": spec.neighbors_k}
        validation_pairs = list(labels)
        candidates = [
            StrategyCandidate(name="pairwise", cost_scaling="linear"),
            StrategyCandidate(
                name="transitive", options={"neighbors_k": spec.neighbors_k}, cost_scaling="linear"
            ),
            StrategyCandidate(name="proxy_hybrid", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> PairJudgmentResult:
            operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
            return operator.judge_pairs(
                validation_pairs,
                strategy=candidate.name,
                corpus=list(spec.records) or None,
                **candidate.options,
            )

        def score(result: PairJudgmentResult) -> float:
            predictions = [judgment.is_duplicate for judgment in result.judgments]
            truth = [labels[pair] for pair in validation_pairs]
            return f1_score(predictions, truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_pairs),
            full_size=len(spec.pairs),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    # -- impute -------------------------------------------------------------------

    def impute(
        self, spec: ImputeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ImputeResult:
        """Execute an impute spec, choosing a strategy automatically if asked."""
        spec.validate()
        assert spec.data is not None  # validate() guarantees this
        strategy = spec.strategy
        options: dict = {"n_examples": spec.n_examples}
        if strategy == "auto":
            strategy = self._choose_impute_strategy(spec, budget=budget)
        operator = ImputeOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.run(spec.data, strategy=strategy, **options)

    def _choose_impute_strategy(
        self, spec: ImputeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> str:
        data = spec.data
        assert data is not None
        validation_size = min(spec.validation_size, len(data.queries))
        if validation_size < 5:
            return "hybrid"
        validation_records = data.queries.records[:validation_size]
        validation_data = ImputationDataset(
            name=f"{data.name}-validation",
            target_attribute=data.target_attribute,
            queries=Dataset(validation_records, name=f"{data.name}-validation-queries"),
            reference=data.reference,
            ground_truth={
                record.record_id: data.ground_truth[record.record_id]
                for record in validation_records
            },
        )
        candidates = [
            StrategyCandidate(name="knn", cost_scaling="linear"),
            StrategyCandidate(name="hybrid", cost_scaling="linear"),
            StrategyCandidate(name="llm_only", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> ImputeResult:
            operator = ImputeOperator(self.session.client(budget), **self._operator_kwargs(budget))
            return operator.run(validation_data, strategy=candidate.name, n_examples=spec.n_examples)

        def score(result: ImputeResult) -> float:
            return exact_match_accuracy(result.predictions, validation_data.ground_truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=validation_size,
            full_size=len(data.queries),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name

    # -- pipelines ----------------------------------------------------------------

    def run_spec(
        self, spec: TaskSpec, *, budget: Budget | BudgetLease | None = None
    ) -> Any:
        """Execute any supported task spec, dispatching on its type."""
        if isinstance(spec, SortSpec):
            return self.sort(spec, budget=budget)
        if isinstance(spec, ResolveSpec):
            return self.resolve(spec, budget=budget)
        if isinstance(spec, ImputeSpec):
            return self.impute(spec, budget=budget)
        raise SpecError(f"cannot execute spec type {type(spec).__name__}")

    def planner(self, model: str | None = None) -> CostPlanner:
        """A cost planner for ``model`` (defaults to the engine's model)."""
        return CostPlanner(
            model or self.default_model or self.session.config.chat_model,
            registry=self.session.registry,
        )

    def quote_pipeline(self, pipeline: PipelineSpec) -> PipelineQuote:
        """Pre-flight quote for a pipeline: per-step estimates plus totals."""
        return self.planner().quote_pipeline(pipeline)

    def run_pipeline(
        self,
        pipeline: PipelineSpec | Workflow,
        *,
        quote: PipelineQuote | None = None,
        max_concurrency: int | None = None,
    ) -> WorkflowReport:
        """Run a declarative pipeline (or a pre-built workflow) as a DAG.

        Independent steps run concurrently on the session's executor; spec
        steps are executed by this engine under per-step budget leases
        apportioned from whatever remains of the session budget, weighted by
        the pre-flight quote.  When no ``quote`` is passed and ``pipeline``
        is a spec, one is computed automatically and attached to the report.

        Args:
            pipeline: a :class:`~repro.core.spec.PipelineSpec`, or a
                :class:`~repro.core.workflow.Workflow` built by hand.
            quote: optional pre-computed quote (avoids re-estimating).
            max_concurrency: scheduler pool size for independent steps;
                defaults to the session's ``max_concurrency``.
        """
        if isinstance(pipeline, Workflow):
            workflow = pipeline
        else:
            workflow = Workflow.from_pipeline(pipeline)
            if quote is None:
                quote = self.quote_pipeline(pipeline)
        return workflow.execute(
            self.session,
            max_concurrency=max_concurrency,
            spec_runner=self._run_pipeline_step,
            quote=quote,
        )

    def _run_pipeline_step(
        self,
        step: WorkflowStep,
        inputs: Mapping[str, Any],
        lease: BudgetLease | None,
    ) -> Any:
        task = step.task
        if callable(task) and not isinstance(task, TaskSpec):
            task = task(inputs)
        if not isinstance(task, TaskSpec):
            raise SpecError(
                f"pipeline step {step.name!r} produced {type(task).__name__}, expected a TaskSpec"
            )
        return self.run_spec(task, budget=lease)
