"""The declarative engine facade.

:class:`DeclarativeEngine` is the user-facing entry point of the library: it
owns a :class:`~repro.core.session.PromptSession` (shared budget, cache,
tracker) and turns declarative :mod:`~repro.core.spec` objects into operator
runs.  The engine's ``max_concurrency`` argument is threaded through to every
operator it constructs, so all independent unit tasks (pairwise comparisons,
rating calls, per-record imputations, ...) run through a shared-size thread
pool; at temperature 0 results are identical to sequential execution.  When a spec leaves the strategy as ``"auto"`` and provides a labelled
validation sample, the engine uses the :class:`~repro.core.optimizer.
StrategySelector` to pick a strategy before running the full task — the
AutoML-style loop the paper sketches in Section 4.

Multi-operator workflows go through :meth:`DeclarativeEngine.run_pipeline`:
a :class:`~repro.core.spec.PipelineSpec` declares named steps (operator
specs or plain callables) connected by ``depends_on`` edges, the engine
quotes the whole pipeline a priori (:meth:`DeclarativeEngine.quote_pipeline`)
and the DAG scheduler in :mod:`repro.core.workflow` runs independent steps
concurrently while apportioning the remaining session budget across the
pending steps.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.budget import Budget, BudgetLease
from repro.core.optimizer import StrategyCandidate, StrategySelector
from repro.core.planner import CostPlanner, PipelineQuote
from repro.core.session import PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    ResolveSpec,
    SortSpec,
    TaskSpec,
    TopKSpec,
)
from repro.core.workflow import Workflow, WorkflowReport, WorkflowStep
from repro.data.products import ImputationDataset
from repro.data.record import Dataset
from repro.exceptions import SpecError
from repro.llm.base import LLMClient
from repro.llm.registry import ModelRegistry
from repro.metrics.classification import accuracy as exact_match_accuracy
from repro.metrics.classification import f1_score
from repro.metrics.ranking import kendall_tau_b
from repro.operators.categorize import CategorizeOperator, CategorizeResult
from repro.operators.cluster import ClusterOperator, ClusterResult
from repro.operators.filter import FilterOperator, FilterResult
from repro.operators.impute import ImputeOperator, ImputeResult
from repro.operators.join import JoinOperator, JoinResult
from repro.operators.resolve import PairJudgmentResult, ResolveOperator, ResolveResult
from repro.operators.sort import SortOperator, SortResult
from repro.operators.top_k import TopKOperator, TopKResult
from repro.tokenizer.cost import Usage


class DeclarativeEngine:
    """Run declarative data-processing specs against an LLM client."""

    def __init__(
        self,
        client: LLMClient | None = None,
        *,
        registry: ModelRegistry | None = None,
        budget: Budget | None = None,
        default_model: str | None = None,
        max_concurrency: int = 1,
        session: PromptSession | None = None,
    ) -> None:
        if session is not None:
            if client is not None or registry is not None or budget is not None:
                raise SpecError(
                    "pass either an existing session or client/registry/budget, not both"
                )
            self.session = session
        else:
            if client is None:
                raise SpecError("DeclarativeEngine needs a client or a session")
            self.session = PromptSession(
                client, registry=registry, budget=budget, max_concurrency=max_concurrency
            )
        self.default_model = default_model

    @classmethod
    def from_session(
        cls, session: PromptSession, *, default_model: str | None = None
    ) -> "DeclarativeEngine":
        """An engine running over an existing session (shared budget/cache).

        The fluent :class:`~repro.query.Dataset` API uses this so a query can
        execute against a session the caller already owns.
        """
        return cls(session=session, default_model=default_model)

    # -- helpers -----------------------------------------------------------------

    def _operator_kwargs(self, budget: Budget | BudgetLease | None = None) -> dict:
        return {
            "model": self.default_model,
            "cost_model": self.session.cost_model,
            "max_concurrency": self.session.max_concurrency,
            # Hand the session budget to every operator's executor so a spend
            # limit stops a large batch between unit tasks, not after the
            # whole batch has been dispatched.  A pipeline step passes its
            # per-step BudgetLease instead, capping the step at its
            # apportioned share of the remaining dollars.
            "budget": budget if budget is not None else self.session.budget,
        }

    @property
    def spent_dollars(self) -> float:
        """Total dollars spent through this engine."""
        return self.session.spent_dollars

    # -- sort ---------------------------------------------------------------------

    def sort(
        self, spec: SortSpec, *, budget: Budget | BudgetLease | None = None
    ) -> SortResult:
        """Execute a sort spec, choosing a strategy automatically if asked."""
        spec.validate()
        strategy = spec.strategy
        options = dict(spec.strategy_options)
        if strategy == "auto":
            strategy, options = self._choose_sort_strategy(spec, budget=budget)
        operator = SortOperator(
            self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
        )
        return operator.run(list(spec.items), strategy=strategy, **options)

    def _choose_sort_strategy(
        self, spec: SortSpec, *, budget: Budget | BudgetLease | None = None
    ) -> tuple[str, dict]:
        if len(spec.validation_order) < 3:
            # Without labels there is nothing to optimize against; default to
            # the paper's most accurate general-purpose strategy.
            return "pairwise", {}
        validation_items = list(spec.validation_order)
        candidates = [
            StrategyCandidate(name="single_prompt", cost_scaling="constant"),
            StrategyCandidate(name="rating", cost_scaling="linear"),
            StrategyCandidate(name="pairwise", cost_scaling="quadratic"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> SortResult:
            operator = SortOperator(
                self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
            )
            return operator.run(validation_items, strategy=candidate.name, **candidate.options)

        def score(result: SortResult) -> float:
            placed = set(result.order)
            order = list(result.order) + [
                item for item in validation_items if item not in placed
            ]
            tau = kendall_tau_b(order, validation_items)
            return (tau + 1.0) / 2.0

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_items),
            full_size=len(spec.items),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    # -- resolve ------------------------------------------------------------------

    def resolve(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> PairJudgmentResult | ResolveResult:
        """Execute a resolve spec.

        With ``pairs`` the spec is a pair-judgment task (the Table 3
        setting) and returns a :class:`PairJudgmentResult`.  With records
        only, it is a whole-corpus clustering task and returns a
        :class:`ResolveResult` whose ``clusters`` hold record indices.
        """
        spec.validate()
        if not spec.pairs:
            return self._resolve_records(spec, budget=budget)
        strategy = spec.strategy
        options = dict(spec.strategy_options)
        if strategy == "auto":
            strategy, options = self._choose_resolve_strategy(spec, budget=budget)
        operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.judge_pairs(
            list(spec.pairs),
            strategy=strategy,
            corpus=list(spec.records) or None,
            neighbors_k=options.pop("neighbors_k", spec.neighbors_k),
            **options,
        )

    def _resolve_records(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ResolveResult:
        """Cluster the spec's records into duplicate groups."""
        strategy = spec.strategy
        if strategy == "auto":
            # The paper's most accurate general-purpose strategy; the query
            # optimizer downgrades to blocked_pairwise when the planner says
            # a blocking proxy pays for itself.
            strategy = "pairwise"
        operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.resolve(
            list(spec.records), strategy=strategy, **dict(spec.strategy_options)
        )

    def _choose_resolve_strategy(
        self, spec: ResolveSpec, *, budget: Budget | BudgetLease | None = None
    ) -> tuple[str, dict]:
        labels = dict(spec.validation_labels)
        if len(labels) < 5:
            return "transitive", {"neighbors_k": spec.neighbors_k}
        validation_pairs = list(labels)
        candidates = [
            StrategyCandidate(name="pairwise", cost_scaling="linear"),
            StrategyCandidate(
                name="transitive", options={"neighbors_k": spec.neighbors_k}, cost_scaling="linear"
            ),
            StrategyCandidate(name="proxy_hybrid", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> PairJudgmentResult:
            operator = ResolveOperator(self.session.client(budget), **self._operator_kwargs(budget))
            return operator.judge_pairs(
                validation_pairs,
                strategy=candidate.name,
                corpus=list(spec.records) or None,
                **candidate.options,
            )

        def score(result: PairJudgmentResult) -> float:
            predictions = [judgment.is_duplicate for judgment in result.judgments]
            truth = [labels[pair] for pair in validation_pairs]
            return f1_score(predictions, truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=len(validation_pairs),
            full_size=len(spec.pairs),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name, dict(chosen.candidate.options)

    # -- impute -------------------------------------------------------------------

    def impute(
        self, spec: ImputeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ImputeResult:
        """Execute an impute spec, choosing a strategy automatically if asked."""
        spec.validate()
        assert spec.data is not None  # validate() guarantees this
        strategy = spec.strategy
        options: dict = {"n_examples": spec.n_examples}
        if strategy == "auto":
            strategy = self._choose_impute_strategy(spec, budget=budget)
        operator = ImputeOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.run(spec.data, strategy=strategy, **options)

    def _choose_impute_strategy(
        self, spec: ImputeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> str:
        data = spec.data
        assert data is not None
        validation_size = min(spec.validation_size, len(data.queries))
        if validation_size < 5:
            return "hybrid"
        validation_records = data.queries.records[:validation_size]
        validation_data = ImputationDataset(
            name=f"{data.name}-validation",
            target_attribute=data.target_attribute,
            queries=Dataset(validation_records, name=f"{data.name}-validation-queries"),
            reference=data.reference,
            ground_truth={
                record.record_id: data.ground_truth[record.record_id]
                for record in validation_records
            },
        )
        candidates = [
            StrategyCandidate(name="knn", cost_scaling="linear"),
            StrategyCandidate(name="hybrid", cost_scaling="linear"),
            StrategyCandidate(name="llm_only", cost_scaling="linear"),
        ]

        def run_candidate(candidate: StrategyCandidate) -> ImputeResult:
            operator = ImputeOperator(self.session.client(budget), **self._operator_kwargs(budget))
            return operator.run(validation_data, strategy=candidate.name, n_examples=spec.n_examples)

        def score(result: ImputeResult) -> float:
            return exact_match_accuracy(result.predictions, validation_data.ground_truth)

        selector = StrategySelector(
            run_candidate=run_candidate,
            score=score,
            validation_size=validation_size,
            full_size=len(data.queries),
        )
        chosen = selector.select(
            candidates,
            budget_dollars=spec.budget_dollars,
            accuracy_target=spec.accuracy_target,
        )
        return chosen.candidate.name

    # -- filter -------------------------------------------------------------------

    def filter(
        self, spec: FilterSpec, *, budget: Budget | BudgetLease | None = None
    ) -> FilterResult:
        """Execute a filter spec, applying conjunctive predicates in order.

        A multi-predicate (fused) spec checks each predicate over the
        survivors of the previous one, so later predicates never spend calls
        on items an earlier predicate already rejected.
        """
        spec.validate()
        strategy = spec.strategy if spec.strategy != "auto" else "per_item"
        options = dict(spec.strategy_options)
        survivors = [str(item) for item in spec.items]
        usage = Usage()
        cost = 0.0
        votes = 0
        decisions = {item: True for item in survivors}
        result: FilterResult | None = None
        for predicate in spec.all_predicates:
            if not survivors:
                break
            operator = FilterOperator(
                self.session.client(budget), predicate, **self._operator_kwargs(budget)
            )
            result = operator.run(survivors, strategy=strategy, **options)
            for item in survivors:
                decisions[item] = result.decisions.get(item, False)
            survivors = list(result.kept)
            usage.add(result.usage)
            cost += result.cost
            votes += result.votes_used
        merged = FilterResult(
            strategy=strategy, kept=survivors, decisions=decisions, votes_used=votes
        )
        merged.usage = usage
        merged.cost = cost
        if result is not None:
            merged.metadata = dict(result.metadata)
        merged.metadata["predicates"] = list(spec.all_predicates)
        return merged

    # -- categorize ---------------------------------------------------------------

    def categorize(
        self, spec: CategorizeSpec, *, budget: Budget | BudgetLease | None = None
    ) -> CategorizeResult:
        """Execute a categorize spec."""
        spec.validate()
        strategy = spec.strategy if spec.strategy != "auto" else "per_item"
        operator = CategorizeOperator(
            self.session.client(budget), list(spec.categories), **self._operator_kwargs(budget)
        )
        return operator.run(list(spec.items), strategy=strategy, **dict(spec.strategy_options))

    # -- top-k --------------------------------------------------------------------

    def top_k(
        self, spec: TopKSpec, *, budget: Budget | BudgetLease | None = None
    ) -> TopKResult:
        """Execute a top-k spec."""
        spec.validate()
        strategy = (
            spec.strategy if spec.strategy != "auto" else "hybrid_rating_comparison"
        )
        operator = TopKOperator(
            self.session.client(budget), spec.criterion, **self._operator_kwargs(budget)
        )
        return operator.run(
            list(spec.items), k=spec.k, strategy=strategy, **dict(spec.strategy_options)
        )

    # -- join ---------------------------------------------------------------------

    def join(
        self, spec: JoinSpec, *, budget: Budget | BudgetLease | None = None
    ) -> JoinResult:
        """Execute a join spec."""
        spec.validate()
        strategy = spec.strategy if spec.strategy != "auto" else "blocked"
        operator = JoinOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.run(
            list(spec.left), list(spec.right), strategy=strategy, **dict(spec.strategy_options)
        )

    # -- cluster ------------------------------------------------------------------

    def cluster(
        self, spec: ClusterSpec, *, budget: Budget | BudgetLease | None = None
    ) -> ClusterResult:
        """Execute a cluster spec."""
        spec.validate()
        strategy = spec.strategy if spec.strategy != "auto" else "two_phase"
        operator = ClusterOperator(self.session.client(budget), **self._operator_kwargs(budget))
        return operator.run(list(spec.items), strategy=strategy, **dict(spec.strategy_options))

    # -- pipelines ----------------------------------------------------------------

    def run_spec(
        self, spec: TaskSpec, *, budget: Budget | BudgetLease | None = None
    ) -> Any:
        """Execute any supported task spec, dispatching on its type."""
        if isinstance(spec, SortSpec):
            return self.sort(spec, budget=budget)
        if isinstance(spec, ResolveSpec):
            return self.resolve(spec, budget=budget)
        if isinstance(spec, ImputeSpec):
            return self.impute(spec, budget=budget)
        if isinstance(spec, FilterSpec):
            return self.filter(spec, budget=budget)
        if isinstance(spec, CategorizeSpec):
            return self.categorize(spec, budget=budget)
        if isinstance(spec, TopKSpec):
            return self.top_k(spec, budget=budget)
        if isinstance(spec, JoinSpec):
            return self.join(spec, budget=budget)
        if isinstance(spec, ClusterSpec):
            return self.cluster(spec, budget=budget)
        raise SpecError(f"cannot execute spec type {type(spec).__name__}")

    def planner(self, model: str | None = None) -> CostPlanner:
        """A cost planner for ``model`` (defaults to the engine's model)."""
        return CostPlanner(
            model or self.default_model or self.session.config.chat_model,
            registry=self.session.registry,
        )

    def quote_pipeline(self, pipeline: PipelineSpec) -> PipelineQuote:
        """Pre-flight quote for a pipeline: per-step estimates plus totals."""
        return self.planner().quote_pipeline(pipeline)

    def run_pipeline(
        self,
        pipeline: PipelineSpec | Workflow,
        *,
        quote: PipelineQuote | None = None,
        max_concurrency: int | None = None,
    ) -> WorkflowReport:
        """Run a declarative pipeline (or a pre-built workflow) as a DAG.

        Independent steps run concurrently on the session's executor; spec
        steps are executed by this engine under per-step budget leases
        apportioned from whatever remains of the session budget, weighted by
        the pre-flight quote.  When no ``quote`` is passed and ``pipeline``
        is a spec, one is computed automatically and attached to the report.

        Args:
            pipeline: a :class:`~repro.core.spec.PipelineSpec`, or a
                :class:`~repro.core.workflow.Workflow` built by hand.
            quote: optional pre-computed quote (avoids re-estimating).
            max_concurrency: scheduler pool size for independent steps;
                defaults to the session's ``max_concurrency``.
        """
        if isinstance(pipeline, Workflow):
            workflow = pipeline
        else:
            workflow = Workflow.from_pipeline(pipeline)
            if quote is None:
                quote = self.quote_pipeline(pipeline)
        return workflow.execute(
            self.session,
            max_concurrency=max_concurrency,
            spec_runner=self._run_pipeline_step,
            quote=quote,
        )

    def _run_pipeline_step(
        self,
        step: WorkflowStep,
        inputs: Mapping[str, Any],
        lease: BudgetLease | None,
    ) -> Any:
        task = step.task
        if callable(task) and not isinstance(task, TaskSpec):
            task = task(inputs)
        if not isinstance(task, TaskSpec):
            raise SpecError(
                f"pipeline step {step.name!r} produced {type(task).__name__}, expected a TaskSpec"
            )
        try:
            task.validate()
        except SpecError as exc:
            # A factory-built spec cannot be checked at compile time; name the
            # step here so a run-time failure (e.g. an upstream filter left no
            # items) is attributable without digging through the DAG.
            raise SpecError(f"pipeline step {step.name!r}: {exc}") from exc
        return self.run_spec(task, budget=lease)
