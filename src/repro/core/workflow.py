"""DAG pipeline engine: dependency-scheduled workflows over one session.

A workflow is a set of named steps connected by ``depends_on`` edges.  The
scheduler topologically sorts the graph into *waves* of mutually independent
steps, runs each wave through the session's
:class:`~repro.core.executor.BatchExecutor` (so independent branches overlap
in wall-clock time when ``max_concurrency > 1``), and hands every step the
results of its transitive dependencies.  One
:class:`~repro.core.session.PromptSession` — one cache, one tracker, one
budget — spans the whole pipeline.

Steps come in two kinds:

* **Callable steps** (:meth:`Workflow.add_step`) — ``(session, inputs) ->
  result``, the original API.  Calling ``add_step`` without ``depends_on``
  chains the step after the previous one, so the legacy linear workflow is
  just the degenerate chain DAG and keeps its exact semantics.
* **Spec steps** (:meth:`Workflow.add_task`, or declaratively via a
  :class:`~repro.core.spec.PipelineSpec`) — an operator spec (``SortSpec``,
  ``ResolveSpec``, ``ImputeSpec``, ...) or a factory building one from
  upstream results.  These are executed by the engine
  (:meth:`~repro.core.engine.DeclarativeEngine.run_pipeline`), which can
  quote the pipeline a priori and apportion the budget per step.

Budget semantics: before each round the scheduler checks the budget (the
session budget, or a tighter workflow-level ``budget_dollars`` lease) and
splits the remaining dollars over the still-pending spec steps (weighted by
the pre-flight quote when one is supplied, equally otherwise; run-only
callable steps never charge the budget and get no share).  Each spec step
runs under a :class:`~repro.core.budget.BudgetLease` capped at its share, so
one runaway step cannot starve its siblings: a step that exhausts its lease
is recorded as ``"stopped"`` and only its dependents are blocked, while
independent branches keep running on their own allocations.  Once the shared
budget itself is gone the pipeline *stops cleanly*: completed results are
kept, never-dispatched steps are reported as skipped, and the report (not an
exception) says why.

Determinism: waves, step order, and each step's input dict depend only on
the declared graph, never on thread timing; at temperature 0 a DAG run is
element-wise identical to the linear chain (the equivalence suite in
``tests/core/test_pipeline.py`` asserts this at concurrency 1 and 4).
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ContextManager, Mapping

from repro.core.budget import BudgetLease
from repro.core.dag import topological_waves, transitive_dependencies
from repro.core.session import BudgetScopedSession, PromptSession
from repro.core.spec import PipelineSpec, SpecFactory, TaskSpec
from repro.exceptions import BudgetExceededError, SpecError
from repro.operators.base import OperatorResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planner import PipelineQuote

#: A spec-step executor: ``(step, inputs, lease) -> result``.  Supplied by
#: the engine; plain sessions cannot run operator specs themselves.
SpecRunner = Callable[["WorkflowStep", Mapping[str, Any], BudgetLease | None], Any]

#: A step-completion observer: called with each step's :class:`StepReport`
#: the moment the step settles (``completed`` or ``stopped``).  The service
#: layer streams these to polling clients.
StepObserver = Callable[["StepReport"], None]


@dataclass
class WorkflowStep:
    """One step of a workflow.

    Attributes:
        name: unique step name; dependents read this step's result by name.
        run: callable ``(session, inputs) -> result`` (callable steps only).
        task: operator spec or spec factory (spec steps only).
        depends_on: names of the steps this one consumes.
        description: human-readable summary, used in reports.
    """

    name: str
    run: Callable[[PromptSession, dict[str, Any]], Any] | None = None
    task: TaskSpec | SpecFactory | None = None
    depends_on: tuple[str, ...] = ()
    description: str = ""


@dataclass
class StepReport:
    """Execution record of one step.

    Attributes:
        name: the step's name.
        status: ``"completed"``, ``"stopped"`` (hit the budget mid-step), or
            ``"skipped"`` (never dispatched).
        cost: dollars the step reported (spec steps only; callable steps
            appear as 0 because concurrent siblings make a global-tracker
            delta unattributable).  A restored step reports the *original*
            run's cost — what the checkpoint saved, not new spend.
        calls: LLM calls the step reported (spec steps only).
        allocation: the budget share apportioned to the step, if any.
        description: the step's human-readable summary, copied from the spec.
        restored: the result was served from a checkpoint store — this run
            made no LLM calls for the step (the report's ``total_*`` deltas
            already reflect that).
        span_id: id of the step's span in the session's span tree (None when
            the step never dispatched or span tracing is disabled); streamed
            in SSE step events so clients can join events to spans/traces.
    """

    name: str
    status: str = "skipped"
    cost: float = 0.0
    calls: int = 0
    allocation: float | None = None
    description: str = ""
    restored: bool = False
    span_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-shaped view (what the service's job endpoints return)."""
        return {
            "name": self.name,
            "status": self.status,
            "cost": self.cost,
            "calls": self.calls,
            "allocation": self.allocation,
            "description": self.description,
            "restored": self.restored,
            "span_id": self.span_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StepReport":
        allocation = data.get("allocation")
        span_id = data.get("span_id")
        return cls(
            name=str(data.get("name", "")),
            status=str(data.get("status", "skipped")),
            cost=float(data.get("cost", 0.0)),
            calls=int(data.get("calls", 0)),
            allocation=None if allocation is None else float(allocation),
            description=str(data.get("description", "")),
            restored=bool(data.get("restored", False)),
            span_id=None if span_id is None else int(span_id),
        )


@dataclass
class WorkflowReport:
    """Execution record of a workflow run.

    ``total_*`` fields are deltas over this run only — a session reused
    across several workflows reports each run's own usage, not the
    session-lifetime totals.
    """

    results: dict[str, Any] = field(default_factory=dict)
    step_order: list[str] = field(default_factory=list)
    waves: list[list[str]] = field(default_factory=list)
    step_reports: dict[str, StepReport] = field(default_factory=dict)
    total_cost: float = 0.0
    total_prompt_tokens: int = 0
    total_completion_tokens: int = 0
    total_calls: int = 0
    stopped_early: bool = False
    stop_reason: str = ""
    quote: "PipelineQuote | None" = None
    #: Root span id of this run's pipeline span (None when untraced).
    span_id: int | None = None
    #: Operational warnings (trace-ring drops, partial observability) —
    #: advisory, never a failure.
    notes: list[str] = field(default_factory=list)
    #: The run's span subtree (pipeline→wave→step→call), collected by the
    #: engine after the run for `render_timeline(report)`.  Runtime-only:
    #: excluded from serialization and equality (persisted spans live in the
    #: store's `spans` table instead).
    spans: list = field(default_factory=list, compare=False, repr=False)

    @property
    def completed_steps(self) -> list[str]:
        return [name for name, step in self.step_reports.items() if step.status == "completed"]

    @property
    def stopped_steps(self) -> list[str]:
        """Steps that ran and spent money until the budget cut them off."""
        return [name for name, step in self.step_reports.items() if step.status == "stopped"]

    @property
    def skipped_steps(self) -> list[str]:
        """Steps that were never dispatched (safe to re-run from scratch)."""
        return [name for name, step in self.step_reports.items() if step.status == "skipped"]

    @property
    def restored_steps(self) -> list[str]:
        """Steps whose results came from a checkpoint store (zero new calls)."""
        return [name for name, step in self.step_reports.items() if step.restored]

    def to_dict(self, *, include_results: bool = True) -> dict[str, Any]:
        """A JSON-shaped view of the whole run.

        Step results are encoded through the checkpoint codecs of
        :mod:`repro.store.checkpoint` — the same wire form resumable
        pipelines already rely on — so a service client polling a finished
        job reads results identical to an in-process run's.  Results without
        a codec (callable steps returning arbitrary objects) are listed
        under ``unserialized_results`` instead of failing the whole report.
        """
        from repro.store.checkpoint import encode_result  # breaks import cycle

        encoded: dict[str, Any] = {}
        unserialized: list[str] = []
        if include_results:
            for name, value in self.results.items():
                if isinstance(value, OperatorResult):
                    try:
                        encoded[name] = json.loads(encode_result(value))
                        continue
                    except Exception:
                        pass
                unserialized.append(name)
        return {
            "results": encoded,
            "unserialized_results": unserialized,
            "step_order": list(self.step_order),
            "waves": [list(wave) for wave in self.waves],
            "step_reports": {
                name: report.to_dict() for name, report in self.step_reports.items()
            },
            "total_cost": self.total_cost,
            "total_prompt_tokens": self.total_prompt_tokens,
            "total_completion_tokens": self.total_completion_tokens,
            "total_calls": self.total_calls,
            "stopped_early": self.stopped_early,
            "stop_reason": self.stop_reason,
            "quote": None if self.quote is None else self.quote.to_dict(),
            "span_id": self.span_id,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowReport":
        """Rebuild a report (results decoded through the checkpoint codecs)."""
        from repro.core.planner import PipelineQuote
        from repro.store.checkpoint import decode_result  # breaks import cycle

        results: dict[str, Any] = {}
        for name, payload in dict(data.get("results", {})).items():
            decoded = decode_result(json.dumps(payload))
            if decoded is not None:
                results[name] = decoded
        quote_data = data.get("quote")
        return cls(
            results=results,
            step_order=[str(name) for name in data.get("step_order", ())],
            waves=[[str(name) for name in wave] for wave in data.get("waves", ())],
            step_reports={
                str(name): StepReport.from_dict(report)
                for name, report in dict(data.get("step_reports", {})).items()
            },
            total_cost=float(data.get("total_cost", 0.0)),
            total_prompt_tokens=int(data.get("total_prompt_tokens", 0)),
            total_completion_tokens=int(data.get("total_completion_tokens", 0)),
            total_calls=int(data.get("total_calls", 0)),
            stopped_early=bool(data.get("stopped_early", False)),
            stop_reason=str(data.get("stop_reason", "")),
            quote=None if quote_data is None else PipelineQuote.from_dict(quote_data),
            span_id=(
                None if data.get("span_id") is None else int(data["span_id"])
            ),
            notes=[str(note) for note in data.get("notes", ())],
        )


class Workflow:
    """A named DAG of steps sharing one session.

    ``budget_dollars`` optionally caps this workflow's spend independently of
    the session's own limit: at execution the cap becomes a
    :class:`~repro.core.budget.BudgetLease` over the session budget, so the
    scheduler apportions and stops against whichever is tighter.
    """

    def __init__(self, name: str = "workflow", *, budget_dollars: float | None = None) -> None:
        self.name = name
        self.budget_dollars = budget_dollars
        self._steps: list[WorkflowStep] = []

    # -- construction -----------------------------------------------------------

    def _add(self, step: WorkflowStep) -> "Workflow":
        if any(existing.name == step.name for existing in self._steps):
            raise SpecError(f"duplicate workflow step name: {step.name!r}")
        self._steps.append(step)
        return self

    def add_step(
        self,
        name: str,
        run: Callable[[PromptSession, dict[str, Any]], Any],
        *,
        depends_on: tuple[str, ...] | None = None,
        description: str = "",
    ) -> "Workflow":
        """Add a callable step; returns ``self`` so calls can be chained.

        Without ``depends_on`` the step chains after the previously added
        step (the legacy linear API); pass an explicit tuple — possibly
        empty — to place the step anywhere in the DAG.
        """
        if depends_on is None:
            depends_on = (self._steps[-1].name,) if self._steps else ()
        return self._add(
            WorkflowStep(
                name=name, run=run, depends_on=tuple(depends_on), description=description
            )
        )

    def add_task(
        self,
        name: str,
        task: TaskSpec | SpecFactory,
        *,
        depends_on: tuple[str, ...] = (),
        description: str = "",
    ) -> "Workflow":
        """Add a spec step executed by the engine (see module docstring)."""
        return self._add(
            WorkflowStep(
                name=name, task=task, depends_on=tuple(depends_on), description=description
            )
        )

    @classmethod
    def from_pipeline(cls, pipeline: PipelineSpec) -> "Workflow":
        """Build a scheduled workflow from a declarative pipeline spec."""
        pipeline.validate()
        workflow = cls(pipeline.name, budget_dollars=pipeline.budget_dollars)
        for step in pipeline.steps:
            workflow._add(
                WorkflowStep(
                    name=step.name,
                    run=step.run,
                    task=step.task,
                    depends_on=tuple(step.depends_on),
                    description=step.description,
                )
            )
        return workflow

    @property
    def steps(self) -> list[WorkflowStep]:
        return list(self._steps)

    def waves(self) -> list[list[str]]:
        """The wave decomposition the scheduler will execute."""
        return topological_waves({step.name: list(step.depends_on) for step in self._steps})

    # -- execution --------------------------------------------------------------

    def execute(
        self,
        session: PromptSession,
        *,
        max_concurrency: int | None = None,
        spec_runner: SpecRunner | None = None,
        quote: "PipelineQuote | None" = None,
        scheduler: str = "threads",
        on_step: StepObserver | None = None,
    ) -> WorkflowReport:
        """Run the DAG against ``session``, wave by wave.

        Args:
            session: shared execution context (cache, tracker, budget).
            max_concurrency: scheduler thread-pool size for independent
                steps; defaults to the session's ``max_concurrency``.
            spec_runner: executes spec steps (the engine supplies this —
                see :meth:`DeclarativeEngine.run_pipeline`); required only
                when the workflow contains spec steps.
            quote: optional pre-flight quote whose per-step dollar estimates
                weight the budget apportionment.
            scheduler: ``"threads"`` (the default) runs each wave through
                the session's thread-pool :class:`~repro.core.executor.
                BatchExecutor`; ``"async"`` drives its own event loop and
                runs the waves through the asyncio-native scheduler (see
                :meth:`execute_async` — call that directly from inside an
                already-running loop).
            on_step: optional observer called with each step's
                :class:`StepReport` as the step settles; observer errors are
                swallowed (an observer must never sink the run).
        """
        if scheduler == "async":
            import asyncio

            return asyncio.run(
                self.execute_async(
                    session,
                    max_concurrency=max_concurrency,
                    spec_runner=spec_runner,
                    quote=quote,
                    on_step=on_step,
                )
            )
        if scheduler != "threads":
            raise SpecError(f"unknown scheduler {scheduler!r} (expected 'threads' or 'async')")
        state = self._prepare_execution(session, spec_runner, quote)
        executor = session.batch_executor(
            max_concurrency=max_concurrency, budget=state.budget
        )
        with self._pipeline_span(state) as pipeline_span:
            if pipeline_span is not None:
                state.report.span_id = pipeline_span.span_id
            round_index = 0
            while state.pending:
                planned = self._plan_round(state, session, spec_runner, quote)
                if planned is None:
                    break
                runnable, thunks, leases = planned
                # The wave span is ambient while the executor submits the
                # thunks (each submission copies the current context), so
                # step spans opened inside worker threads parent correctly.
                with self._wave_span(state, round_index, runnable):
                    outcomes = executor.map(thunks)
                round_index += 1
                progressed, failure = self._absorb_outcomes(
                    state, runnable, outcomes, leases, on_step
                )
                if failure is not None:
                    self._finalize(
                        state.report, session, state.usage_before, state.cost_before
                    )
                    raise failure
                if not progressed:
                    break  # defensive: nothing completed or stopped this round
        self._finalize(state.report, session, state.usage_before, state.cost_before)
        return state.report

    async def execute_async(
        self,
        session: PromptSession,
        *,
        max_concurrency: int | None = None,
        spec_runner: SpecRunner | None = None,
        quote: "PipelineQuote | None" = None,
        on_step: StepObserver | None = None,
    ) -> WorkflowReport:
        """The asyncio-native scheduler: identical semantics, awaited waves.

        Each round of runnable steps goes through the session's
        :class:`~repro.core.executor.AsyncBatchExecutor`: steps whose
        ``run`` is a coroutine function are awaited natively on the loop
        (zero extra threads), while sync steps — including all engine-run
        spec steps — are bridged into worker threads so a wave of blocking
        operator runs still overlaps.  Waves, inputs, budget apportionment,
        lease containment, and the final report are computed by the same
        code the thread scheduler uses, so at temperature 0 the two
        schedulers produce element-wise identical reports.
        """
        state = self._prepare_execution(session, spec_runner, quote)
        executor = session.async_batch_executor(
            max_concurrency=max_concurrency, budget=state.budget
        )
        with self._pipeline_span(state) as pipeline_span:
            if pipeline_span is not None:
                state.report.span_id = pipeline_span.span_id
            round_index = 0
            while state.pending:
                planned = self._plan_round(state, session, spec_runner, quote)
                if planned is None:
                    break
                runnable, thunks, leases = planned
                # asyncio tasks copy the ambient context at creation, so the
                # wave span parents step spans exactly like the thread path.
                with self._wave_span(state, round_index, runnable):
                    outcomes = await executor.map(thunks)
                round_index += 1
                progressed, failure = self._absorb_outcomes(
                    state, runnable, outcomes, leases, on_step
                )
                if failure is not None:
                    self._finalize(
                        state.report, session, state.usage_before, state.cost_before
                    )
                    raise failure
                if not progressed:
                    break  # defensive: nothing completed or stopped this round
        self._finalize(state.report, session, state.usage_before, state.cost_before)
        return state.report

    # -- internals ---------------------------------------------------------------

    def _pipeline_span(self, state: "_ExecutionState") -> ContextManager[Any]:
        """The run's root span, or a null context when tracing is off."""
        tracker = state.spans
        if tracker is None or not getattr(tracker, "enabled", False):
            return nullcontext(None)
        return tracker.span("pipeline", self.name, steps=len(self._steps))

    @staticmethod
    def _wave_span(
        state: "_ExecutionState", round_index: int, runnable: list[str]
    ) -> ContextManager[Any]:
        tracker = state.spans
        if tracker is None or not getattr(tracker, "enabled", False):
            return nullcontext(None)
        return tracker.span("wave", f"wave {round_index}", steps=list(runnable))

    def _prepare_execution(
        self,
        session: PromptSession,
        spec_runner: SpecRunner | None,
        quote: "PipelineQuote | None",
    ) -> "_ExecutionState":
        """Validate the graph and build the state both schedulers share."""
        if not self._steps:
            raise SpecError(f"workflow {self.name!r} has no steps")
        dependencies = {step.name: list(step.depends_on) for step in self._steps}
        waves = topological_waves(dependencies)
        closures = transitive_dependencies(dependencies)
        steps_by_name = {step.name: step for step in self._steps}
        if spec_runner is None:
            spec_steps = [step.name for step in self._steps if step.task is not None]
            if spec_steps:
                raise SpecError(
                    f"workflow {self.name!r} contains spec steps {spec_steps} but no spec "
                    "runner; execute it through DeclarativeEngine.run_pipeline"
                )

        report = WorkflowReport(waves=waves, quote=quote)
        report.step_reports = {
            step.name: StepReport(name=step.name, description=step.description)
            for step in self._steps
        }

        budget = session.budget
        if self.budget_dollars is not None:
            # The workflow's own cap, enforced as a lease over the session
            # budget (binding even when the session budget is unlimited).
            budget = budget.lease(self.budget_dollars)
        return _ExecutionState(
            dependencies=dependencies,
            closures=closures,
            steps_by_name=steps_by_name,
            report=report,
            budget=budget,
            pending=[name for wave in waves for name in wave],
            # Report this run's usage, not session-lifetime totals.
            usage_before=session.tracker.usage,
            cost_before=session.tracker.cost(),
            # getattr: any session-like object works; only real sessions
            # carry the observability surface.
            spans=getattr(session, "spans", None),
            instruments=getattr(session, "instruments", None),
        )

    def _plan_round(
        self,
        state: "_ExecutionState",
        session: PromptSession,
        spec_runner: SpecRunner | None,
        quote: "PipelineQuote | None",
    ) -> tuple[list[str], list[Callable[[], Any]], dict[str, BudgetLease]] | None:
        """Pick this round's runnable steps and build their thunks.

        Returns ``None`` when the run is over: the shared budget is gone
        (recorded on the report) or everything left is downstream of a
        stopped step.
        """
        report, budget, pending = state.report, state.budget, state.pending
        if not budget.unlimited and budget.remaining <= 0.0:
            report.stopped_early = True
            if not report.stop_reason:
                report.stop_reason = (
                    f"budget exhausted before step(s) "
                    f"{', '.join(repr(n) for n in pending)}: "
                    f"spent ${budget.spent:.6f} of ${budget.limit:.6f}"
                )
            return None
        # The next round: every pending step whose dependencies all
        # completed.  With no failures this dispatches exactly the
        # topological waves; after a lease stop, unaffected independent
        # branches keep running while the stopped step's dependents stay
        # blocked (and are reported as skipped below).
        runnable = [
            name
            for name in pending
            if all(dep in report.results for dep in state.dependencies[name])
        ]
        if not runnable:
            return None  # the rest are downstream of a stopped step

        # Steps downstream of a stopped step can never run, so they must
        # not reserve a share of the remaining money — only steps whose
        # whole dependency closure is completed or still pending count.
        reachable = [
            name
            for name in pending
            if all(dep in report.results or dep in pending for dep in state.closures[name])
        ]
        allocations = self._apportion(reachable, state.steps_by_name, budget, quote)
        thunks: list[Callable[[], Any]] = []
        leases: dict[str, BudgetLease] = {}
        for name in runnable:
            step = state.steps_by_name[name]
            inputs = {dep: report.results[dep] for dep in state.closures[name]}
            allocation = allocations.get(name)
            report.step_reports[name].allocation = allocation
            thunks.append(
                self._make_thunk(
                    step, session, inputs, budget, allocation, spec_runner, leases, state
                )
            )
        return runnable, thunks, leases

    @staticmethod
    def _absorb_outcomes(
        state: "_ExecutionState",
        runnable: list[str],
        outcomes: list[Any],
        leases: dict[str, BudgetLease],
        on_step: StepObserver | None = None,
    ) -> tuple[bool, BaseException | None]:
        """Fold one round's outcomes into the report; (progressed, failure)."""
        report, pending = state.report, state.pending
        progressed = False
        failure: BaseException | None = None
        settled: list[StepReport] = []
        for name, outcome in zip(runnable, outcomes):
            step_report = report.step_reports[name]
            if not outcome.skipped:
                step_report.span_id = state.step_spans.get(name)
            if outcome.ok:
                step_report.status = "completed"
                report.results[name] = outcome.value
                report.step_order.append(name)
                if isinstance(outcome.value, OperatorResult):
                    step_report.cost = outcome.value.cost
                    step_report.calls = outcome.value.usage.calls
                pending.remove(name)
                progressed = True
                settled.append(step_report)
            elif outcome.skipped:
                # Never dispatched this round (a sibling failed first, or
                # the budget died before the step started); stays pending —
                # the next _plan_round either retries it or records the
                # budget stop for the whole remainder.
                continue
            elif isinstance(outcome.error, BudgetExceededError):
                # The step ran out of money (its lease or the shared
                # budget).  Contain the damage to the step: its
                # dependents are blocked, but independent branches keep
                # their own allocations and continue.
                step_report.status = "stopped"
                if name in leases:
                    # The partial spend before the cut-off, measured by
                    # the step's own lease.
                    step_report.cost = leases[name].spent
                report.stopped_early = True
                if not report.stop_reason:
                    report.stop_reason = str(outcome.error)
                pending.remove(name)
                progressed = True
                settled.append(step_report)
            else:
                failure = failure or outcome.error
        if on_step is not None:
            for step_report in settled:
                try:
                    on_step(step_report)
                except Exception as exc:
                    # An observer must never sink the run it is watching —
                    # but it must not fail silently either: count it and
                    # pin the error class on the step's span.
                    if state.instruments is not None:
                        state.instruments.note_observer_error()
                    if state.spans is not None and step_report.span_id is not None:
                        state.spans.annotate(
                            step_report.span_id, observer_error=type(exc).__name__
                        )
        return progressed, failure

    @staticmethod
    def _make_thunk(
        step: WorkflowStep,
        session: PromptSession,
        inputs: dict[str, Any],
        budget: Any,
        allocation: float | None,
        spec_runner: SpecRunner | None,
        leases: dict[str, BudgetLease],
        state: "_ExecutionState",
    ) -> Callable[[], Any]:
        inner: Callable[[], Any]
        if step.task is not None:
            assert spec_runner is not None  # checked before scheduling
            if allocation is None:
                inner = lambda: spec_runner(step, inputs, None)  # noqa: E731
            else:
                # The lease is taken when the step *starts*, not when the
                # wave is built, and the engine charges the step's calls
                # through it — so it measures exactly this step's spending,
                # sequential or concurrent.  It is parked in ``leases`` so a
                # budget-stopped step's partial spend still reaches its
                # report.
                def run_with_lease() -> Any:
                    lease = budget.lease(allocation)
                    leases[step.name] = lease
                    return spec_runner(step, inputs, lease)

                inner = run_with_lease
        else:
            assert step.run is not None
            if budget is not session.budget:
                # A workflow-level budget_dollars cap: route even a callable
                # step's raw session calls through the cap's lease, or they
                # would silently bypass it.
                scoped = BudgetScopedSession(session, budget)
                inner = lambda: step.run(scoped, inputs)  # noqa: E731
            else:
                inner = lambda: step.run(session, inputs)  # noqa: E731

        tracker = state.spans
        if tracker is None or not getattr(tracker, "enabled", False):
            return inner

        # The step span opens in the worker that actually runs the thunk
        # (its ambient parent is the wave span copied at submission), and
        # its id is parked on the state so _absorb_outcomes can stamp it
        # onto the StepReport — the thunk may run on any thread.
        def traced() -> Any:
            with tracker.span(
                "step", step.name, depends_on=list(step.depends_on)
            ) as span:
                if span is not None:
                    state.step_spans[step.name] = span.span_id
                return inner()

        return traced

    @staticmethod
    def _apportion(
        pending: list[str],
        steps_by_name: Mapping[str, WorkflowStep],
        budget: Any,
        quote: "PipelineQuote | None",
    ) -> dict[str, float]:
        """Split the remaining dollars across the still-pending spec steps.

        Run-only callable steps never charge a lease, so they get no share
        (reserving money for them would starve their spec siblings).  Spec
        steps are weighted by the quote's per-step estimates when available;
        a spec step with no quoted estimate (a run-time factory) gets the
        average quoted weight so it is neither starved nor favoured.
        """
        if budget.unlimited:
            return {}
        spenders = [name for name in pending if steps_by_name[name].task is not None]
        if not spenders:
            return {}
        estimates = quote.steps if quote is not None else {}
        quoted = [estimates[name].dollars for name in spenders if name in estimates]
        fallback = (sum(quoted) / len(quoted)) if quoted else 1.0
        weights = {
            name: estimates[name].dollars if name in estimates else fallback
            for name in spenders
        }
        total = sum(weights.values())
        if total <= 0.0:
            weights = {name: 1.0 for name in spenders}
            total = float(len(spenders))
        remaining = budget.remaining
        return {name: remaining * weight / total for name, weight in weights.items()}

    @staticmethod
    def _finalize(
        report: WorkflowReport, session: PromptSession, usage_before: Any, cost_before: float
    ) -> None:
        usage_after = session.tracker.usage
        report.total_cost = session.tracker.cost() - cost_before
        report.total_prompt_tokens = usage_after.prompt_tokens - usage_before.prompt_tokens
        report.total_completion_tokens = (
            usage_after.completion_tokens - usage_before.completion_tokens
        )
        report.total_calls = usage_after.calls - usage_before.calls


@dataclass
class _ExecutionState:
    """Mutable per-run state shared by the thread and async schedulers.

    Bundling it keeps :meth:`Workflow._plan_round` and
    :meth:`Workflow._absorb_outcomes` identical across the two drivers, which
    is what guarantees the schedulers stay semantically equivalent.
    """

    dependencies: dict[str, list[str]]
    closures: Mapping[str, Any]
    steps_by_name: dict[str, WorkflowStep]
    report: WorkflowReport
    budget: Any
    pending: list[str]
    usage_before: Any
    cost_before: float
    #: The session's SpanTracker / SessionInstruments (None for bare
    #: session-like objects without the observability surface).
    spans: Any = None
    instruments: Any = None
    #: step name -> step span id, filled by the traced thunks as they run.
    step_spans: dict[str, int] = field(default_factory=dict)
