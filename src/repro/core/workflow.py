"""Multi-step workflows over declarative operators.

A workflow is an ordered list of named steps; each step receives the results
of the previous steps and the shared :class:`~repro.core.session.PromptSession`
and returns an arbitrary result.  The engine uses workflows to chain, e.g., a
blocking step, a pairwise resolution step, and a consistency-repair step,
while a single budget and tracker span all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.session import PromptSession
from repro.exceptions import SpecError


@dataclass
class WorkflowStep:
    """One step of a workflow.

    Attributes:
        name: unique step name; later steps read earlier results by name.
        run: callable ``(session, results_so_far) -> result``.
        description: human-readable summary, used in reports.
    """

    name: str
    run: Callable[[PromptSession, dict[str, Any]], Any]
    description: str = ""


@dataclass
class WorkflowReport:
    """Execution record of a workflow run."""

    results: dict[str, Any] = field(default_factory=dict)
    step_order: list[str] = field(default_factory=list)
    total_cost: float = 0.0
    total_prompt_tokens: int = 0
    total_completion_tokens: int = 0


class Workflow:
    """An ordered, named sequence of steps sharing one session."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._steps: list[WorkflowStep] = []

    def add_step(
        self,
        name: str,
        run: Callable[[PromptSession, dict[str, Any]], Any],
        *,
        description: str = "",
    ) -> "Workflow":
        """Append a step; returns ``self`` so calls can be chained."""
        if any(step.name == name for step in self._steps):
            raise SpecError(f"duplicate workflow step name: {name!r}")
        self._steps.append(WorkflowStep(name=name, run=run, description=description))
        return self

    @property
    def steps(self) -> list[WorkflowStep]:
        return list(self._steps)

    def execute(self, session: PromptSession) -> WorkflowReport:
        """Run every step in order against ``session``."""
        if not self._steps:
            raise SpecError(f"workflow {self.name!r} has no steps")
        report = WorkflowReport()
        for step in self._steps:
            report.results[step.name] = step.run(session, dict(report.results))
            report.step_order.append(step.name)
        usage = session.tracker.usage
        report.total_cost = session.tracker.cost()
        report.total_prompt_tokens = usage.prompt_tokens
        report.total_completion_tokens = usage.completion_tokens
        return report
