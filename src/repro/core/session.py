"""Prompt sessions: the bundle of client, registry, cache, tracker, and budget.

A :class:`PromptSession` is what the engine hands to every operator it
constructs, so that all LLM traffic in a workflow shares one usage tracker,
one response cache, and one budget — regardless of how many operators or
strategies the workflow touches.

Sessions carry a ``max_concurrency`` knob: operators constructed by the
engine thread their independent unit tasks through a
:class:`~repro.core.executor.BatchExecutor` of that size, so one setting
controls the parallelism of every LLM-bound loop in the workflow.  The
session's cache, tracker, and budget are all thread-safe, so the concurrent
path never loses accounting updates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import DEFAULT_CONFIG, ReproConfig
from repro.core.budget import Budget, BudgetLease
from repro.core.executor import AsyncBatchExecutor, BatchExecutor
from repro.core.governor import ConcurrencyGovernor
from repro.core.physical import RuntimeStats
from repro.exceptions import BudgetExceededError, StoreError
from repro.llm.base import (
    LLMClient,
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    call_complete_batch,
)
from repro.llm.cache import CachedClient, ResponseCache, ResponseCacheLike
from repro.llm.registry import ModelRegistry, default_registry
from repro.llm.tracker import UsageTracker
from repro.obs import MetricsRegistry, SessionInstruments, SpanTracker
from repro.tokenizer.cost import CostModel
from repro.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import Store


@dataclass
class SessionClient:
    """LLM client view bound to a session: cached, tracked, budget-enforced.

    ``budget`` optionally redirects where calls are *charged*: a pipeline
    step's client charges its per-step :class:`BudgetLease` (which forwards
    every dollar to the session budget), so the lease measures exactly the
    step's own spending even while sibling steps run concurrently.
    """

    session: "PromptSession"
    budget: Budget | BudgetLease | None = None

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        return self.session.complete(
            prompt,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=self.budget,
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        return self.session.complete_batch(
            prompts,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=self.budget,
        )

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        return await self.session.acomplete(
            prompt,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=self.budget,
        )

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        return await self.session.acomplete_batch(
            prompts,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=self.budget,
        )

    @property
    def tracer(self) -> Tracer:
        """The session's call tracer (retry wrappers annotate through this)."""
        return self.session.tracer


class PromptSession:
    """Shared execution context for one declarative workflow.

    Args:
        client: the underlying LLM client (typically a :class:`SimulatedLLM`).
        registry: the model catalogue; defaults to the standard registry.
        budget: the monetary budget; defaults to unlimited.
        config: library configuration defaults.
        use_cache: whether identical temperature-0 prompts are deduplicated.
        max_concurrency: thread-pool size operators use for their independent
            unit tasks; 1 (the default) keeps everything sequential.
        governor: optional :class:`~repro.core.governor.ConcurrencyGovernor`
            every executor built from this session routes its dispatches
            through — one admission point (RPM/TPM quotas, in-flight cap,
            adaptive backoff) shared by the sync and async execution paths.
        store: optional durable :class:`~repro.store.Store`.  When given,
            the response cache lives in the store (temperature-0 calls are
            free across process lifetimes) and the saved workload profile —
            if one exists — is merged decay-weighted into this session's
            fresh :class:`RuntimeStats`, so the first quote is priced from
            the previous run's observations.
        profile_decay: weight applied to the loaded profile's observation
            counts (see :mod:`repro.store.profile`).
        metrics: optional shared :class:`~repro.obs.MetricsRegistry`; the
            multi-tenant service hands every tenant's session the same one
            so ``GET /metrics`` scrapes a single registry.  Defaults to a
            private registry per session.
        tenant_label: value of the ``tenant`` label on every metric series
            this session emits (empty for standalone sessions).
    """

    def __init__(
        self,
        client: LLMClient,
        *,
        registry: ModelRegistry | None = None,
        budget: Budget | None = None,
        config: ReproConfig = DEFAULT_CONFIG,
        use_cache: bool = True,
        max_concurrency: int = 1,
        governor: ConcurrencyGovernor | None = None,
        store: "Store | None" = None,
        profile_decay: float = 0.5,
        metrics: MetricsRegistry | None = None,
        tenant_label: str = "",
    ) -> None:
        self.registry = registry or default_registry()
        self.budget = budget or Budget()
        self.config = config
        self.max_concurrency = max_concurrency
        self.governor = governor
        self.cost_model: CostModel = self.registry.cost_model()
        self.tracker = UsageTracker(cost_model=self.cost_model)
        self.store = store
        self.cache: ResponseCacheLike = (
            store.response_cache() if store is not None else ResponseCache()
        )
        # Observed execution statistics (filter selectivities, dedup ratios,
        # per-strategy call counts).  The engine records into this after
        # every operator run; planners built from this session consume it so
        # later quotes are priced from what actually happened.  A store's
        # saved workload profile seeds it (decay-weighted) before anything
        # runs, so warm starts quote from history.
        self.stats = RuntimeStats()
        if store is not None:
            store.apply_profile(self.stats, decay=profile_decay)
        # Operational observability: one metric registry (possibly shared
        # across tenants), its per-tenant bound instruments, and the span
        # tree every pipeline/step/call of this session hangs off.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.instruments = SessionInstruments(self.metrics, tenant=tenant_label)
        self.spans = SpanTracker(store=store)
        if governor is not None:
            governor.bind_instruments(self.instruments)
        # One structured TraceRecord per call issued through this session;
        # flushed best-effort into the store's traces table when one exists.
        self.tracer = Tracer(store=store, on_drop=self.instruments.note_trace_dropped)
        self._client: LLMClient = CachedClient(client, self.cache) if use_cache else client
        self._raw_client = client

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> LLMResponse:
        """Issue one call through the session: cache, track, and charge it.

        ``budget`` redirects the charge (a :class:`BudgetLease` forwards
        every dollar to the session budget, so nothing is lost); by default
        the session's own budget is charged.
        """
        target = budget if budget is not None else self.budget
        model_name = model or self.config.chat_model
        start = time.perf_counter()
        try:
            response = self._client.complete(
                prompt, model=model_name, temperature=temperature, max_tokens=max_tokens
            )
        except Exception as exc:
            self._trace_failure(
                prompt,
                model_name,
                temperature,
                (time.perf_counter() - start) * 1000.0,
                exc,
            )
            raise
        return self._settle_completion(prompt, temperature, response, target, start)

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> LLMResponse:
        """Asyncio-native :meth:`complete`: identical tracing and charging.

        The call is awaited through the client stack's ``acomplete`` chain
        (sync-only clients are bridged into a worker thread); everything
        after the response — tracker, cost, trace record, budget charge — is
        the exact code path the sync method runs, so at temperature 0 the
        two are observably identical.
        """
        target = budget if budget is not None else self.budget
        model_name = model or self.config.chat_model
        start = time.perf_counter()
        try:
            response = await call_acomplete(
                self._client, prompt, model=model_name, temperature=temperature, max_tokens=max_tokens
            )
        except Exception as exc:
            self._trace_failure(
                prompt,
                model_name,
                temperature,
                (time.perf_counter() - start) * 1000.0,
                exc,
            )
            raise
        return self._settle_completion(prompt, temperature, response, target, start)

    def _settle_completion(
        self,
        prompt: str,
        temperature: float,
        response: LLMResponse,
        target: Budget | BudgetLease,
        start: float,
    ) -> LLMResponse:
        """Shared post-call path: track, price, trace, then charge."""
        duration_ms = (time.perf_counter() - start) * 1000.0
        self.tracker.record(response)
        priced = self.cost_model.has_model(response.model)
        cost = self.cost_model.cost(response.model, response.usage) if priced else 0.0
        # Trace before charging: the call happened (and is replayable) even
        # if charging it is what breaches the budget.
        self._trace_response(prompt, temperature, response, cost, duration_ms)
        if priced:
            target.charge(cost)
        self.instruments.note_budget_spent(self.budget.spent)
        return response

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> list[LLMResponse]:
        """Issue a whole batch through the session: cache, track, and charge it.

        The batch is dispatched as one unit, so the budget is checked up front
        and charged per response afterwards; callers that need a spend limit
        to interrupt a batch *between* unit tasks should dispatch through a
        :class:`~repro.core.executor.BatchExecutor` with the session budget
        attached (operators constructed by the engine do exactly that).
        """
        target = budget if budget is not None else self.budget
        if not target.unlimited and target.remaining <= 0.0:
            raise BudgetExceededError(target.spent, target.limit or 0.0)
        model_name = model or self.config.chat_model
        request_list = list(prompts)
        start = time.perf_counter()
        try:
            responses = call_complete_batch(
                self._client,
                request_list,
                model=model_name,
                temperature=temperature,
                max_tokens=max_tokens,
            )
        except Exception as exc:
            # The batch is one dispatch unit: which prompt failed (and which
            # succeeded before it) is not observable here, so the failure is
            # traced as a single batch-level record.
            self._trace_failure(
                "", model_name, temperature, (time.perf_counter() - start) * 1000.0, exc
            )
            raise
        return self._settle_batch(request_list, responses, temperature, target, start)

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> list[LLMResponse]:
        """Asyncio-native :meth:`complete_batch`: identical accounting."""
        target = budget if budget is not None else self.budget
        if not target.unlimited and target.remaining <= 0.0:
            raise BudgetExceededError(target.spent, target.limit or 0.0)
        model_name = model or self.config.chat_model
        request_list = list(prompts)
        start = time.perf_counter()
        try:
            responses = await call_acomplete_batch(
                self._client,
                request_list,
                model=model_name,
                temperature=temperature,
                max_tokens=max_tokens,
            )
        except Exception as exc:
            self._trace_failure(
                "", model_name, temperature, (time.perf_counter() - start) * 1000.0, exc
            )
            raise
        return self._settle_batch(request_list, responses, temperature, target, start)

    def _settle_batch(
        self,
        request_list: list[str],
        responses: list[LLMResponse],
        temperature: float,
        target: Budget | BudgetLease,
        start: float,
    ) -> list[LLMResponse]:
        """Shared post-batch path: track, trace each response, charge all."""
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        share_ms = elapsed_ms / len(responses) if responses else 0.0
        self.tracker.record_batch(responses)
        # Charge every response before surfacing a limit breach: the calls
        # were all made (and tracked), so stopping at the first raise would
        # leave the budget understating real spend.
        charge_error: BudgetExceededError | None = None
        for prompt, response in zip(request_list, responses):
            priced = self.cost_model.has_model(response.model)
            cost = self.cost_model.cost(response.model, response.usage) if priced else 0.0
            self._trace_response(prompt, temperature, response, cost, share_ms)
            if priced:
                try:
                    target.charge(cost)
                except BudgetExceededError as exc:
                    charge_error = charge_error or exc
        self.instruments.note_budget_spent(self.budget.spent)
        if charge_error is not None:
            raise charge_error
        return responses

    # -- tracing ------------------------------------------------------------------

    def _trace_response(
        self,
        prompt: str,
        temperature: float,
        response: LLMResponse,
        cost: float,
        duration_ms: float,
    ) -> None:
        """Record one completed call: trace record plus runtime-stats feed."""
        cache_hit = bool(response.metadata.get("cache_hit"))
        # The call span is created first so the trace record can carry its
        # id; the duration is known post-hoc, so the span is backdated.
        span = self.spans.record_span(
            "call",
            response.model,
            duration_seconds=duration_ms / 1000.0,
            cache_hit=cache_hit,
            cost=cost,
        )
        record = self.tracer.record(
            model=response.model,
            temperature=temperature,
            prompt=prompt,
            response_text=response.text,
            prompt_tokens=response.usage.prompt_tokens,
            completion_tokens=response.usage.completion_tokens,
            cost=cost,
            duration_ms=duration_ms,
            cache_hit=cache_hit,
            finish_reason=response.finish_reason,
            confidence=response.confidence,
            span_id=None if span is None else span.span_id,
        )
        # Retry wrappers annotate attempt index / parse outcome by this id.
        response.metadata["trace_call_id"] = record.call_id
        if span is not None:
            self.spans.annotate(span.span_id, call_id=record.call_id)
        self.instruments.note_call(cache_hit=cache_hit, cost=cost, duration_ms=duration_ms)
        self.stats.record_cache(hit=cache_hit)
        if record.operator:
            self.stats.record_latency(record.operator, duration_ms)

    def _trace_failure(
        self,
        prompt: str,
        model: str,
        temperature: float,
        duration_ms: float,
        error: BaseException,
    ) -> None:
        """Record a call that raised (exception class from the taxonomy)."""
        span = self.spans.record_span(
            "call",
            model,
            duration_seconds=duration_ms / 1000.0,
            status="error",
            error=type(error).__name__,
        )
        record = self.tracer.record(
            model=model,
            temperature=temperature,
            prompt=prompt,
            duration_ms=duration_ms,
            error=type(error).__name__,
            span_id=None if span is None else span.span_id,
        )
        self.instruments.note_call_error(type(error).__name__)
        if record.operator:
            self.stats.record_latency(record.operator, duration_ms)

    def client(self, budget: Budget | BudgetLease | None = None) -> SessionClient:
        """A client view suitable for handing to operators.

        Pass a :class:`BudgetLease` to charge that lease instead of the
        session budget directly (pipeline steps do this so each lease
        measures only its own step's spending).
        """
        return SessionClient(session=self, budget=budget)

    def batch_executor(
        self,
        *,
        max_concurrency: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> BatchExecutor:
        """An executor bound to this session's client.

        The DAG pipeline scheduler (:class:`~repro.core.workflow.Workflow`)
        runs each wave of independent steps through one of these; any caller
        fanning independent unit tasks through the session can do the same.
        ``max_concurrency`` defaults to the session's setting; the session's
        governor (when set) admits every dispatch.
        """
        return BatchExecutor(
            self.client(),
            # "is not None" rather than "or": an explicit invalid 0 must
            # reach BatchExecutor's validation, not be silently replaced.
            max_concurrency=(
                max_concurrency if max_concurrency is not None else self.max_concurrency
            ),
            budget=budget,
            governor=self.governor,
            instruments=self.instruments,
        )

    def async_batch_executor(
        self,
        *,
        max_concurrency: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> AsyncBatchExecutor:
        """The asyncio-native executor twin, bound to this session's client.

        Shares the session's governor with every sync executor the session
        builds, so both paths go through one admission point.
        ``max_concurrency`` defaults to the session's setting.
        """
        return AsyncBatchExecutor(
            self.client(),
            max_concurrency=(
                max_concurrency if max_concurrency is not None else self.max_concurrency
            ),
            budget=budget,
            governor=self.governor,
            instruments=self.instruments,
        )

    @property
    def spent_dollars(self) -> float:
        """Dollars spent through this session so far."""
        return self.budget.spent

    def reset_usage(self) -> None:
        """Clear the tracker (the budget's spend is intentionally kept)."""
        self.tracker.reset()

    def save_profile(self, store: "Store | None" = None, *, name: str = "default") -> None:
        """Persist this session's observed statistics as a workload profile.

        Saves to ``store`` when given, else to the session's own store.  The
        engine calls this automatically after ``run_pipeline(store=...)``;
        call it directly after ad-hoc operator runs worth remembering.
        """
        target = store if store is not None else self.store
        if target is None:
            raise StoreError(
                "no store to save the workload profile to; pass one, or build "
                "the session with store="
            )
        # Saving to a store this session was not seeded from merges the
        # saved history underneath (this session's stats do not contain it);
        # the session's own store is replaced exactly.
        target.save_profile(self.stats, name=name, merge=target is not self.store)
        self.tracer.flush()
        self.spans.flush()


class BudgetScopedSession:
    """A session view whose LLM calls are charged to a specific budget.

    Everything else — tracker, cache, config, registry — forwards to the
    underlying session.  The pipeline scheduler hands one of these to
    callable steps when the workflow carries its own ``budget_dollars`` cap,
    so even a raw ``session.complete`` call inside a step counts against the
    workflow's lease (which forwards every dollar to the session budget).
    """

    def __init__(self, session: PromptSession, budget: Budget | BudgetLease) -> None:
        self._session = session
        self.budget = budget

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> LLMResponse:
        return self._session.complete(
            prompt,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=budget if budget is not None else self.budget,
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> list[LLMResponse]:
        return self._session.complete_batch(
            prompts,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=budget if budget is not None else self.budget,
        )

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> LLMResponse:
        return await self._session.acomplete(
            prompt,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=budget if budget is not None else self.budget,
        )

    async def acomplete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> list[LLMResponse]:
        return await self._session.acomplete_batch(
            prompts,
            model=model,
            temperature=temperature,
            max_tokens=max_tokens,
            budget=budget if budget is not None else self.budget,
        )

    def client(self, budget: Budget | BudgetLease | None = None) -> SessionClient:
        return self._session.client(budget if budget is not None else self.budget)

    def batch_executor(
        self,
        *,
        max_concurrency: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> BatchExecutor:
        return self._session.batch_executor(
            max_concurrency=max_concurrency,
            budget=budget if budget is not None else self.budget,
        )

    def async_batch_executor(
        self,
        *,
        max_concurrency: int | None = None,
        budget: Budget | BudgetLease | None = None,
    ) -> AsyncBatchExecutor:
        return self._session.async_batch_executor(
            max_concurrency=max_concurrency,
            budget=budget if budget is not None else self.budget,
        )

    def __getattr__(self, name: str):
        return getattr(self._session, name)
