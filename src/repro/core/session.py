"""Prompt sessions: the bundle of client, registry, cache, tracker, and budget.

A :class:`PromptSession` is what the engine hands to every operator it
constructs, so that all LLM traffic in a workflow shares one usage tracker,
one response cache, and one budget — regardless of how many operators or
strategies the workflow touches.

Sessions carry a ``max_concurrency`` knob: operators constructed by the
engine thread their independent unit tasks through a
:class:`~repro.core.executor.BatchExecutor` of that size, so one setting
controls the parallelism of every LLM-bound loop in the workflow.  The
session's cache, tracker, and budget are all thread-safe, so the concurrent
path never loses accounting updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_CONFIG, ReproConfig
from repro.core.budget import Budget
from repro.exceptions import BudgetExceededError
from repro.llm.base import LLMClient, LLMResponse, call_complete_batch
from repro.llm.cache import CachedClient, ResponseCache
from repro.llm.registry import ModelRegistry, default_registry
from repro.llm.tracker import UsageTracker
from repro.tokenizer.cost import CostModel


@dataclass
class SessionClient:
    """LLM client view bound to a session: cached, tracked, budget-enforced."""

    session: "PromptSession"

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        return self.session.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        return self.session.complete_batch(
            prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )


class PromptSession:
    """Shared execution context for one declarative workflow.

    Args:
        client: the underlying LLM client (typically a :class:`SimulatedLLM`).
        registry: the model catalogue; defaults to the standard registry.
        budget: the monetary budget; defaults to unlimited.
        config: library configuration defaults.
        use_cache: whether identical temperature-0 prompts are deduplicated.
        max_concurrency: thread-pool size operators use for their independent
            unit tasks; 1 (the default) keeps everything sequential.
    """

    def __init__(
        self,
        client: LLMClient,
        *,
        registry: ModelRegistry | None = None,
        budget: Budget | None = None,
        config: ReproConfig = DEFAULT_CONFIG,
        use_cache: bool = True,
        max_concurrency: int = 1,
    ) -> None:
        self.registry = registry or default_registry()
        self.budget = budget or Budget()
        self.config = config
        self.max_concurrency = max_concurrency
        self.cost_model: CostModel = self.registry.cost_model()
        self.tracker = UsageTracker(cost_model=self.cost_model)
        self.cache = ResponseCache()
        self._client: LLMClient = CachedClient(client, self.cache) if use_cache else client
        self._raw_client = client

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        """Issue one call through the session: cache, track, and charge it."""
        model_name = model or self.config.chat_model
        response = self._client.complete(
            prompt, model=model_name, temperature=temperature, max_tokens=max_tokens
        )
        self.tracker.record(response)
        if self.cost_model.has_model(response.model):
            self.budget.charge(self.cost_model.cost(response.model, response.usage))
        return response

    def complete_batch(
        self,
        prompts: list[str],
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> list[LLMResponse]:
        """Issue a whole batch through the session: cache, track, and charge it.

        The batch is dispatched as one unit, so the budget is checked up front
        and charged per response afterwards; callers that need a spend limit
        to interrupt a batch *between* unit tasks should dispatch through a
        :class:`~repro.core.executor.BatchExecutor` with the session budget
        attached (operators constructed by the engine do exactly that).
        """
        if not self.budget.unlimited and self.budget.remaining <= 0.0:
            raise BudgetExceededError(self.budget.spent, self.budget.limit or 0.0)
        model_name = model or self.config.chat_model
        responses = call_complete_batch(
            self._client,
            list(prompts),
            model=model_name,
            temperature=temperature,
            max_tokens=max_tokens,
        )
        self.tracker.record_batch(responses)
        for response in responses:
            if self.cost_model.has_model(response.model):
                self.budget.charge(self.cost_model.cost(response.model, response.usage))
        return responses

    def client(self) -> SessionClient:
        """A client view suitable for handing to operators."""
        return SessionClient(session=self)

    @property
    def spent_dollars(self) -> float:
        """Dollars spent through this session so far."""
        return self.budget.spent

    def reset_usage(self) -> None:
        """Clear the tracker (the budget's spend is intentionally kept)."""
        self.tracker.reset()
