"""Rate-limited admission control for LLM dispatch.

Serving heavy multi-user traffic means the runtime — not each caller — has to
respect the backend's operating envelope: requests-per-minute and
tokens-per-minute quotas, a cap on simultaneous in-flight calls, and backing
off when the backend starts returning 429-style
:class:`~repro.exceptions.RateLimitError` signals.  The
:class:`ConcurrencyGovernor` is the single admission point for all of that:
both the thread-pool :class:`~repro.core.executor.BatchExecutor` and the
asyncio-native :class:`~repro.core.executor.AsyncBatchExecutor` route every
unit-task dispatch through one governor instance, so sync and async traffic
share the same token buckets, the same in-flight slots, and the same adaptive
backoff state.

Design notes:

* **Token buckets** (:class:`TokenBucket`) implement the RPM/TPM quotas with
  a virtual-scheduling debit: each reservation deducts immediately and
  returns the wait the caller owes, so N concurrent reservations pace out at
  exactly the configured rate instead of racing a refill check.  The clock is
  injectable, which is what makes the RPM-cap unit tests wall-clock-free.
* **Adaptive backoff** consumes the existing exception taxonomy: a
  :class:`~repro.exceptions.RateLimitError` carrying ``retry_after`` imposes
  at least that cooldown; without a hint the governor backs off
  exponentially, and any successful dispatch resets the failure streak.
* **Slots** bound simultaneous in-flight calls with a semaphore shared by
  both execution paths (the async side acquires it without ever blocking the
  event loop).
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import asynccontextmanager, contextmanager
from dataclasses import dataclass, field, replace
from typing import AsyncIterator, Callable, Iterator

from repro.exceptions import ConfigurationError, RateLimitError


def estimated_prompt_tokens(prompt: str) -> int:
    """Cheap pre-dispatch token estimate for TPM accounting (chars / 4).

    The governor needs an estimate *before* the call goes out (the true count
    is only known afterwards), and the standard chars/4 heuristic is accurate
    enough for pacing purposes.
    """
    return max(1, len(prompt) // 4)


class TokenBucket:
    """A thread-safe token bucket paced at a per-minute rate.

    Args:
        rate_per_minute: sustained refill rate (requests or tokens / minute).
        burst: bucket capacity — how much can be drawn instantly from a cold
            start.  Defaults to one second's worth of the rate (at least 1),
            so a fresh bucket admits the first call immediately and then
            paces at the configured rate rather than allowing a full minute's
            burst up front.
        clock: monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        rate_per_minute: float,
        *,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_minute <= 0:
            raise ConfigurationError("rate_per_minute must be positive")
        self.rate_per_minute = rate_per_minute
        self._rate = rate_per_minute / 60.0
        self.burst = float(burst) if burst is not None else max(1.0, self._rate)
        if self.burst <= 0:
            raise ConfigurationError("burst must be positive")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def reserve(self, tokens: float = 1.0) -> float:
        """Debit ``tokens`` and return the seconds the caller must wait.

        The debit happens immediately (the bucket may go negative), so
        concurrent reservations queue up linearly: the k-th over-budget
        reservation owes k refill intervals, which is exactly what caps
        sustained dispatch at the configured rate.
        """
        if tokens < 0:
            raise ConfigurationError("cannot reserve a negative token amount")
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self._rate)
            self._stamp = now
            self._tokens -= tokens
            if self._tokens >= 0:
                return 0.0
            return -self._tokens / self._rate


@dataclass(frozen=True)
class ModelRate:
    """Per-model quota overrides (None inherits the governor default)."""

    rpm: float | None = None
    tpm: float | None = None


@dataclass
class GovernorStats:
    """Counters describing one governor's admission history.

    The live instance on a governor is mutated under the governor's lock;
    concurrent readers (the service's usage endpoint, monitoring threads)
    should take :meth:`ConcurrencyGovernor.stats_snapshot` instead of
    reading the live fields, so every field of what they see comes from one
    consistent instant.
    """

    admitted: int = 0
    throttled: int = 0
    wait_seconds: float = 0.0
    rate_limit_events: int = 0
    max_in_flight: int = 0

    def to_dict(self) -> dict[str, float | int]:
        """A JSON-shaped view (what the service's usage endpoint returns)."""
        return {
            "admitted": self.admitted,
            "throttled": self.throttled,
            "wait_seconds": self.wait_seconds,
            "rate_limit_events": self.rate_limit_events,
            "max_in_flight": self.max_in_flight,
        }


class ConcurrencyGovernor:
    """Admission point shared by the sync and async execution paths.

    Args:
        max_in_flight: cap on simultaneous in-flight dispatches (None: no cap).
        rpm: default requests-per-minute quota applied per model (None: none).
        tpm: default (estimated prompt) tokens-per-minute quota per model.
        model_rates: per-model :class:`ModelRate` overrides by model name.
        burst: bucket capacity override forwarded to every bucket.
        backoff_initial: first exponential-backoff delay after a rate-limit
            failure with no ``retry_after`` hint.
        backoff_multiplier: growth factor for consecutive failures.
        backoff_max: ceiling on any single backoff delay.
        clock: monotonic time source (injectable for tests).
        sleep: sync wait primitive (injectable for tests); the async path
            always uses ``asyncio.sleep``.
    """

    def __init__(
        self,
        *,
        max_in_flight: int | None = None,
        rpm: float | None = None,
        tpm: float | None = None,
        model_rates: dict[str, ModelRate] | None = None,
        burst: float | None = None,
        backoff_initial: float = 0.5,
        backoff_multiplier: float = 2.0,
        backoff_max: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be at least 1")
        if backoff_initial <= 0 or backoff_multiplier < 1.0 or backoff_max <= 0:
            raise ConfigurationError("invalid backoff configuration")
        self.max_in_flight = max_in_flight
        self.default_rpm = rpm
        self.default_tpm = tpm
        self.model_rates = dict(model_rates or {})
        self.burst = burst
        self.backoff_initial = backoff_initial
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.stats = GovernorStats()
        self._instruments = None
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rpm_buckets: dict[str, TokenBucket] = {}
        self._tpm_buckets: dict[str, TokenBucket] = {}
        self._cooldown_until = clock()
        self._consecutive_failures = 0
        self._in_flight = 0
        self._slots = (
            threading.Semaphore(max_in_flight) if max_in_flight is not None else None
        )

    # -- admission ----------------------------------------------------------------

    @contextmanager
    def admit(self, model: str | None = None, *, estimated_tokens: float = 0.0) -> Iterator[None]:
        """Admit one sync dispatch: wait out quotas/backoff, hold a slot."""
        wait = self._admission_wait(model, estimated_tokens)
        if wait > 0:
            self._sleep(wait)
        if self._slots is not None:
            self._slots.acquire()
        self._note_dispatch(wait)
        try:
            yield
        finally:
            self._release_slot()

    @asynccontextmanager
    async def admit_async(
        self, model: str | None = None, *, estimated_tokens: float = 0.0
    ) -> AsyncIterator[None]:
        """Admit one async dispatch without ever blocking the event loop.

        Quota waits become ``asyncio.sleep``; the shared in-flight semaphore
        is acquired non-blockingly with a short poll, so a sync worker thread
        and an async task contend for the same slots fairly enough for
        admission purposes while the loop stays responsive.
        """
        wait = self._admission_wait(model, estimated_tokens)
        if wait > 0:
            await asyncio.sleep(wait)
        if self._slots is not None:
            while not self._slots.acquire(blocking=False):
                await asyncio.sleep(0.001)
        self._note_dispatch(wait)
        try:
            yield
        finally:
            self._release_slot()

    # -- feedback -----------------------------------------------------------------

    def bind_instruments(self, instruments) -> None:
        """Mirror admission counters into a metrics registry.

        Sessions call this with their :class:`~repro.obs.SessionInstruments`
        so the governor's admissions/waits/rate-limit events show up in
        ``GET /metrics`` under that session's tenant label.  Only one
        binding is kept (latest wins) — a governor is owned by one tenant
        in the service topology.
        """
        self._instruments = instruments

    def record_success(self) -> None:
        """A dispatch completed normally: reset the failure streak."""
        with self._lock:
            self._consecutive_failures = 0

    def record_failure(self, error: BaseException | None = None) -> float:
        """A dispatch hit a rate limit: impose a cooldown; returns its length.

        A :class:`~repro.exceptions.RateLimitError` carrying ``retry_after``
        imposes at least the backend's suggested wait; the exponential
        schedule (initial × multiplier^streak, capped) governs otherwise.
        """
        with self._lock:
            self._consecutive_failures += 1
            delay = min(
                self.backoff_max,
                self.backoff_initial
                * self.backoff_multiplier ** (self._consecutive_failures - 1),
            )
            retry_after = float(getattr(error, "retry_after", 0.0) or 0.0)
            delay = max(delay, retry_after)
            self._cooldown_until = max(self._cooldown_until, self._clock() + delay)
            self.stats.rate_limit_events += 1
        if self._instruments is not None:
            self._instruments.note_rate_limit()
        return delay

    def stats_snapshot(self) -> GovernorStats:
        """A lock-consistent copy of the admission counters.

        Taken under the same lock every mutation holds, so the returned
        instance is internally consistent (``throttled`` never exceeds
        ``admitted``, ``wait_seconds`` matches the throttles it counts) and
        safe to read field-by-field from a concurrent request handler while
        dispatches keep flowing.  The copy is detached: later admissions do
        not mutate it.
        """
        with self._lock:
            return replace(self.stats)

    @property
    def in_flight(self) -> int:
        """Dispatches currently admitted and not yet released."""
        with self._lock:
            return self._in_flight

    @property
    def cooldown_remaining(self) -> float:
        """Seconds of backoff cooldown still in force (0 when clear)."""
        with self._lock:
            return max(0.0, self._cooldown_until - self._clock())

    # -- internals ----------------------------------------------------------------

    def _bucket(
        self,
        buckets: dict[str, TokenBucket],
        model: str | None,
        rate: float | None,
    ) -> TokenBucket | None:
        if rate is None:
            return None
        key = model or "__default__"
        with self._lock:
            bucket = buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(rate, burst=self.burst, clock=self._clock)
                buckets[key] = bucket
            return bucket

    def _rates_for(self, model: str | None) -> tuple[float | None, float | None]:
        override = self.model_rates.get(model) if model is not None else None
        rpm = override.rpm if override is not None and override.rpm is not None else self.default_rpm
        tpm = override.tpm if override is not None and override.tpm is not None else self.default_tpm
        return rpm, tpm

    def _admission_wait(self, model: str | None, estimated_tokens: float) -> float:
        rpm, tpm = self._rates_for(model)
        wait = 0.0
        rpm_bucket = self._bucket(self._rpm_buckets, model, rpm)
        if rpm_bucket is not None:
            wait = max(wait, rpm_bucket.reserve(1.0))
        tpm_bucket = self._bucket(self._tpm_buckets, model, tpm)
        if tpm_bucket is not None and estimated_tokens > 0:
            wait = max(wait, tpm_bucket.reserve(estimated_tokens))
        with self._lock:
            wait = max(wait, self._cooldown_until - self._clock())
        return max(0.0, wait)

    def _note_dispatch(self, wait: float) -> None:
        with self._lock:
            self.stats.admitted += 1
            if wait > 0:
                self.stats.throttled += 1
                self.stats.wait_seconds += wait
            self._in_flight += 1
            self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)
            in_flight = self._in_flight
        if self._instruments is not None:
            self._instruments.note_admission(wait, in_flight)

    def _release_slot(self) -> None:
        with self._lock:
            self._in_flight -= 1
            in_flight = self._in_flight
        if self._slots is not None:
            self._slots.release()
        if self._instruments is not None:
            self._instruments.note_release(in_flight)


def is_rate_limit(error: BaseException) -> bool:
    """Whether an exception is the taxonomy's rate-limit signal.

    The executors use this to decide which failures feed the governor's
    adaptive backoff (parse failures and budget breaches must not).
    """
    return isinstance(error, RateLimitError)
