"""Declarative prompt engineering via crowdsourcing principles.

A reproduction of "Revisiting Prompt Engineering via Declarative
Crowdsourcing" (CIDR 2024).  The package treats LLMs as noisy oracles and
provides declarative data-processing operators (sort, resolve, impute, count,
filter, top-k, cluster) with multiple prompting strategies per operator, a
budget-aware execution engine, quality control drawn from the crowdsourcing
literature, and a simulated LLM substrate so everything runs offline.

Quickstart::

    from repro import DeclarativeEngine, SortSpec
    from repro.data import FLAVORS, flavor_oracle
    from repro.llm import SimulatedLLM

    engine = DeclarativeEngine(SimulatedLLM(flavor_oracle()))
    result = engine.sort(SortSpec(items=list(FLAVORS), criterion="chocolatey",
                                  strategy="pairwise"))
    print(result.order[:3], result.usage.total_tokens)
"""

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import ImputeSpec, PipelineSpec, PipelineStep, ResolveSpec, SortSpec
from repro.core.workflow import Workflow
from repro.exceptions import (
    BudgetExceededError,
    ContextLengthExceededError,
    ReproError,
    ResponseParseError,
    SpecError,
    UnknownStrategyError,
)
from repro.llm import HashingEmbedder, Oracle, SimulatedLLM
from repro.operators import (
    ClusterOperator,
    CountOperator,
    FilterOperator,
    ImputeOperator,
    ResolveOperator,
    SortOperator,
    TopKOperator,
)

__version__ = "0.1.0"

__all__ = [
    "Budget",
    "BudgetExceededError",
    "ClusterOperator",
    "ContextLengthExceededError",
    "CountOperator",
    "DeclarativeEngine",
    "FilterOperator",
    "HashingEmbedder",
    "ImputeOperator",
    "ImputeSpec",
    "Oracle",
    "PipelineSpec",
    "PipelineStep",
    "PromptSession",
    "ReproError",
    "ResolveOperator",
    "ResolveSpec",
    "ResponseParseError",
    "SimulatedLLM",
    "SortOperator",
    "SortSpec",
    "SpecError",
    "UnknownStrategyError",
    "Workflow",
    "__version__",
]
