"""Declarative prompt engineering via crowdsourcing principles.

A reproduction of "Revisiting Prompt Engineering via Declarative
Crowdsourcing" (CIDR 2024).  The package treats LLMs as noisy oracles and
provides declarative data-processing operators (sort, resolve, impute, count,
filter, top-k, cluster) with multiple prompting strategies per operator, a
budget-aware execution engine, quality control drawn from the crowdsourcing
literature, and a simulated LLM substrate so everything runs offline.

Quickstart (the fluent declarative API)::

    from repro import Dataset, DeclarativeEngine, SimulatedLLM
    from repro.data import FLAVORS, flavor_oracle

    engine = DeclarativeEngine(SimulatedLLM(flavor_oracle()))
    result = (
        Dataset(list(FLAVORS), name="flavors")
        .sort("chocolatey", strategy="pairwise")
        .top_k("chocolatey", k=3)
        .run(engine)
    )
    print(result.items, result.total_cost)
"""

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.executor import AsyncBatchExecutor
from repro.core.governor import ConcurrencyGovernor, ModelRate
from repro.core.physical import PhysicalPlanner, RuntimeStats
from repro.core.session import PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TopKSpec,
)
from repro.core.spec_codec import (
    pipeline_from_dict,
    pipeline_from_json,
    pipeline_to_dict,
    pipeline_to_json,
    spec_from_dict,
    spec_to_dict,
)
from repro.core.workflow import Workflow
from repro.obs import (
    MetricsRegistry,
    SessionInstruments,
    Span,
    SpanTracker,
    critical_path,
    render_timeline,
)
from repro.query import Dataset, LogicalPlan, QueryResult, compile_plan, optimize
from repro.service import (
    ServiceApp,
    ServiceClient,
    TenantConfig,
    TenantRegistry,
)
from repro.store import (
    JobRecord,
    PersistentResponseCache,
    Store,
    StoreNamespace,
    WorkloadProfile,
    fingerprint_spec,
)
from repro.trace import TraceRecord, Tracer, replay_trace, summarize_records, trace_label
from repro.exceptions import (
    BudgetExceededError,
    ContextLengthExceededError,
    RateLimitError,
    ReproError,
    ResponseParseError,
    SpecError,
    StoreError,
    UnknownStrategyError,
)
from repro.llm import HashingEmbedder, Oracle, SimulatedLLM
from repro.operators import (
    ClusterOperator,
    CountOperator,
    FilterOperator,
    ImputeOperator,
    ResolveOperator,
    SortOperator,
    TopKOperator,
)

__version__ = "0.1.0"

__all__ = [
    "AsyncBatchExecutor",
    "Budget",
    "BudgetExceededError",
    "CategorizeSpec",
    "ConcurrencyGovernor",
    "ModelRate",
    "RateLimitError",
    "ClusterOperator",
    "ClusterSpec",
    "ContextLengthExceededError",
    "CountOperator",
    "Dataset",
    "DeclarativeEngine",
    "FilterOperator",
    "FilterSpec",
    "HashingEmbedder",
    "ImputeOperator",
    "ImputeSpec",
    "JobRecord",
    "JoinSpec",
    "LogicalPlan",
    "MetricsRegistry",
    "Oracle",
    "PersistentResponseCache",
    "PhysicalPlanner",
    "PipelineSpec",
    "PipelineStep",
    "PromptSession",
    "QueryResult",
    "ReproError",
    "ResolveOperator",
    "ResolveSpec",
    "RuntimeStats",
    "ResponseParseError",
    "ServiceApp",
    "ServiceClient",
    "SessionInstruments",
    "SimulatedLLM",
    "Span",
    "SpanTracker",
    "SortOperator",
    "SortSpec",
    "SpecError",
    "Store",
    "StoreError",
    "StoreNamespace",
    "TenantConfig",
    "TenantRegistry",
    "TopKSpec",
    "TraceRecord",
    "Tracer",
    "UnknownStrategyError",
    "Workflow",
    "WorkloadProfile",
    "__version__",
    "compile_plan",
    "critical_path",
    "fingerprint_spec",
    "optimize",
    "pipeline_from_dict",
    "pipeline_from_json",
    "pipeline_to_dict",
    "pipeline_to_json",
    "render_timeline",
    "replay_trace",
    "spec_from_dict",
    "spec_to_dict",
    "summarize_records",
    "trace_label",
]
