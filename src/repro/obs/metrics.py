"""A stdlib-only operational metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — each a *family* keyed by metric name that fans out
into labelled children via :meth:`labels`.  One lock, owned by the
registry and shared by every child, makes increments and
:meth:`MetricsRegistry.render` mutually consistent: a scrape never sees
a histogram whose ``_sum`` and ``_count`` disagree.

``render`` emits Prometheus text exposition format 0.0.4 with
deterministic ordering (families by name, samples by label values) so
the output can be pinned by a golden test.
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Iterable, Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Child:
    """A single labelled time series; all mutation goes through the shared lock."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class CounterChild(_Child):
    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]) -> None:
        super().__init__(lock)
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _Family:
    kind = "untyped"
    child_class: type[_Child] = _Child

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._children: dict[tuple[str, ...], _Child] = {}

    def labels(self, **labels: str) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> _Child:
        return self.child_class(self._lock)

    def _default(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labelled; call .labels() first")
        return self.labels()

    def samples(self) -> list[tuple[str, str, float]]:
        """(suffix, label-block, value) triples; caller holds the lock."""

        raise NotImplementedError


class Counter(_Family):
    kind = "counter"
    child_class = CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[attr-defined]

    def samples(self) -> list[tuple[str, str, float]]:
        return [
            ("", _format_labels(self.labelnames, key), child._value)  # type: ignore[attr-defined]
            for key, child in sorted(self._children.items())
        ]


class Gauge(_Family):
    kind = "gauge"
    child_class = GaugeChild

    def set(self, value: float) -> None:
        self._default().set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)  # type: ignore[attr-defined]

    def samples(self) -> list[tuple[str, str, float]]:
        return [
            ("", _format_labels(self.labelnames, key), child._value)  # type: ignore[attr-defined]
            for key, child in sorted(self._children.items())
        ]


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = buckets

    def observe(self, value: float) -> None:
        self._default().observe(value)  # type: ignore[attr-defined]

    def _make_child(self) -> _Child:
        return HistogramChild(self._lock, self.buckets)

    def samples(self) -> list[tuple[str, str, float]]:
        out: list[tuple[str, str, float]] = []
        for key, child in sorted(self._children.items()):
            assert isinstance(child, HistogramChild)
            cumulative = 0
            for bound, count in zip(child._buckets, child._counts):
                cumulative += count
                labels = _format_labels(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                out.append(("_bucket", labels, float(cumulative)))
            cumulative += child._counts[-1]
            labels = _format_labels(self.labelnames + ("le",), key + ("+Inf",))
            out.append(("_bucket", labels, float(cumulative)))
            plain = _format_labels(self.labelnames, key)
            out.append(("_sum", plain, child._sum))
            out.append(("_count", plain, float(child._count)))
        return out


class MetricsRegistry:
    """Get-or-create registry of metric families sharing one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(
        self,
        factory: type[_Family],
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        **extra: object,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not factory or existing.labelnames != names:
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"kind or label set"
                    )
                return existing
            family = factory(name, help_text, names, self._lock, **extra)  # type: ignore[arg-type]
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        family = self._register(Counter, name, help_text, labelnames)
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        family = self._register(Gauge, name, help_text, labelnames)
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        family = self._register(
            Histogram, name, help_text, labelnames, buckets=bounds
        )
        assert isinstance(family, Histogram)
        if family.buckets != bounds:
            raise ValueError(f"metric {name!r} already registered with different buckets")
        return family

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4, deterministically ordered."""

        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help_text:
                    lines.append(f"# HELP {name} {family.help_text}")
                lines.append(f"# TYPE {name} {family.kind}")
                for suffix, labels, value in family.samples():
                    lines.append(f"{name}{suffix}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Mapping[str, dict[str, float]]:
        """Plain-dict view for tests: family name -> label-block -> value."""

        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for name, family in self._families.items():
                out[name] = {
                    f"{suffix}{labels}": value
                    for suffix, labels, value in family.samples()
                }
        return out
