"""Hierarchical span tracing for pipeline runs.

A :class:`Span` marks one timed region of work — a pipeline run, a
scheduler wave, a step, an operator strategy, a batch execution, or a
single model call.  Spans form a tree: each records the ``span_id`` of
the span that was ambient when it started.  The ambient span travels in
a :class:`contextvars.ContextVar`, the same mechanism the tracer uses
for labels, so parentage survives both thread-pool workers (the batch
executor dispatches through ``contextvars.copy_context().run``) and
asyncio tasks (which copy the context at creation time).

:class:`SpanTracker` is the per-session collector.  Like the trace ring
it holds a bounded FIFO of spans, counts evictions instead of raising,
and flushes to the store best-effort — observability must never sink the
run it is watching.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
from collections import OrderedDict
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any
from uuid import uuid4

from repro.exceptions import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store import Store

__all__ = ["Span", "SpanTracker", "current_span_id"]

# The ambient entry is ``(tracker, span_id)`` so that two sessions
# interleaving on one thread cannot adopt each other's span ids.
_CURRENT: contextvars.ContextVar[tuple[Any, int] | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_span_id(tracker: object | None = None) -> int | None:
    """Return the ambient span id, or ``None`` outside any span.

    When *tracker* is given, only an ambient span opened by that tracker
    counts; spans belonging to a different session are ignored.
    """

    entry = _CURRENT.get()
    if entry is None:
        return None
    owner, span_id = entry
    if tracker is not None and owner is not tracker:
        return None
    return span_id


@dataclass
class Span:
    """One timed region in the span tree.

    ``start`` and ``end`` are ``perf_counter`` readings — monotonic and
    comparable only within a process, which is all a waterfall needs.
    ``end`` is ``None`` while the span is open.
    """

    span_id: int
    parent_id: int | None
    kind: str
    label: str
    start: float
    end: float | None = None
    status: str = "running"
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float | None:
        if self.end is None:
            return None
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> Span:
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            kind=str(payload.get("kind", "")),
            label=str(payload.get("label", "")),
            start=float(payload.get("start", 0.0)),
            end=payload.get("end"),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes") or {}),
        )


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to something json.dumps accepts."""

    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class SpanTracker:
    """Thread-safe bounded collector for a session's span tree.

    Spans are kept in insertion order, evicted FIFO past *capacity*
    (counting drops rather than failing), and persisted to the store's
    ``spans`` table under a per-tracker ``origin`` — mirroring the trace
    ring's contract so the two can be joined by ``TraceRecord.span_id``.

    Setting ``enabled`` to ``False`` turns every entry point into a
    near-no-op: :meth:`span` yields ``None`` without touching the
    contextvar or the lock, which is what the overhead benchmark pins.
    """

    def __init__(
        self,
        *,
        capacity: int = 8192,
        store: Store | None = None,
        flush_every: int = 128,
        enabled: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.store = store
        self.flush_every = max(1, flush_every)
        self.enabled = enabled
        self.origin = uuid4().hex
        self._lock = threading.Lock()
        self._spans: OrderedDict[int, Span] = OrderedDict()
        self._dirty: set[int] = set()
        self._dropped = 0
        self._ids = itertools.count(1)

    # -- recording ---------------------------------------------------

    @contextmanager
    def span(self, kind: str, label: str = "", **attributes: Any) -> Iterator[Span | None]:
        """Open a span, make it ambient, and close it on exit.

        Exit status is ``ok`` on normal return, ``stopped`` when a
        :class:`BudgetExceededError` escapes (the run was halted, not
        broken), and ``error`` otherwise — with the exception class name
        attached as the ``error`` attribute.  Exceptions always
        propagate.
        """

        if not self.enabled:
            yield None
            return
        sp = self._open(kind, label, attributes)
        token = _CURRENT.set((self, sp.span_id))
        try:
            yield sp
        except BudgetExceededError:
            self._close(sp, status="stopped")
            raise
        except BaseException as exc:
            self._close(sp, status="error", error=type(exc).__name__)
            raise
        else:
            self._close(sp, status="ok")
        finally:
            _CURRENT.reset(token)

    def record_span(
        self,
        kind: str,
        label: str = "",
        *,
        duration_seconds: float = 0.0,
        status: str = "ok",
        parent_id: int | None = None,
        **attributes: Any,
    ) -> Span | None:
        """Record an already-finished region as a leaf span.

        Used for model calls, whose duration is only known after the
        fact: the span is backdated by *duration_seconds* and parented
        to the ambient span (or an explicit *parent_id*).
        """

        if not self.enabled:
            return None
        now = perf_counter()
        if parent_id is None:
            parent_id = current_span_id(self)
        sp = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            kind=kind,
            label=label,
            start=now - max(0.0, duration_seconds),
            end=now,
            status=status,
            attributes={key: _json_safe(value) for key, value in attributes.items()},
        )
        self._admit(sp)
        return sp

    def annotate(self, span_id: int | None, **attributes: Any) -> None:
        """Merge attributes into a recorded span; unknown ids are ignored."""

        if span_id is None or not self.enabled:
            return
        with self._lock:
            sp = self._spans.get(span_id)
            if sp is None:
                return
            for key, value in attributes.items():
                sp.attributes[key] = _json_safe(value)
            self._dirty.add(span_id)

    def _open(self, kind: str, label: str, attributes: Mapping[str, Any]) -> Span:
        sp = Span(
            span_id=next(self._ids),
            parent_id=current_span_id(self),
            kind=kind,
            label=label,
            start=perf_counter(),
            attributes={key: _json_safe(value) for key, value in attributes.items()},
        )
        self._admit(sp)
        return sp

    def _close(self, sp: Span, *, status: str, error: str | None = None) -> None:
        with self._lock:
            sp.end = perf_counter()
            sp.status = status
            if error is not None:
                sp.attributes["error"] = error
            if sp.span_id in self._spans:
                self._dirty.add(sp.span_id)
            pending = len(self._dirty)
        if self.store is not None and pending >= self.flush_every:
            self.flush()

    def _admit(self, sp: Span) -> None:
        with self._lock:
            self._spans[sp.span_id] = sp
            self._dirty.add(sp.span_id)
            while len(self._spans) > self.capacity:
                evicted_id, _ = self._spans.popitem(last=False)
                self._dirty.discard(evicted_id)
                self._dropped += 1

    # -- reading -----------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of retained spans in creation order."""

        with self._lock:
            return list(self._spans.values())

    def get(self, span_id: int) -> Span | None:
        with self._lock:
            return self._spans.get(span_id)

    def subtree(self, root_id: int) -> list[Span]:
        """The span with *root_id* plus all transitive children, in creation order."""

        with self._lock:
            snapshot = list(self._spans.values())
        keep = {root_id}
        collected: list[Span] = []
        # Spans are created parent-first, so one pass in creation order
        # sees every parent before its children.
        for sp in snapshot:
            if sp.span_id in keep or sp.parent_id in keep:
                keep.add(sp.span_id)
                collected.append(sp)
        return collected

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- persistence -------------------------------------------------

    def flush(self) -> int:
        """Persist dirty spans best-effort; returns how many were written."""

        if self.store is None:
            return 0
        with self._lock:
            if not self._dirty:
                return 0
            pending = [self._spans[sid] for sid in sorted(self._dirty) if sid in self._spans]
            self._dirty.clear()
        if not pending:
            return 0
        try:
            self.store.save_spans(pending, origin=self.origin)
        except Exception:
            # A failing store must not take the pipeline down with it.
            return 0
        return len(pending)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dirty.clear()
            self._dropped = 0
