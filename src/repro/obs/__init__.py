"""Operational observability: span tracing, metrics, and timeline analysis.

Distinct from :mod:`repro.metrics`, which holds *evaluation* metrics
(accuracy, clustering quality, ranking agreement); this package is about
where wall-clock and capacity go at run time.
"""

from repro.obs.instruments import SessionInstruments
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracker, current_span_id
from repro.obs.timeline import CriticalPath, critical_path, render_timeline, summarize_path

__all__ = [
    "Counter",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SessionInstruments",
    "Span",
    "SpanTracker",
    "critical_path",
    "current_span_id",
    "render_timeline",
    "summarize_path",
]
