"""Pre-bound operational instruments for one session/tenant.

Every metric family the engine emits is declared here, once, with a
``tenant`` label so a shared :class:`MetricsRegistry` (as used by the
multi-tenant service) keeps tenants' series apart.  A standalone
session uses the empty-string tenant.

The ``note_*`` methods are the only surface the rest of the codebase
touches, so the family names and label sets stay consistent across the
governor, executors, tracer, workflow scheduler, and job manager.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["SessionInstruments"]

_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0)


class SessionInstruments:
    """Labelled children of the standard metric families, bound to one tenant."""

    def __init__(self, registry: MetricsRegistry, *, tenant: str = "") -> None:
        self.registry = registry
        self.tenant = tenant

        calls = registry.counter(
            "repro_llm_calls_total",
            "Model calls settled through a session, by response-cache outcome.",
            ("tenant", "cache"),
        )
        self._calls_hit = calls.labels(tenant=tenant, cache="hit")
        self._calls_miss = calls.labels(tenant=tenant, cache="miss")
        self._call_errors = registry.counter(
            "repro_llm_call_errors_total",
            "Model calls that raised, by exception class.",
            ("tenant", "error"),
        )
        self._cost = registry.counter(
            "repro_llm_cost_dollars_total",
            "Accumulated model spend in dollars.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._budget_spent = registry.gauge(
            "repro_budget_spent_dollars",
            "Current budget spend in dollars.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._call_seconds = registry.histogram(
            "repro_call_duration_seconds",
            "Wall-clock duration of settled model calls.",
            ("tenant",),
            buckets=_LATENCY_BUCKETS,
        ).labels(tenant=tenant)

        self._trace_dropped = registry.counter(
            "repro_trace_records_dropped_total",
            "Trace records evicted from the ring buffer before flushing.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._observer_errors = registry.counter(
            "repro_step_observer_errors_total",
            "Exceptions raised by on_step observers and absorbed by the scheduler.",
            ("tenant",),
        ).labels(tenant=tenant)

        self._gov_admitted = registry.counter(
            "repro_governor_admitted_total",
            "Dispatches admitted by the concurrency governor.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._gov_throttled = registry.counter(
            "repro_governor_throttled_total",
            "Dispatches the governor made wait for a slot or pacing.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._gov_wait = registry.counter(
            "repro_governor_wait_seconds_total",
            "Total seconds dispatches spent waiting on the governor.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._gov_rate_limited = registry.counter(
            "repro_governor_rate_limit_events_total",
            "Rate-limit failures reported to the governor.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._gov_in_flight = registry.gauge(
            "repro_governor_in_flight",
            "Calls currently holding a governor slot.",
            ("tenant",),
        ).labels(tenant=tenant)

        self._exec_in_flight = registry.gauge(
            "repro_executor_tasks_in_flight",
            "Batch-executor tasks currently executing.",
            ("tenant",),
        ).labels(tenant=tenant)
        self._exec_queue = registry.gauge(
            "repro_executor_queue_depth",
            "Batch-executor tasks submitted but not yet finished.",
            ("tenant",),
        ).labels(tenant=tenant)

        self._jobs = registry.counter(
            "repro_jobs_total",
            "Job lifecycle transitions, by resulting status.",
            ("tenant", "status"),
        )
        self._jobs_active = registry.gauge(
            "repro_jobs_active",
            "Jobs currently running.",
            ("tenant",),
        ).labels(tenant=tenant)

    # -- calls and budget --------------------------------------------

    def note_call(self, *, cache_hit: bool, cost: float, duration_ms: float) -> None:
        (self._calls_hit if cache_hit else self._calls_miss).inc()
        if cost > 0:
            self._cost.inc(cost)
        self._call_seconds.observe(max(0.0, duration_ms) / 1000.0)

    def note_call_error(self, error: str) -> None:
        self._call_errors.labels(tenant=self.tenant, error=error).inc()

    def note_budget_spent(self, spent: float) -> None:
        self._budget_spent.set(spent)

    # -- tracing and scheduling --------------------------------------

    def note_trace_dropped(self, count: int = 1) -> None:
        if count > 0:
            self._trace_dropped.inc(count)

    def note_observer_error(self) -> None:
        self._observer_errors.inc()

    # -- governor ----------------------------------------------------

    def note_admission(self, wait: float, in_flight: int) -> None:
        self._gov_admitted.inc()
        if wait > 0:
            self._gov_throttled.inc()
            self._gov_wait.inc(wait)
        self._gov_in_flight.set(in_flight)

    def note_release(self, in_flight: int) -> None:
        self._gov_in_flight.set(in_flight)

    def note_rate_limit(self) -> None:
        self._gov_rate_limited.inc()

    # -- executors ---------------------------------------------------

    def note_enqueued(self, count: int) -> None:
        self._exec_queue.inc(count)

    def note_dequeued(self, count: int) -> None:
        self._exec_queue.dec(count)

    def note_task_started(self) -> None:
        self._exec_in_flight.inc()

    def note_task_done(self) -> None:
        self._exec_in_flight.dec()

    # -- jobs --------------------------------------------------------

    def note_job(self, status: str) -> None:
        self._jobs.labels(tenant=self.tenant, status=status).inc()

    def note_job_started(self) -> None:
        self._jobs_active.inc()

    def note_job_finished(self) -> None:
        self._jobs_active.dec()
