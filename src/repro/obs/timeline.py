"""Waterfall rendering and critical-path analysis over span trees."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.obs.spans import Span

__all__ = ["CriticalPath", "critical_path", "render_timeline"]

_BAR_WIDTH = 30


@dataclass(frozen=True)
class CriticalPath:
    """The dominating chain of step spans in one pipeline run."""

    steps: tuple[str, ...]
    seconds: float
    step_seconds: Mapping[str, float] = field(default_factory=dict)

    @property
    def sum_seconds(self) -> float:
        """Total step time if the DAG had been run serially."""

        return sum(self.step_seconds.values())


def _coerce_spans(source: object) -> list[Span]:
    """Accept a span iterable or anything carrying a ``spans`` attribute."""

    spans = getattr(source, "spans", source)
    if callable(spans):  # a SpanTracker
        spans = spans()
    return [sp for sp in spans if isinstance(sp, Span)]


def critical_path(source: Iterable[Span] | object) -> CriticalPath:
    """Extract the longest dependency chain of step spans.

    Step spans carry their declared ``depends_on`` edges as an
    attribute, so the critical path is the longest weighted path over
    that DAG — the wall-clock floor no amount of extra concurrency can
    beat.  Spans of other kinds are ignored.
    """

    spans = _coerce_spans(source)
    steps: dict[str, Span] = {}
    for sp in spans:
        if sp.kind == "step" and sp.label:
            steps[sp.label] = sp

    durations = {
        name: sp.duration_seconds or 0.0 for name, sp in steps.items()
    }
    edges = {
        name: tuple(
            dep
            for dep in (sp.attributes.get("depends_on") or ())
            if dep in steps
        )
        for name, sp in steps.items()
    }

    finish: dict[str, float] = {}
    via: dict[str, str | None] = {}

    def _finish(name: str) -> float:
        if name in finish:
            return finish[name]
        finish[name] = 0.0  # cycle guard; well-formed DAGs never hit it
        best_dep: str | None = None
        best = 0.0
        for dep in edges[name]:
            candidate = _finish(dep)
            if candidate > best:
                best, best_dep = candidate, dep
        via[name] = best_dep
        finish[name] = best + durations[name]
        return finish[name]

    if not steps:
        return CriticalPath(steps=(), seconds=0.0, step_seconds={})

    tail = max(steps, key=_finish)
    chain: list[str] = []
    cursor: str | None = tail
    while cursor is not None:
        chain.append(cursor)
        cursor = via.get(cursor)
    chain.reverse()
    return CriticalPath(
        steps=tuple(chain),
        seconds=finish[tail],
        step_seconds=dict(durations),
    )


def _render_one(
    sp: Span,
    children: Mapping[int | None, list[Span]],
    depth: int,
    origin: float,
    total: float,
    lines: list[str],
) -> None:
    start = sp.start - origin
    duration = sp.duration_seconds
    if total > 0:
        lead = int(_BAR_WIDTH * start / total)
        span_cells = int(_BAR_WIDTH * (duration or 0.0) / total)
        bar = " " * min(lead, _BAR_WIDTH) + "█" * max(
            1, min(span_cells, _BAR_WIDTH - min(lead, _BAR_WIDTH))
        )
    else:
        bar = "█"
    shown = f"{duration * 1000:.1f}ms" if duration is not None else "open"
    name = f"{'  ' * depth}{sp.kind}:{sp.label}" if sp.label else f"{'  ' * depth}{sp.kind}"
    lines.append(f"{name:<44.44} |{bar:<{_BAR_WIDTH}}| {shown:>10} {sp.status}")
    for child in children.get(sp.span_id, []):
        _render_one(child, children, depth + 1, origin, total, lines)


def render_timeline(source: Iterable[Span] | object) -> str:
    """Render a span tree as an indented text waterfall.

    Accepts a list of spans, a :class:`SpanTracker`, or a report object
    exposing ``spans`` (such as ``WorkflowReport`` after a traced run).
    Bars are positioned proportionally inside the overall time window.
    """

    spans = _coerce_spans(source)
    if not spans:
        return "(no spans)"

    by_id = {sp.span_id: sp for sp in spans}
    children: dict[int | None, list[Span]] = {}
    roots: list[Span] = []
    for sp in spans:
        if sp.parent_id in by_id:
            children.setdefault(sp.parent_id, []).append(sp)
        else:
            roots.append(sp)
    for bucket in children.values():
        bucket.sort(key=lambda sp: (sp.start, sp.span_id))
    roots.sort(key=lambda sp: (sp.start, sp.span_id))

    origin = min(sp.start for sp in spans)
    horizon = max((sp.end if sp.end is not None else sp.start) for sp in spans)
    total = max(0.0, horizon - origin)

    lines: list[str] = []
    for root in roots:
        _render_one(root, children, 0, origin, total, lines)
    return "\n".join(lines)


def summarize_path(path: CriticalPath) -> str:
    """One-line description of the dominating chain, for notes and logs."""

    if not path.steps:
        return "critical path: (none)"
    chain = " -> ".join(path.steps)
    return (
        f"critical path: {chain} = {path.seconds:.3f}s "
        f"(serial sum {path.sum_seconds:.3f}s)"
    )
