"""Synthetic citation corpus for the entity-resolution case study (Table 3).

The paper uses the validation slice of the Magellan DBLP–Google-Scholar
benchmark: pairs of bibliographic citations labelled duplicate / not
duplicate.  That data is not redistributable here, so this module generates a
corpus with the same structure:

* a set of underlying *papers* (entities), each cited by several differently
  formatted *citation records* (duplicates);
* corruptions of increasing severity — venue abbreviations, author-initial
  forms, truncated titles, dropped years, character typos — so that some
  duplicate pairs are easy for a noisy matcher and others are only reachable
  through a cleaner intermediate record (which is exactly the structure that
  lets transitivity help);
* a labelled pair set biased towards *hard* pairs (textually similar
  non-duplicates and dissimilar duplicates), like the Magellan slices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.record import Dataset, Record
from repro.exceptions import DatasetError
from repro.llm.oracle import Oracle

_FIRST_NAMES = [
    "Alice", "Bharat", "Carlos", "Dana", "Elena", "Feng", "Grace", "Hiro",
    "Irene", "Jamal", "Katrin", "Luis", "Maria", "Nikhil", "Olga", "Pedro",
    "Qing", "Rahul", "Sofia", "Tomas", "Uma", "Victor", "Wei", "Yuki",
]
_LAST_NAMES = [
    "Anderson", "Bhattacharya", "Chen", "Dimitrov", "Eriksson", "Fernandez",
    "Gupta", "Hernandez", "Ivanov", "Johnson", "Kumar", "Larsen", "Martinez",
    "Nakamura", "Olsen", "Patel", "Quintero", "Rodriguez", "Schmidt", "Tanaka",
    "Ueda", "Vasquez", "Wang", "Zhang",
]
_TOPIC_WORDS = [
    "adaptive", "approximate", "crowdsourced", "declarative", "distributed",
    "efficient", "incremental", "indexing", "interactive", "learned",
    "parallel", "probabilistic", "robust", "scalable", "streaming",
    "transactional", "versioned", "federated", "secure", "temporal",
]
_OBJECT_WORDS = [
    "query processing", "entity resolution", "data cleaning", "join algorithms",
    "view maintenance", "schema matching", "data integration", "graph analytics",
    "columnar storage", "workload forecasting", "index selection", "data discovery",
    "provenance tracking", "cardinality estimation", "concurrency control",
    "materialized views", "stream processing", "data imputation", "record linkage",
    "knowledge bases",
]
_VENUES = [
    ("Proceedings of the VLDB Endowment", "PVLDB"),
    ("ACM SIGMOD International Conference on Management of Data", "SIGMOD"),
    ("IEEE International Conference on Data Engineering", "ICDE"),
    ("Conference on Innovative Data Systems Research", "CIDR"),
    ("International Conference on Extending Database Technology", "EDBT"),
    ("ACM Transactions on Database Systems", "TODS"),
]


@dataclass(frozen=True)
class LabeledPair:
    """A labelled citation pair, mirroring one Magellan benchmark question."""

    left_id: str
    right_id: str
    left_text: str
    right_text: str
    is_duplicate: bool


@dataclass
class CitationCorpus:
    """A synthetic citation corpus with duplicate ground truth.

    Attributes:
        dataset: the citation records (attributes: title, authors, venue, year).
        entity_of: record id → underlying paper (entity) id.
        pairs: labelled pairs sampled to resemble the Magellan validation slice.
    """

    dataset: Dataset
    entity_of: dict[str, str]
    pairs: list[LabeledPair] = field(default_factory=list)

    def citation_text(self, record: Record) -> str:
        """Render one record the way it is embedded into prompts."""
        return render_citation(record)

    def texts(self) -> list[str]:
        """Citation texts for every record, in dataset order."""
        return [render_citation(record) for record in self.dataset]

    def oracle(self) -> Oracle:
        """Oracle that knows which citation texts co-refer."""
        oracle = Oracle()
        oracle.register_entities(
            {render_citation(record): self.entity_of[record.record_id] for record in self.dataset}
        )
        return oracle

    def duplicate_rate(self) -> float:
        """Fraction of labelled pairs that are true duplicates."""
        if not self.pairs:
            return 0.0
        return sum(pair.is_duplicate for pair in self.pairs) / len(self.pairs)


def render_citation(record: Record) -> str:
    """Serialize a citation record into a single citation string."""
    title = record.get("title", "")
    authors = record.get("authors", "")
    venue = record.get("venue", "")
    year = record.get("year", "")
    parts = [part for part in (authors, title, venue, str(year) if year else "") if part]
    return ". ".join(parts)


def _make_author(rng: random.Random) -> tuple[str, str]:
    return rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES)


def _typo(text: str, rng: random.Random) -> str:
    """Introduce a single character-level typo."""
    if len(text) < 4:
        return text
    index = rng.randrange(1, len(text) - 1)
    kind = rng.randrange(3)
    if kind == 0:
        return text[:index] + text[index + 1 :]
    if kind == 1:
        return text[:index] + text[index] + text[index:]
    return text[: index - 1] + text[index] + text[index - 1] + text[index + 1 :]


def _corrupt_citation(
    base: dict[str, object], severity: int, rng: random.Random
) -> dict[str, object]:
    """Produce a corrupted variant of a base citation.

    Severity 0 keeps the record clean; each additional level applies one more
    corruption drawn from the usual bibliographic-variation playbook.
    """
    record = dict(base)
    corruptions = [
        "abbreviate_venue",
        "author_initials",
        "truncate_title",
        "drop_year",
        "typo_title",
        "drop_last_author",
        "lowercase_title",
    ]
    rng.shuffle(corruptions)
    for corruption in corruptions[:severity]:
        if corruption == "abbreviate_venue":
            for full, abbreviation in _VENUES:
                if record["venue"] == full:
                    record["venue"] = abbreviation
                    break
        elif corruption == "author_initials":
            authors = str(record["authors"]).split(", ")
            record["authors"] = ", ".join(
                f"{name.split()[0][0]}. {name.split()[-1]}" if " " in name else name
                for name in authors
            )
        elif corruption == "truncate_title":
            title = str(record["title"])
            words = title.split()
            if len(words) > 4:
                record["title"] = " ".join(words[: len(words) - 2]) + "..."
        elif corruption == "drop_year":
            record["year"] = ""
        elif corruption == "typo_title":
            record["title"] = _typo(str(record["title"]), rng)
        elif corruption == "drop_last_author":
            authors = str(record["authors"]).split(", ")
            if len(authors) > 1:
                record["authors"] = ", ".join(authors[:-1]) + ", et al"
        elif corruption == "lowercase_title":
            record["title"] = str(record["title"]).lower()
    return record


def generate_citation_corpus(
    n_entities: int = 60,
    *,
    duplicates_per_entity: tuple[int, int] = (2, 4),
    n_pairs: int = 200,
    positive_fraction: float = 0.25,
    seed: int = 0,
) -> CitationCorpus:
    """Generate a synthetic citation corpus with a labelled pair set.

    Args:
        n_entities: number of distinct underlying papers.
        duplicates_per_entity: inclusive (min, max) number of citation records
            per paper.
        n_pairs: number of labelled pairs to sample.
        positive_fraction: fraction of labelled pairs that are true duplicates
            (the Magellan validation slice is similarly imbalanced).
        seed: RNG seed; the same seed reproduces the same corpus.
    """
    if n_entities <= 1:
        raise DatasetError("need at least two entities")
    low, high = duplicates_per_entity
    if low < 1 or high < low:
        raise DatasetError("duplicates_per_entity must be a valid (min, max) with min >= 1")
    rng = random.Random(seed)

    records: list[Record] = []
    entity_of: dict[str, str] = {}
    by_entity: dict[str, list[Record]] = {}
    record_counter = 0
    for entity_index in range(n_entities):
        entity_id = f"paper-{entity_index:04d}"
        author_count = rng.randint(1, 3)
        authors = ", ".join(
            f"{first} {last}" for first, last in (_make_author(rng) for _ in range(author_count))
        )
        title = (
            f"{rng.choice(_TOPIC_WORDS).title()} {rng.choice(_OBJECT_WORDS).title()} "
            f"for {rng.choice(_TOPIC_WORDS).title()} Workloads"
        )
        venue_full, _ = rng.choice(_VENUES)
        base = {
            "title": title,
            "authors": authors,
            "venue": venue_full,
            "year": rng.randint(1998, 2023),
        }
        count = rng.randint(low, high)
        for variant_index in range(count):
            # The first variant stays clean; later ones get progressively
            # heavier corruption, so every cluster contains at least one
            # "anchor" record that corrupted variants are still similar to.
            severity = 0 if variant_index == 0 else rng.randint(1, 2 + variant_index)
            attributes = _corrupt_citation(base, severity, rng)
            record = Record(record_id=f"cite-{record_counter:05d}", attributes=attributes)
            record_counter += 1
            records.append(record)
            entity_of[record.record_id] = entity_id
            by_entity.setdefault(entity_id, []).append(record)

    dataset = Dataset(records, name="citations")
    corpus = CitationCorpus(dataset=dataset, entity_of=entity_of)
    corpus.pairs = _sample_pairs(corpus, by_entity, n_pairs, positive_fraction, rng)
    return corpus


def _sample_pairs(
    corpus: CitationCorpus,
    by_entity: dict[str, list[Record]],
    n_pairs: int,
    positive_fraction: float,
    rng: random.Random,
) -> list[LabeledPair]:
    """Sample a labelled pair set biased towards hard pairs."""
    positives_needed = int(round(n_pairs * positive_fraction))
    negatives_needed = n_pairs - positives_needed

    positive_pool: list[tuple[Record, Record]] = []
    for members in by_entity.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                positive_pool.append((members[i], members[j]))
    rng.shuffle(positive_pool)
    positives = positive_pool[:positives_needed]

    entities = list(by_entity)
    negatives: list[tuple[Record, Record]] = []
    seen: set[tuple[str, str]] = set()
    attempts = 0
    while len(negatives) < negatives_needed and attempts < negatives_needed * 50:
        attempts += 1
        entity_a, entity_b = rng.sample(entities, 2)
        record_a = rng.choice(by_entity[entity_a])
        record_b = rng.choice(by_entity[entity_b])
        key = tuple(sorted((record_a.record_id, record_b.record_id)))
        if key in seen:
            continue
        seen.add(key)
        negatives.append((record_a, record_b))

    pairs = [
        LabeledPair(
            left_id=a.record_id,
            right_id=b.record_id,
            left_text=render_citation(a),
            right_text=render_citation(b),
            is_duplicate=True,
        )
        for a, b in positives
    ] + [
        LabeledPair(
            left_id=a.record_id,
            right_id=b.record_id,
            left_text=render_citation(a),
            right_text=render_citation(b),
            is_duplicate=False,
        )
        for a, b in negatives
    ]
    rng.shuffle(pairs)
    return pairs
