"""Datasets and data generators used by the case studies.

The paper's experiments use one hand-labelled list (ice-cream flavors), one
programmatically-generated list (random English words), and two external
benchmark slices (DBLP–Google-Scholar citation pairs; Restaurant and Buy
imputation tables).  The external data is not redistributable/downloadable in
this offline environment, so this package ships faithful synthetic generators
with the same structure (see DESIGN.md section 2 for the substitution
rationale) alongside the two lists that can be reproduced exactly.
"""

from repro.data.citations import CitationCorpus, LabeledPair, generate_citation_corpus
from repro.data.flavors import FLAVORS, chocolateyness_scores, flavor_oracle
from repro.data.products import ImputationDataset, generate_buy_dataset, generate_restaurant_dataset
from repro.data.record import Dataset, Record
from repro.data.splits import train_validation_test_split
from repro.data.words import WORDS, random_words

__all__ = [
    "CitationCorpus",
    "Dataset",
    "FLAVORS",
    "ImputationDataset",
    "LabeledPair",
    "Record",
    "WORDS",
    "chocolateyness_scores",
    "flavor_oracle",
    "generate_buy_dataset",
    "generate_citation_corpus",
    "generate_restaurant_dataset",
    "random_words",
    "train_validation_test_split",
]
