"""Synthetic imputation datasets mirroring the paper's Restaurant and Buy tables.

Table 4 imputes a missing categorical attribute: the restaurant's ``city`` for
the Restaurants dataset and the product's ``manufacturer`` for the Buy
dataset.  The real tables are not available offline; these generators produce
tables with the same statistical structure:

* the target attribute is predictable from the visible attributes (the phone
  area code and street correlate with the city; the product name usually
  contains the manufacturer), so both an LLM and a k-NN proxy have signal;
* records from the same group look alike, so k-nearest-neighbors over the
  visible attributes finds same-valued neighbors for the easy records and
  disagreeing neighbors for the ambiguous ones — which is what gives the
  hybrid strategy its cost advantage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.record import Dataset, Record
from repro.exceptions import DatasetError
from repro.llm.oracle import Oracle

_CITIES: dict[str, dict[str, list[str]]] = {
    "San Francisco": {
        "area_codes": ["415"],
        "streets": ["Mission St", "Valencia St", "Geary Blvd", "Market St"],
        "neighborhoods": ["SoMa", "Noe Valley", "Richmond"],
    },
    "New York": {
        "area_codes": ["212", "718"],
        "streets": ["Broadway", "5th Ave", "Bleecker St", "Lexington Ave"],
        "neighborhoods": ["Midtown", "SoHo", "Harlem"],
    },
    "Los Angeles": {
        "area_codes": ["213", "310"],
        "streets": ["Sunset Blvd", "Wilshire Blvd", "Melrose Ave", "Figueroa St"],
        "neighborhoods": ["Hollywood", "Venice", "Downtown"],
    },
    "Chicago": {
        "area_codes": ["312"],
        "streets": ["Michigan Ave", "Clark St", "Halsted St", "Wacker Dr"],
        "neighborhoods": ["The Loop", "Wicker Park", "Lincoln Park"],
    },
    "Austin": {
        "area_codes": ["512"],
        "streets": ["Congress Ave", "Guadalupe St", "South Lamar Blvd", "6th St"],
        "neighborhoods": ["Downtown", "East Austin", "Hyde Park"],
    },
}

# Street and neighborhood names that exist in several cities; listings using
# them give the k-NN proxy genuinely ambiguous neighbors, which is where the
# hybrid strategy's LLM escalation earns its keep (Table 4).
_GENERIC_STREETS = ["Main St", "Park Ave", "Washington St", "Oak St", "2nd Ave"]
_GENERIC_NEIGHBORHOODS = ["Downtown", "Riverside", "Old Town"]
#: Fraction of restaurant listings that use a generic street / neighborhood.
_GENERIC_ADDRESS_RATE = 0.25

_CUISINES = [
    "italian", "mexican", "japanese", "thai", "indian", "french",
    "mediterranean", "korean", "vietnamese", "american",
]
# Each city's restaurant scene skews towards a few cuisines; this correlation
# is what makes same-city records look alike to the k-NN proxy.
_CITY_CUISINES: dict[str, list[str]] = {
    "San Francisco": ["japanese", "vietnamese", "mediterranean", "american"],
    "New York": ["italian", "french", "korean", "american"],
    "Los Angeles": ["mexican", "korean", "japanese", "thai"],
    "Chicago": ["italian", "american", "mexican", "indian"],
    "Austin": ["mexican", "thai", "american", "indian"],
}
_RESTAURANT_WORDS = [
    "Garden", "Kitchen", "Table", "Corner", "House", "Bistro", "Grill",
    "Cantina", "Trattoria", "Izakaya", "Diner", "Cafe", "Palace", "Tavern",
]

_MANUFACTURERS: dict[str, dict[str, list[str]]] = {
    "Sony": {"lines": ["Bravia TV", "WH Headphones", "Alpha Camera", "PlayStation Console"]},
    "Samsung": {"lines": ["Galaxy Phone", "QLED TV", "EVO SSD", "Odyssey Monitor"]},
    "Logitech": {"lines": ["MX Mouse", "K Series Keyboard", "Brio Webcam", "Z Speakers"]},
    "Canon": {"lines": ["EOS Camera", "PIXMA Printer", "EF Lens", "PowerShot Camera"]},
    "Garmin": {"lines": ["Forerunner Watch", "Edge Bike Computer", "Nuvi GPS", "Fenix Watch"]},
    "TomTom": {"lines": ["GO Navigator", "Rider GPS", "Start Navigator", "Via GPS"]},
    "Elgato": {"lines": ["Stream Deck", "Cam Link", "Wave Microphone", "Key Light"]},
    "Netgear": {"lines": ["Nighthawk Router", "Orbi Mesh System", "ProSafe Switch", "Arlo Camera"]},
}
# Generic product lines sold (under the same wording) by several manufacturers;
# listings using these make the k-NN proxy genuinely uncertain, which is what
# keeps the Buy dataset's k-NN accuracy in the paper's range.
_GENERIC_LINES = [
    "Wireless Headphones", "Bluetooth Speaker", "USB-C Hub", "Gaming Mouse",
    "Mechanical Keyboard", "4K Monitor", "Portable SSD", "Webcam",
    "Fitness Tracker", "Dash Cam",
]
_PRODUCT_ADJECTIVES = ["wireless", "portable", "compact", "professional", "4k", "ultra", "smart"]
#: Fraction of product listings whose name omits the manufacturer (retailer
#: feeds frequently do), forcing imputation to rely on weaker signals.
_NAME_OMITS_MANUFACTURER = 0.45
#: Fraction of listings that use a generic line instead of a branded one.
_GENERIC_LINE_RATE = 0.35


@dataclass
class ImputationDataset:
    """An imputation task: queries with a missing attribute plus a reference set.

    Attributes:
        name: dataset name ("restaurants" or "buy").
        target_attribute: the attribute whose value must be imputed.
        queries: records with the target attribute removed.
        reference: records with all attributes known (the k-NN neighbor pool,
            which the paper also mines for in-context examples).
        ground_truth: query record id → true target value.
    """

    name: str
    target_attribute: str
    queries: Dataset
    reference: Dataset
    ground_truth: dict[str, str]

    def serialized_query(self, record: Record) -> str:
        """Serialization of a query record as used inside prompts."""
        return record.serialize(exclude=(self.target_attribute,))

    def oracle(self) -> Oracle:
        """Oracle that knows the missing value for every serialized query."""
        oracle = Oracle()
        for record in self.queries:
            oracle.register_value(
                self.serialized_query(record),
                self.target_attribute,
                self.ground_truth[record.record_id],
            )
        return oracle

    def accuracy(self, predictions: dict[str, str]) -> float:
        """Exact-match accuracy of ``predictions`` against the ground truth."""
        if not self.ground_truth:
            return 0.0
        correct = sum(
            1
            for record_id, truth in self.ground_truth.items()
            if predictions.get(record_id, "").strip().lower() == truth.strip().lower()
        )
        return correct / len(self.ground_truth)


def _make_restaurant(index: int, city: str, rng: random.Random) -> Record:
    info = _CITIES[city]
    cuisine = rng.choice(_CITY_CUISINES.get(city, _CUISINES))
    name = f"{rng.choice(_RESTAURANT_WORDS)} {rng.choice(_RESTAURANT_WORDS)} {cuisine.title()}"
    if rng.random() < _GENERIC_ADDRESS_RATE:
        street = rng.choice(_GENERIC_STREETS)
        neighborhood = rng.choice(_GENERIC_NEIGHBORHOODS)
        phone = f"{rng.randint(300, 989)}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
    else:
        street = rng.choice(info["streets"])
        neighborhood = rng.choice(info["neighborhoods"])
        phone = (
            f"{rng.choice(info['area_codes'])}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
        )
    address = f"{rng.randint(100, 9999)} {street}"
    return Record(
        record_id=f"rest-{index:05d}",
        attributes={
            "name": name,
            "address": address,
            "neighborhood": neighborhood,
            "phone": phone,
            "cuisine": cuisine,
            "city": city,
        },
    )


def _make_product(index: int, manufacturer: str, rng: random.Random) -> Record:
    if rng.random() < _GENERIC_LINE_RATE:
        line = rng.choice(_GENERIC_LINES)
    else:
        line = rng.choice(_MANUFACTURERS[manufacturer]["lines"])
    adjective = rng.choice(_PRODUCT_ADJECTIVES)
    if rng.random() < _NAME_OMITS_MANUFACTURER:
        name = f"{line} {rng.randint(100, 999)}"
    else:
        name = f"{manufacturer} {line} {rng.randint(100, 999)}"
    description = f"{adjective} {line.lower()} with {rng.choice(_PRODUCT_ADJECTIVES)} design"
    price = round(rng.uniform(29.0, 1499.0), 2)
    return Record(
        record_id=f"buy-{index:05d}",
        attributes={
            "name": name,
            "description": description,
            "price": price,
            "manufacturer": manufacturer,
        },
    )


def _split_imputation(
    records: list[Record],
    *,
    name: str,
    target_attribute: str,
    query_fraction: float,
    rng: random.Random,
) -> ImputationDataset:
    """Split full records into a reference set and queries with the target hidden."""
    if not 0.0 < query_fraction < 1.0:
        raise DatasetError("query_fraction must be strictly between 0 and 1")
    shuffled = list(records)
    rng.shuffle(shuffled)
    n_queries = max(1, int(round(len(shuffled) * query_fraction)))
    query_records = shuffled[:n_queries]
    reference_records = shuffled[n_queries:]
    ground_truth = {record.record_id: str(record[target_attribute]) for record in query_records}
    queries = Dataset(
        [record.without(target_attribute) for record in query_records], name=f"{name}-queries"
    )
    reference = Dataset(reference_records, name=f"{name}-reference")
    return ImputationDataset(
        name=name,
        target_attribute=target_attribute,
        queries=queries,
        reference=reference,
        ground_truth=ground_truth,
    )


def generate_restaurant_dataset(
    n_records: int = 300, *, query_fraction: float = 0.3, seed: int = 0
) -> ImputationDataset:
    """Restaurant table whose ``city`` attribute must be imputed."""
    if n_records < 10:
        raise DatasetError("need at least 10 records")
    rng = random.Random(seed)
    cities = list(_CITIES)
    records = [
        _make_restaurant(index, cities[index % len(cities)], rng) for index in range(n_records)
    ]
    return _split_imputation(
        records,
        name="restaurants",
        target_attribute="city",
        query_fraction=query_fraction,
        rng=rng,
    )


def generate_buy_dataset(
    n_records: int = 260, *, query_fraction: float = 0.3, seed: int = 0
) -> ImputationDataset:
    """Product table whose ``manufacturer`` attribute must be imputed."""
    if n_records < 10:
        raise DatasetError("need at least 10 records")
    rng = random.Random(seed)
    manufacturers = list(_MANUFACTURERS)
    records = [
        _make_product(index, manufacturers[index % len(manufacturers)], rng)
        for index in range(n_records)
    ]
    return _split_imputation(
        records,
        name="buy",
        target_attribute="manufacturer",
        query_fraction=query_fraction,
        rng=rng,
    )
