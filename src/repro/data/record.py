"""Core data types: :class:`Record` and :class:`Dataset`.

A record is a bag of named attribute values plus an identifier; a dataset is
an ordered collection of records sharing a schema.  The serialization format
(``"attr1 is value1; attr2 is value2"``) follows the paper's imputation case
study verbatim, so prompts built from records read the same way the paper's
prompts did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import DatasetError


@dataclass
class Record:
    """A single data item with named attributes.

    Attributes:
        record_id: stable identifier, unique within its dataset.
        attributes: attribute name → value mapping (values are stored as-is;
            serialization stringifies them).
    """

    record_id: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return one attribute value (or ``default`` when absent)."""
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        return self.attributes[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def with_value(self, attribute: str, value: Any) -> "Record":
        """Return a copy of this record with one attribute set."""
        updated = dict(self.attributes)
        updated[attribute] = value
        return Record(record_id=self.record_id, attributes=updated)

    def without(self, attribute: str) -> "Record":
        """Return a copy of this record with one attribute removed."""
        updated = {key: value for key, value in self.attributes.items() if key != attribute}
        return Record(record_id=self.record_id, attributes=updated)

    def serialize(self, *, exclude: Iterable[str] = ()) -> str:
        """Serialize the record as ``"a1 is v1; a2 is v2"`` (paper Section 3.4)."""
        excluded = set(exclude)
        parts = [
            f"{attribute} is {value}"
            for attribute, value in self.attributes.items()
            if attribute not in excluded and value is not None
        ]
        return "; ".join(parts)


class Dataset:
    """An ordered, named collection of :class:`Record` objects."""

    def __init__(self, records: Iterable[Record], *, name: str = "dataset") -> None:
        self.name = name
        self._records = list(records)
        ids = [record.record_id for record in self._records]
        if len(set(ids)) != len(ids):
            raise DatasetError(f"dataset {name!r} contains duplicate record ids")
        self._by_id = {record.record_id: record for record in self._records}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def get(self, record_id: str) -> Record:
        """Return the record with the given id."""
        try:
            return self._by_id[record_id]
        except KeyError as exc:
            raise DatasetError(f"no record with id {record_id!r} in dataset {self.name!r}") from exc

    @property
    def records(self) -> list[Record]:
        """The records, in insertion order (copy; mutating it is safe)."""
        return list(self._records)

    # -- schema ---------------------------------------------------------------

    @property
    def attributes(self) -> list[str]:
        """Union of attribute names across all records, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._records:
            for attribute in record.attributes:
                seen.setdefault(attribute, None)
        return list(seen)

    def values(self, attribute: str) -> list[Any]:
        """All values of one attribute, skipping records where it is missing."""
        return [
            record.attributes[attribute]
            for record in self._records
            if attribute in record.attributes and record.attributes[attribute] is not None
        ]

    # -- transformations -------------------------------------------------------

    def filter(self, predicate: Callable[[Record], bool], *, name: str | None = None) -> "Dataset":
        """Return a new dataset containing the records matching ``predicate``."""
        return Dataset(
            (record for record in self._records if predicate(record)),
            name=name or f"{self.name}-filtered",
        )

    def sample(self, n: int, *, seed: int = 0) -> "Dataset":
        """Return a reproducible random sample of ``n`` records."""
        if n > len(self._records):
            raise DatasetError(
                f"cannot sample {n} records from dataset of size {len(self._records)}"
            )
        rng = random.Random(seed)
        chosen = rng.sample(self._records, n)
        return Dataset(chosen, name=f"{self.name}-sample{n}")

    def shuffled(self, *, seed: int = 0) -> "Dataset":
        """Return a new dataset with the records in a reproducible shuffled order."""
        rng = random.Random(seed)
        records = list(self._records)
        rng.shuffle(records)
        return Dataset(records, name=f"{self.name}-shuffled")

    def map_records(
        self, transform: Callable[[Record], Record], *, name: str | None = None
    ) -> "Dataset":
        """Return a new dataset with ``transform`` applied to every record."""
        return Dataset(
            (transform(record) for record in self._records), name=name or self.name
        )

    def to_rows(self) -> list[dict[str, Any]]:
        """Return the dataset as a list of plain dictionaries (id included)."""
        return [
            {"record_id": record.record_id, **record.attributes} for record in self._records
        ]

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        *,
        name: str = "dataset",
        id_attribute: str = "record_id",
    ) -> "Dataset":
        """Build a dataset from dictionaries, using ``id_attribute`` as the id."""
        records = []
        for index, row in enumerate(rows):
            row = dict(row)
            record_id = str(row.pop(id_attribute, index))
            records.append(Record(record_id=record_id, attributes=row))
        return cls(records, name=name)
